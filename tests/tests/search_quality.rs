//! Relative search quality: the orderings the paper's Figure 11 and
//! Tables 1-2 report.

use cocco::prelude::*;

fn partition_ctx<'a>(
    g: &'a cocco::graph::Graph,
    eval: &'a Evaluator<'a>,
    buffer: BufferConfig,
    budget: u64,
) -> SearchContext<'a> {
    SearchContext::new(
        g,
        eval,
        BufferSpace::fixed(buffer),
        Objective::partition_only(CostMetric::Ema),
        budget,
    )
}

/// Cocco never loses to the greedy baseline on the paper CNNs (with the
/// scaled-down budget used in CI).
#[test]
fn cocco_matches_or_beats_greedy() {
    let buffer = BufferConfig::separate(1 << 20, 1152 << 10);
    for model in ["resnet50", "googlenet"] {
        let g = cocco::graph::models::by_name(model).unwrap();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let greedy = GreedyFusion::default().run(&partition_ctx(&g, &eval, buffer, 0));
        let ga = CoccoGa::default()
            .with_seed(0xC0CC0)
            .run(&partition_ctx(&g, &eval, buffer, 12_000));
        assert!(
            ga.best_cost <= greedy.best_cost * 1.001,
            "{model}: GA {} vs greedy {}",
            ga.best_cost,
            greedy.best_cost
        );
    }
}

/// On irregular graphs the DP's depth-contiguity restriction hurts; Cocco
/// must not be worse.
#[test]
fn cocco_matches_or_beats_dp_on_randwire() {
    let g = cocco::graph::models::randwire_a();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let buffer = BufferConfig::separate(1 << 20, 1152 << 10);
    let dp = DepthDp::default().run(&partition_ctx(&g, &eval, buffer, 0));
    let ga = CoccoGa::default()
        .with_seed(0xC0CC0)
        .run(&partition_ctx(&g, &eval, buffer, 12_000));
    assert!(
        ga.best_cost <= dp.best_cost,
        "GA {} vs DP {}",
        ga.best_cost,
        dp.best_cost
    );
}

/// Enumeration is exact: no other method may beat it where it completes.
#[test]
fn enumeration_is_a_lower_bound() {
    let g = cocco::graph::models::chain(8);
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    // A buffer that fits ~3 layers to make the problem non-trivial.
    let members3: Vec<_> = g.node_ids().take(3).collect();
    let stats = eval.subgraph_stats(&members3).unwrap();
    let buffer = BufferConfig::shared(stats.act_footprint_bytes + stats.wgt_footprint_bytes);
    let exhaustive = Exhaustive::default().run(&partition_ctx(&g, &eval, buffer, 0));
    assert!(exhaustive.completed);
    for (name, out) in [
        (
            "greedy",
            GreedyFusion::default().run(&partition_ctx(&g, &eval, buffer, 0)),
        ),
        (
            "dp",
            DepthDp::default().run(&partition_ctx(&g, &eval, buffer, 0)),
        ),
        (
            "ga",
            CoccoGa::default()
                .with_population(24)
                .with_seed(2)
                .run(&partition_ctx(&g, &eval, buffer, 3_000)),
        ),
    ] {
        assert!(
            exhaustive.best_cost <= out.best_cost + 1e-6,
            "{name} beat the enumeration: {} < {}",
            out.best_cost,
            exhaustive.best_cost
        );
    }
    // On a plain chain the DP is also exact: they must agree.
    let dp = DepthDp::default().run(&partition_ctx(&g, &eval, buffer, 0));
    assert!((dp.best_cost - exhaustive.best_cost).abs() < 1e-6);
}

/// Co-exploration (Formula 2) finds a cost no worse than the best fixed
/// configuration it could have chosen (given enough samples on a small
/// model).
#[test]
fn co_exploration_beats_bad_fixed_choices() {
    let g = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let alpha = 0.002;
    let coopt_ctx = SearchContext::new(
        &g,
        &eval,
        BufferSpace::paper_shared(),
        Objective::co_exploration(CostMetric::Energy, alpha),
        8_000,
    );
    let coopt = CoccoGa::default().with_seed(5).run(&coopt_ctx);
    // The largest buffer is a bad Formula-2 choice for GoogleNet.
    let large = BufferConfig::shared(3072 << 10);
    let ctx = SearchContext::new(
        &g,
        &eval,
        BufferSpace::fixed(large),
        Objective::partition_only(CostMetric::Energy),
        4_000,
    );
    let fixed = CoccoGa::default().with_seed(5).run(&ctx);
    let fixed_cost = large.total_bytes() as f64 + alpha * fixed.best_cost;
    assert!(
        coopt.best_cost < fixed_cost,
        "co-opt {} vs worst-fixed {fixed_cost}",
        coopt.best_cost
    );
}

/// The paper's "flexible initialization" benefit: warm-starting the GA from
/// the greedy result cannot end worse than greedy.
#[test]
fn warm_started_ga_refines_greedy() {
    let g = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let buffer = BufferConfig::separate(1 << 20, 1152 << 10);
    let greedy = GreedyFusion::default().run(&partition_ctx(&g, &eval, buffer, 0));
    let warm = greedy.best.as_ref().unwrap().partition.clone();
    let ga = CoccoGa::default()
        .with_seed(6)
        .with_initial(vec![warm])
        .run(&partition_ctx(&g, &eval, buffer, 3_000));
    assert!(ga.best_cost <= greedy.best_cost);
}
