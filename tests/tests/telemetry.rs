//! Telemetry is observation-only: a seeded exploration serializes to the
//! **byte-identical** JSON document with telemetry enabled or disabled,
//! at any thread count (ISSUE: the zero-perturbation guarantee).

use cocco::prelude::*;

/// Serializes an exploration with its volatile engine statistics zeroed:
/// wall time and thread count differ run to run by construction, and the
/// cache-hit counters are scheduling-dependent at >1 threads. Everything
/// else — genome, report, cost, samples, trace, error counter — must be
/// bit-identical.
fn normalized_json(mut exploration: Exploration) -> String {
    exploration.stats = EngineStats::default();
    serde_json::to_string(&exploration).expect("exploration serializes")
}

fn run(method: SearchMethod, threads: u32, telemetry: Option<&Telemetry>) -> String {
    let model = cocco::graph::models::googlenet();
    let mut session = Cocco::new()
        .with_method(method)
        .with_budget(500)
        .with_seed(23)
        .with_engine(EngineConfig::with_threads(threads));
    if let Some(t) = telemetry {
        session = session.with_telemetry(t.clone());
    }
    normalized_json(session.explore(&model).expect("exploration succeeds"))
}

#[test]
fn seeded_runs_are_byte_identical_with_telemetry_on_off_across_threads() {
    for method in [
        SearchMethod::ga(),
        SearchMethod::sa(),
        SearchMethod::two_step(),
    ] {
        let name = method.name();
        let baseline = run(method.clone(), 1, None);
        for threads in [1u32, 4] {
            let plain = run(method.clone(), threads, None);
            assert_eq!(
                baseline, plain,
                "{name}: plain run differs at {threads} threads"
            );
            let telemetry = Telemetry::enabled();
            let observed = run(method.clone(), threads, Some(&telemetry));
            assert_eq!(
                baseline, observed,
                "{name}: telemetry perturbed the run at {threads} threads"
            );
            // The sink really was live during the identical run.
            let snap = telemetry.snapshot();
            assert!(
                snap.counter("engine.evals") > 0,
                "{name}: telemetry recorded nothing at {threads} threads"
            );
            assert!(snap.histogram("search.step_ns").is_some());
        }
    }
}
