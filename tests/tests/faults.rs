//! Fault injection and graceful degradation, end to end: seeded fault
//! plans driven through the public facade must either complete
//! bit-identically to the fault-free run (transparent recoveries) or
//! return a structured error carrying best-so-far — never a panic, a
//! hang, a stranded budget sample, or a stale temp file.

use cocco::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cocco-faults-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Any `*.tmp.*` litter under `dir` — atomic saves must clean up after
/// themselves on every path, including injected failures.
fn stale_temps(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp."))
        .collect()
}

#[test]
fn transparent_faults_complete_bit_identically() {
    let dir = temp_dir("transparent");
    let model = cocco::graph::models::googlenet();
    let session = |faults: FaultPlan, tag: &str| {
        Cocco::new()
            .with_budget(300)
            .with_seed(5)
            .with_cache_file(dir.join(format!("{tag}.cache.json")))
            .with_checkpoint_file(dir.join(format!("{tag}.ckpt.json")))
            .with_checkpoint_every(1)
            .with_faults(faults)
            .explore(&model)
            .unwrap()
    };
    let plain = session(FaultPlan::disabled(), "plain");
    // Transient evaluator errors (re-scored) and save-path faults
    // (bounded retry) are transparent: same cost, genome and trace.
    let rates = FaultRates::none()
        .with(FaultSite::EvalError, 0.2)
        .with(FaultSite::SaveWrite, 0.2)
        .with(FaultSite::SaveTorn, 0.1);
    let plan = FaultPlan::seeded(11, rates);
    let faulty = session(plan.clone(), "faulty");
    assert_eq!(plain.cost, faulty.cost);
    assert_eq!(plain.genome, faulty.genome);
    assert_eq!(plain.trace, faulty.trace);
    assert_eq!(plain.samples, faulty.samples);
    let health = plan.health();
    assert!(
        health.faults_seen() > 0,
        "the plan must actually have fired"
    );
    assert!(health.eval_rescores > 0, "eval faults must be re-scored");
    assert!(
        stale_temps(&dir).is_empty(),
        "injected save failures must not leak temp files: {:?}",
        stale_temps(&dir)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_panic_degrades_to_structured_error_with_salvage() {
    let dir = temp_dir("panic");
    let model = cocco::graph::models::googlenet();
    let ckpt = dir.join("run.ckpt.json");
    // A panic rate low enough that the search completes a few
    // generations first (seeded, so the failing step is deterministic).
    let rates = FaultRates::none().with(FaultSite::WorkerPanic, 0.002);
    let plan = FaultPlan::seeded(2, rates);
    let err = Cocco::new()
        .with_budget(2_000)
        .with_seed(9)
        .with_checkpoint_file(&ckpt)
        .with_checkpoint_every(1)
        .with_faults(plan.clone())
        .explore(&model)
        .unwrap_err();
    let Error::WorkerPanic { message, salvage } = err else {
        panic!("expected WorkerPanic, got {err}");
    };
    assert!(message.contains("injected worker panic"), "{message}");
    let salvage = salvage.expect("generations before the fault produce a best-so-far");
    assert!(salvage.cost.is_finite());
    assert!(salvage.genome.partition.validate(&model).is_ok());
    assert!(salvage.samples > 0);
    let health = plan.health();
    assert!(health.is_degraded());
    assert_eq!(health.quarantined_batches, 1);
    assert!(
        health.refunded_samples > 0,
        "quarantined funding must be refunded"
    );
    // The last between-steps checkpoint stays behind so the run can
    // resume; resuming with faults disarmed completes cleanly.
    assert!(ckpt.exists(), "an aborted run must keep its checkpoint");
    let resumed = Cocco::new()
        .with_budget(2_000)
        .with_seed(9)
        .with_checkpoint_file(&ckpt)
        .explore(&model)
        .unwrap();
    assert!(resumed.cost.is_finite());
    assert!(
        resumed.cost <= salvage.cost,
        "resume continues from salvaged progress"
    );
    assert_eq!(
        resumed.trace.len() as u64,
        resumed.samples,
        "no stranded samples"
    );
    assert!(!ckpt.exists(), "a completed resume removes the checkpoint");
    assert!(stale_temps(&dir).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_revocation_degrades_but_completes() {
    let model = cocco::graph::models::diamond();
    let rates = FaultRates::none().with(FaultSite::BudgetRevoke, 0.05);
    let plan = FaultPlan::seeded(4, rates);
    let result = Cocco::new()
        .with_budget(5_000)
        .with_seed(3)
        .with_faults(plan.clone())
        .explore(&model)
        .unwrap();
    assert!(result.cost.is_finite());
    assert!(
        result.samples < 5_000,
        "a revoked budget must cut the run short ({} samples)",
        result.samples
    );
    assert_eq!(
        result.trace.len() as u64,
        result.samples,
        "no stranded samples"
    );
    assert!(result.is_degraded());
    assert_eq!(result.health.budget_revocations, 1);
    assert_eq!(result.health, plan.health());
}

#[test]
fn fault_schedule_round_trips_and_replays_identically() {
    let rates = FaultRates::none()
        .with(FaultSite::EvalError, 0.3)
        .with(FaultSite::WorkerPanic, 0.01);
    let plan = FaultPlan::seeded(42, rates);
    let schedule = plan.schedule().expect("enabled plan has a schedule");
    let json = serde_json::to_string(&schedule).unwrap();
    let back: FaultSchedule = serde_json::from_str(&json).unwrap();
    let replay = FaultPlan::from_schedule(&back);
    for _ in 0..200 {
        for site in FaultSite::ALL {
            assert_eq!(plan.should_inject(site), replay.should_inject(site));
        }
    }
}

#[test]
fn corrupt_checkpoints_are_structured_errors_never_panics() {
    let dir = temp_dir("ckpt-matrix");
    let model = cocco::graph::models::diamond();
    let path = dir.join("bad.ckpt.json");
    let session = || {
        Cocco::new()
            .with_budget(200)
            .with_seed(7)
            .with_checkpoint_file(&path)
    };
    // A genuine snapshot to mutate: drive the same search the facade
    // would run for a couple of steps, then capture it mid-run.
    let method = SearchMethod::ga().with_seed(7);
    let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        &model,
        &evaluator,
        BufferSpace::paper_shared(),
        Objective::paper_energy_capacity(),
        200,
    );
    let mut driver = method.driver();
    for _ in 0..2 {
        match driver.next_batch(&ctx) {
            Step::Evaluate(mut batch) => {
                ctx.evaluate_chunks(&mut batch);
                driver.absorb(&ctx, batch);
            }
            Step::Continue => {}
            Step::Done => break,
        }
    }
    let snapshot = SearchSnapshot::capture(&method, &*driver, &ctx);
    let valid = serde_json::to_string(&snapshot).unwrap();

    // Truncated mid-document.
    std::fs::write(&path, &valid[..valid.len() / 2]).unwrap();
    let err = session().explore(&model).unwrap_err();
    assert!(matches!(err, Error::Checkpoint { .. }), "{err}");
    // Arbitrary bad JSON.
    std::fs::write(&path, "{not json at all").unwrap();
    let err = session().explore(&model).unwrap_err();
    assert!(matches!(err, Error::Checkpoint { .. }), "{err}");
    // Old snapshot version.
    std::fs::write(&path, valid.replacen("\"version\":2", "\"version\":1", 1)).unwrap();
    let err = session().explore(&model).unwrap_err();
    assert!(matches!(err, Error::Checkpoint { .. }), "{err}");
    // Wrong evaluator fingerprint (different accelerator).
    std::fs::write(&path, &valid).unwrap();
    let mut accel = AcceleratorConfig::default();
    accel.mac_cols *= 2;
    let err = session()
        .with_accelerator(accel)
        .explore(&model)
        .unwrap_err();
    assert!(matches!(err, Error::Checkpoint { .. }), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_cache_snapshots_salvage_or_error_never_panic() {
    let dir = temp_dir("cache-matrix");
    let model = cocco::graph::models::googlenet();
    let path = dir.join("cache.json");
    let session = || {
        Cocco::new()
            .with_budget(300)
            .with_seed(5)
            .with_cache_file(&path)
    };
    let cold = session().explore(&model).unwrap();
    let valid = std::fs::read_to_string(&path).unwrap();

    // Truncated mid-array: the parsable prefix of entries is salvaged
    // (cached values are exact, so results stay bit-identical), the rest
    // is recomputed.
    std::fs::write(&path, &valid[..valid.len() * 2 / 3]).unwrap();
    let salvaged = session().explore(&model).unwrap();
    assert_eq!(cold.cost, salvaged.cost);
    assert_eq!(cold.genome, salvaged.genome);
    assert_eq!(cold.trace, salvaged.trace);

    // Structurally hopeless text stays a structured error.
    std::fs::write(&path, "][ nothing to salvage").unwrap();
    let err = session().explore(&model).unwrap_err();
    assert!(matches!(err, Error::CacheFile { .. }), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
