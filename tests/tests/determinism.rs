//! Reproducibility: fixed seeds reproduce results end-to-end, including
//! under parallel fitness evaluation.

use cocco::prelude::*;

#[test]
fn ga_parallel_equals_sequential() {
    let g = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let run = |parallel: bool| {
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            1_200,
        );
        let ga = CoccoGa::default().with_population(40).with_seed(11);
        let ga = if parallel { ga } else { ga.sequential() };
        let out = ga.run(&ctx);
        (out.best_cost, out.best.map(|g| g.buffer))
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn model_zoo_is_deterministic() {
    for name in cocco::graph::models::PAPER_MODELS {
        let a = cocco::graph::models::by_name(name).unwrap();
        let b = cocco::graph::models::by_name(name).unwrap();
        assert_eq!(a.len(), b.len(), "{name}");
        assert_eq!(a.total_macs(), b.total_macs(), "{name}");
        assert_eq!(
            a.total_weight_elements(),
            b.total_weight_elements(),
            "{name}"
        );
    }
}

#[test]
fn sa_and_twostep_reproduce() {
    let g = cocco::graph::models::diamond();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let sa = |seed| {
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            400,
        );
        SimulatedAnnealing::default()
            .with_seed(seed)
            .run(&ctx)
            .best_cost
    };
    assert_eq!(sa(3), sa(3));
    let ts = |seed| {
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            400,
        );
        TwoStep::random()
            .with_per_candidate(100)
            .with_seed(seed)
            .run(&ctx)
            .best_cost
    };
    assert_eq!(ts(4), ts(4));
}

#[test]
fn evaluator_results_are_pure() {
    let g = cocco::graph::models::resnet50();
    let e1 = Evaluator::new(&g, AcceleratorConfig::default());
    let e2 = Evaluator::new(&g, AcceleratorConfig::default());
    let p = Partition::connected_groups(&g, 3);
    let buffer = BufferConfig::shared(2 << 20);
    let r1 = e1
        .eval_partition(&p.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    let r2 = e2
        .eval_partition(&p.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    assert_eq!(r1.ema_bytes, r2.ema_bytes);
    assert_eq!(r1.energy_pj, r2.energy_pj);
    assert_eq!(r1.latency_cycles, r2.latency_cycles);
}
