//! Reproducibility: fixed seeds reproduce results end-to-end, including
//! under parallel fitness evaluation.

use cocco::prelude::*;

#[test]
fn ga_is_bit_identical_at_any_thread_count() {
    let g = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let run = |threads: u32| {
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            1_200,
        )
        .with_engine(EngineConfig::with_threads(threads));
        let ga = CoccoGa::default().with_population(40).with_seed(11);
        let out = ga.run(&ctx);
        (out.best_cost, out.best, out.samples, ctx.trace().points())
    };
    let serial = run(1);
    for threads in [2, 4] {
        let parallel = run(threads);
        assert_eq!(serial.0, parallel.0, "best cost at {threads} threads");
        assert_eq!(serial.1, parallel.1, "best genome at {threads} threads");
        assert_eq!(serial.2, parallel.2, "samples at {threads} threads");
        assert_eq!(serial.3, parallel.3, "trace at {threads} threads");
    }
}

#[test]
fn facade_ga_is_identical_serial_and_parallel() {
    // The acceptance check of the engine rework: `SearchMethod::Ga`
    // through the facade returns the identical best cost, genome and trace
    // at 1 and 4 threads.
    let model = cocco::graph::models::resnet50();
    let run = |threads: u32| {
        Cocco::new()
            .with_method(SearchMethod::ga())
            .with_budget(500)
            .with_seed(7)
            .with_engine(EngineConfig::with_threads(threads))
            .explore(&model)
            .unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.cost, parallel.cost);
    assert_eq!(serial.genome, parallel.genome);
    assert_eq!(serial.trace, parallel.trace);
    assert_eq!(serial.samples, parallel.samples);
}

#[test]
fn model_zoo_is_deterministic() {
    for name in cocco::graph::models::PAPER_MODELS {
        let a = cocco::graph::models::by_name(name).unwrap();
        let b = cocco::graph::models::by_name(name).unwrap();
        assert_eq!(a.len(), b.len(), "{name}");
        assert_eq!(a.total_macs(), b.total_macs(), "{name}");
        assert_eq!(
            a.total_weight_elements(),
            b.total_weight_elements(),
            "{name}"
        );
    }
}

#[test]
fn sa_and_twostep_reproduce() {
    let g = cocco::graph::models::diamond();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let sa = |seed| {
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            400,
        );
        SimulatedAnnealing::default()
            .with_seed(seed)
            .run(&ctx)
            .best_cost
    };
    assert_eq!(sa(3), sa(3));
    let ts = |seed| {
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            400,
        );
        TwoStep::random()
            .with_per_candidate(100)
            .with_seed(seed)
            .run(&ctx)
            .best_cost
    };
    assert_eq!(ts(4), ts(4));
}

#[test]
fn evaluator_results_are_pure() {
    let g = cocco::graph::models::resnet50();
    let e1 = Evaluator::new(&g, AcceleratorConfig::default());
    let e2 = Evaluator::new(&g, AcceleratorConfig::default());
    let p = Partition::connected_groups(&g, 3);
    let buffer = BufferConfig::shared(2 << 20);
    let r1 = e1
        .eval_partition(&p.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    let r2 = e2
        .eval_partition(&p.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    assert_eq!(r1.ema_bytes, r2.ema_bytes);
    assert_eq!(r1.energy_pj, r2.energy_pj);
    assert_eq!(r1.latency_cycles, r2.latency_cycles);
}
