//! Integration tests of the unified exploration API: the method registry,
//! the method-agnostic `Cocco` facade, the unified error hierarchy and the
//! JSON round-trip of requests and results.

use cocco::prelude::*;
use std::error::Error as _;

/// A seeded GA config. Batch evaluation is deterministic at any thread
/// count, so facade and direct runs evaluate in identical order even at
/// budget-exhaustion boundaries — no sequential override needed.
fn seeded_ga(seed: u64) -> GaConfig {
    GaConfig {
        seed,
        ..GaConfig::default()
    }
}

/// The six registry methods, seeded.
fn all_methods(seed: u64) -> Vec<SearchMethod> {
    SearchMethod::all()
        .into_iter()
        .map(|m| m.with_seed(seed))
        .collect()
}

#[test]
fn every_method_yields_valid_partitions_via_the_facade() {
    for model in [
        cocco::graph::models::diamond(),
        cocco::graph::models::chain(4),
    ] {
        for method in all_methods(3) {
            let name = method.name();
            let result = Cocco::new()
                .with_method(method)
                .with_budget(400)
                .explore(&model)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", model.name()));
            assert!(
                result.genome.partition.validate(&model).is_ok(),
                "{name} produced an invalid partition on {}",
                model.name()
            );
            assert!(result.report.fits, "{name}: best genome does not fit");
            assert!(result.cost.is_finite(), "{name}: infinite best cost");
            assert!(result.samples <= 400, "{name}: overspent the budget");
        }
    }
}

#[test]
fn facade_matches_direct_searcher_invocation() {
    let model = cocco::graph::models::diamond();
    for method in all_methods(9) {
        let name = method.name();
        let facade = Cocco::new()
            .with_method(method.clone())
            .with_budget(350)
            .explore(&model)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &model,
            &evaluator,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            350,
        );
        let direct = method.run(&ctx);

        assert_eq!(facade.cost, direct.best_cost, "{name}: cost diverged");
        assert_eq!(
            facade.genome,
            direct.best.expect("direct run found a genome"),
            "{name}: genome diverged"
        );
        assert_eq!(facade.samples, direct.samples, "{name}: samples diverged");
        assert_eq!(
            facade.trace.points(),
            ctx.trace().points(),
            "{name}: trace diverged"
        );
    }
}

#[test]
fn exploration_round_trips_through_json() {
    let model = cocco::graph::models::diamond();
    let result = Cocco::new()
        .with_ga(seeded_ga(1))
        .with_budget(120)
        .explore(&model)
        .unwrap();
    let json = serde_json::to_string_pretty(&result).unwrap();
    let back: Exploration = serde_json::from_str(&json).unwrap();
    assert_eq!(back.genome, result.genome);
    assert_eq!(back.report, result.report);
    assert_eq!(back.samples, result.samples);
    assert_eq!(back.completed, result.completed);
    // Finite trace points survive exactly; non-finite costs come back NaN,
    // so compare the finite subset.
    let finite = |t: &Trace| {
        t.points()
            .into_iter()
            .filter(|p| p.cost.is_finite())
            .collect::<Vec<_>>()
    };
    assert_eq!(finite(&back.trace), finite(&result.trace));
    assert_eq!(back.trace.len(), result.trace.len());
}

#[test]
fn search_methods_round_trip_through_json() {
    for method in all_methods(77) {
        let json = serde_json::to_string(&method).unwrap();
        let back: SearchMethod = serde_json::from_str(&json).unwrap();
        assert_eq!(back, method, "{json}");
    }
}

#[test]
fn unified_error_preserves_sources_across_crates() {
    // Tiling error -> Sim error -> cocco::Error keeps the full chain.
    let model = cocco::graph::models::chain(2);
    let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
    let empty: Vec<Vec<NodeId>> = vec![vec![]];
    let sim_err = evaluator
        .eval_partition(
            &empty,
            &BufferConfig::shared(1 << 20),
            EvalOptions::default(),
        )
        .unwrap_err();
    let unified: cocco::Error = sim_err.clone().into();
    assert_eq!(unified.source().unwrap().to_string(), sim_err.to_string());

    // Builder misuse surfaces as Error::Graph with the GraphError inside.
    let mut b = GraphBuilder::new("bad");
    let input = b.input(TensorShape::new(8, 8, 4));
    b.conv("dup", input, 4, Kernel::pointwise()).unwrap();
    let graph_err = b
        .conv("dup", input, 4, Kernel::pointwise())
        .expect_err("duplicate layer name must be rejected");
    let unified: cocco::Error = graph_err.clone().into();
    assert!(matches!(unified, cocco::Error::Graph(_)));
    assert_eq!(unified.source().unwrap().to_string(), graph_err.to_string());
}

#[test]
fn infeasible_and_incompatible_requests_use_unified_errors() {
    let model = cocco::graph::models::chain(3);
    let infeasible = Cocco::new()
        .with_space(BufferSpace::fixed(BufferConfig::shared(8)))
        .with_budget(40)
        .explore(&model)
        .unwrap_err();
    assert_eq!(infeasible, cocco::Error::NoFeasibleSolution);

    let incompatible = Cocco::new()
        .with_method(SearchMethod::two_step())
        .with_objective(Objective::partition_only(CostMetric::Ema))
        .with_budget(40)
        .explore(&model)
        .unwrap_err();
    assert!(matches!(
        incompatible,
        cocco::Error::IncompatibleObjective { .. }
    ));
    // The message names the method and the requirement.
    let msg = incompatible.to_string();
    assert!(msg.contains("RS+GA"), "{msg}");
    assert!(msg.contains("Formula-2"), "{msg}");

    // A method that gives up (enumeration over its state limits on an
    // irregular graph) is distinguished from proven infeasibility.
    let incomplete = Cocco::new()
        .with_method(SearchMethod::Exhaustive(cocco::search::ExhaustiveLimits {
            max_states: 4,
            max_expansions: 4,
        }))
        .with_budget(10)
        .explore(&cocco::graph::models::randwire_a())
        .unwrap_err();
    assert!(
        matches!(incomplete, cocco::Error::SearchIncomplete { .. }),
        "{incomplete}"
    );
}

#[test]
fn with_seed_controls_every_stochastic_method() {
    let model = cocco::graph::models::diamond();
    for method in [
        SearchMethod::ga(),
        SearchMethod::sa(),
        SearchMethod::two_step(),
    ] {
        let name = method.name();
        let run = |seed: u64| {
            Cocco::new()
                .with_method(match &method {
                    SearchMethod::Ga(_) => SearchMethod::Ga(seeded_ga(0)),
                    other => other.clone(),
                })
                .with_seed(seed)
                .with_budget(150)
                .explore(&model)
                .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.cost, b.cost, "{name} not deterministic under seed");
        assert_eq!(a.genome, b.genome, "{name} not deterministic under seed");
    }
}
