//! The multi-core and batch trends of paper Table 3 / §5.4.

use cocco::prelude::*;

fn report(g: &cocco::graph::Graph, eval: &Evaluator<'_>, options: EvalOptions) -> PartitionReport {
    let p = Partition::connected_groups(g, 4);
    eval.eval_partition(&p.subgraphs(), &BufferConfig::shared(2 << 20), options)
        .unwrap()
}

#[test]
fn more_cores_cut_latency_but_cost_energy() {
    let g = cocco::graph::models::resnet50();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let r1 = report(&g, &eval, EvalOptions::with_cores(1));
    let r2 = report(&g, &eval, EvalOptions::with_cores(2));
    let r4 = report(&g, &eval, EvalOptions::with_cores(4));
    assert!(r2.latency_cycles < r1.latency_cycles);
    assert!(r4.latency_cycles < r2.latency_cycles);
    // "in most cases, energy increases from the single-core to dual-core
    // configuration because of the communication overhead"
    assert!(r2.energy_pj > r1.energy_pj);
}

#[test]
fn batch_scaling_is_sublinear() {
    let g = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let r1 = report(&g, &eval, EvalOptions::with_batch(1));
    let r8 = report(&g, &eval, EvalOptions::with_batch(8));
    // "the latency with a larger batch size principally presents a
    // sub-linear increase"
    assert!(r8.latency_cycles < 8.0 * r1.latency_cycles);
    assert!(r8.latency_cycles > r1.latency_cycles);
    // "such data reuse amortizes the energy burden per batch processing"
    assert!(r8.energy_pj < 8.0 * r1.energy_pj);
    // EMA grows by activations only; weights load once.
    assert!(r8.ema_bytes < 8 * r1.ema_bytes);
}

#[test]
fn weight_sharding_relaxes_capacity() {
    // "the required memory of each core drops with the increase of core
    // number" — a subgraph too heavy for one core fits per-core when
    // weights are sharded.
    let g = cocco::graph::models::resnet50();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let p = Partition::connected_groups(&g, 6);
    let subgraphs = p.subgraphs();
    // Find the heaviest multi-layer subgraph by weight footprint.
    let heaviest = subgraphs
        .iter()
        .filter(|m| m.len() > 1)
        .max_by_key(|m| eval.subgraph_stats(m).unwrap().wgt_footprint_bytes)
        .unwrap();
    let stats = eval.subgraph_stats(heaviest).unwrap();
    let tight =
        BufferConfig::separate(stats.act_footprint_bytes, stats.wgt_footprint_bytes / 2 + 1);
    let r1 = eval
        .eval_partition(
            std::slice::from_ref(heaviest),
            &tight,
            EvalOptions::with_cores(1),
        )
        .unwrap();
    let r2 = eval
        .eval_partition(
            std::slice::from_ref(heaviest),
            &tight,
            EvalOptions::with_cores(2),
        )
        .unwrap();
    assert!(
        !r1.fits,
        "should exceed the tight single-core weight buffer"
    );
    assert!(r2.fits, "two cores shard the weights and fit");
}

#[test]
fn batch_does_not_change_footprints() {
    // Batch processing is temporal: the same buffer capacity serves any
    // batch size.
    let g = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let r1 = report(&g, &eval, EvalOptions::with_batch(1));
    let r8 = report(&g, &eval, EvalOptions::with_batch(8));
    assert_eq!(r1.fits, r8.fits);
    for (a, b) in r1.per_subgraph.iter().zip(&r8.per_subgraph) {
        assert_eq!(a.stats.act_footprint_bytes, b.stats.act_footprint_bytes);
    }
}

#[test]
fn crossbar_traffic_only_with_multiple_cores() {
    let g = cocco::graph::models::resnet50();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let r1 = report(&g, &eval, EvalOptions::with_cores(1));
    // Energy delta between 2-core and 1-core comes from crossbar rotation
    // plus halo refetch — strictly positive, bounded by a plausible factor.
    let r2 = report(&g, &eval, EvalOptions::with_cores(2));
    let delta = r2.energy_pj - r1.energy_pj;
    assert!(delta > 0.0);
    assert!(delta < r1.energy_pj, "overhead should not double energy");
}
