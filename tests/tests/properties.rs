//! Property-based tests over randomly generated DAGs and partitions.

use cocco::prelude::*;
use proptest::prelude::*;

/// A random shape-preserving irregular DAG: every tensor is 32×32×16, so
/// element-wise joins are legal anywhere and the generator can wire skips
/// freely (the RandWire spirit, minus channel bookkeeping).
fn random_dag(ops: Vec<(u8, usize, usize)>) -> cocco::graph::Graph {
    let mut b = GraphBuilder::new("prop");
    let mut nodes = vec![b.input(TensorShape::new(32, 32, 16))];
    for (i, (kind, a, c)) in ops.into_iter().enumerate() {
        let pick = |idx: usize| nodes[idx % nodes.len()];
        let node = match kind % 4 {
            0 => b
                .conv(format!("c{i}"), pick(a), 16, Kernel::square_same(3, 1))
                .unwrap(),
            1 => b
                .conv(format!("p{i}"), pick(a), 16, Kernel::pointwise())
                .unwrap(),
            2 => b
                .pool(format!("q{i}"), pick(a), Kernel::square_same(3, 1))
                .unwrap(),
            _ => {
                let x = pick(a);
                let y = pick(c);
                if x == y {
                    b.conv(format!("e{i}"), x, 16, Kernel::square_same(3, 1))
                        .unwrap()
                } else {
                    b.eltwise(format!("e{i}"), &[x, y]).unwrap()
                }
            }
        };
        nodes.push(node);
    }
    b.finish().unwrap()
}

fn dag_strategy() -> impl Strategy<Value = cocco::graph::Graph> {
    proptest::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 3..24).prop_map(random_dag)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Repair always produces a valid partition from arbitrary assignments.
    #[test]
    fn repair_always_valid(graph in dag_strategy(), ids in proptest::collection::vec(0u32..8, 64)) {
        let assignment: Vec<u32> = (0..graph.len()).map(|i| ids[i % ids.len()]).collect();
        let repaired = repair(&graph, Partition::from_assignment(assignment), &|m| m.len() <= 6);
        prop_assert!(repaired.validate(&graph).is_ok());
        prop_assert!(repaired.subgraphs().iter().all(|m| m.len() <= 6));
    }

    /// Canonicalization is idempotent.
    #[test]
    fn canonicalize_idempotent(graph in dag_strategy(), ids in proptest::collection::vec(0u32..8, 64)) {
        let assignment: Vec<u32> = (0..graph.len()).map(|i| ids[i % ids.len()]).collect();
        let mut p = repair(&graph, Partition::from_assignment(assignment), &|_| true);
        let once = p.clone();
        p.canonicalize(&graph);
        prop_assert_eq!(once, p);
    }

    /// Tiling invariants: `x ≥ Δ`, divisibility of `Δ(u)/s(v)` on exact
    /// non-full nodes, and bounded overlap.
    #[test]
    fn tiling_invariants(graph in dag_strategy()) {
        let members: Vec<_> = graph.node_ids().collect();
        let scheme = derive_scheme(&graph, &members, &Mapper::default()).unwrap();
        for (id, s) in scheme.iter() {
            prop_assert!(s.tile.h >= s.delta.h);
            prop_assert!(s.tile.w >= s.delta.w);
            let shape = graph.node(id).out_shape();
            prop_assert!(s.tile.h <= shape.h && s.tile.w <= shape.w);
            if scheme.exact_upd() && !s.full_h {
                for &v in graph.consumers(id) {
                    if scheme.get(v).is_none() { continue; }
                    if let cocco::graph::EdgeReq::Sliding(k) = graph.edge_req(id, v) {
                        prop_assert_eq!(s.delta.h % k.stride.h.max(1), 0);
                    }
                }
            }
        }
    }

    /// Growing a subgraph never shrinks its activation footprint.
    #[test]
    fn footprint_monotone_on_prefixes(graph in dag_strategy()) {
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let ids: Vec<_> = graph.node_ids().collect();
        let mut previous = 0u64;
        for take in 1..=ids.len() {
            let members = &ids[..take];
            let stats = eval.subgraph_stats(members).unwrap();
            prop_assert!(
                stats.act_footprint_bytes >= previous,
                "footprint shrank at {}: {} < {}", take, stats.act_footprint_bytes, previous
            );
            previous = stats.act_footprint_bytes;
        }
    }

    /// EMA of any repaired partition respects the floor.
    #[test]
    fn ema_floor(graph in dag_strategy(), ids in proptest::collection::vec(0u32..6, 64)) {
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let assignment: Vec<u32> = (0..graph.len()).map(|i| ids[i % ids.len()]).collect();
        let p = repair(&graph, Partition::from_assignment(assignment), &|_| true);
        let buffer = BufferConfig::shared(64 << 20);
        let report = eval.eval_partition(&p.subgraphs(), &buffer, EvalOptions::default()).unwrap();
        let floor: u64 = graph.total_weight_elements()
            + graph.input_ids().iter().map(|&i| graph.out_elements(i)).sum::<u64>()
            + graph.output_ids().iter().map(|&o| graph.out_elements(o)).sum::<u64>();
        prop_assert!(report.ema_bytes >= floor);
    }

    /// Subgraph statistics do not depend on member order.
    #[test]
    fn stats_order_independent(graph in dag_strategy(), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let mut members: Vec<_> = graph.node_ids().collect();
        let a = eval.subgraph_stats(&members).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        members.shuffle(&mut rng);
        let b = eval.subgraph_stats(&members).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The GA honours any sample budget exactly.
    #[test]
    fn ga_budget_exact(budget in 1u64..120) {
        let graph = cocco::graph::models::diamond();
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &graph,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            budget,
        );
        let out = CoccoGa::default().with_population(8).with_seed(1).sequential().run(&ctx);
        prop_assert_eq!(out.samples, budget);
        prop_assert_eq!(ctx.budget().used(), budget);
    }
}
