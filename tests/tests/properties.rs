//! Property-style tests over randomly generated DAGs and partitions.
//!
//! The offline toolchain has no `proptest`, so each property runs over a
//! fixed number of seeded random cases (deterministic, reproducible): the
//! case generator below mirrors the shapes a proptest strategy would
//! produce.

use cocco::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property.
const CASES: u64 = 48;

/// A random shape-preserving irregular DAG: every tensor is 32×32×16, so
/// element-wise joins are legal anywhere and the generator can wire skips
/// freely (the RandWire spirit, minus channel bookkeeping).
fn random_dag(ops: Vec<(u8, usize, usize)>) -> cocco::graph::Graph {
    let mut b = GraphBuilder::new("prop");
    let mut nodes = vec![b.input(TensorShape::new(32, 32, 16))];
    for (i, (kind, a, c)) in ops.into_iter().enumerate() {
        let pick = |idx: usize| nodes[idx % nodes.len()];
        let node = match kind % 4 {
            0 => b
                .conv(format!("c{i}"), pick(a), 16, Kernel::square_same(3, 1))
                .unwrap(),
            1 => b
                .conv(format!("p{i}"), pick(a), 16, Kernel::pointwise())
                .unwrap(),
            2 => b
                .pool(format!("q{i}"), pick(a), Kernel::square_same(3, 1))
                .unwrap(),
            _ => {
                let x = pick(a);
                let y = pick(c);
                if x == y {
                    b.conv(format!("e{i}"), x, 16, Kernel::square_same(3, 1))
                        .unwrap()
                } else {
                    b.eltwise(format!("e{i}"), &[x, y]).unwrap()
                }
            }
        };
        nodes.push(node);
    }
    b.finish().unwrap()
}

/// Draws a random DAG of 3..24 operators (as the proptest strategy did).
fn draw_dag(rng: &mut StdRng) -> cocco::graph::Graph {
    let n = rng.gen_range(3..24usize);
    let ops = (0..n)
        .map(|_| {
            (
                rng.gen::<u8>(),
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
            )
        })
        .collect();
    random_dag(ops)
}

/// Draws a 64-entry random assignment pool with ids below `k`.
fn draw_ids(rng: &mut StdRng, k: u32) -> Vec<u32> {
    (0..64).map(|_| rng.gen_range(0..k)).collect()
}

/// Repair always produces a valid partition from arbitrary assignments.
#[test]
fn repair_always_valid() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + case);
        let graph = draw_dag(&mut rng);
        let ids = draw_ids(&mut rng, 8);
        let assignment: Vec<u32> = (0..graph.len()).map(|i| ids[i % ids.len()]).collect();
        let repaired = repair(&graph, Partition::from_assignment(assignment), &|m| {
            m.len() <= 6
        });
        assert!(repaired.validate(&graph).is_ok(), "case {case}");
        assert!(
            repaired.subgraphs().iter().all(|m| m.len() <= 6),
            "case {case}: oversized subgraph survived repair"
        );
    }
}

/// Canonicalization is idempotent.
#[test]
fn canonicalize_idempotent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_1000 + case);
        let graph = draw_dag(&mut rng);
        let ids = draw_ids(&mut rng, 8);
        let assignment: Vec<u32> = (0..graph.len()).map(|i| ids[i % ids.len()]).collect();
        let mut p = repair(&graph, Partition::from_assignment(assignment), &|_| true);
        let once = p.clone();
        p.canonicalize(&graph);
        assert_eq!(once, p, "case {case}");
    }
}

/// Tiling invariants: `x ≥ Δ`, divisibility of `Δ(u)/s(v)` on exact
/// non-full nodes, and bounded overlap.
#[test]
fn tiling_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_2000 + case);
        let graph = draw_dag(&mut rng);
        let members: Vec<_> = graph.node_ids().collect();
        let scheme = derive_scheme(&graph, &members, &Mapper::default()).unwrap();
        for (id, s) in scheme.iter() {
            assert!(s.tile.h >= s.delta.h, "case {case}");
            assert!(s.tile.w >= s.delta.w, "case {case}");
            let shape = graph.node(id).out_shape();
            assert!(s.tile.h <= shape.h && s.tile.w <= shape.w, "case {case}");
            if scheme.exact_upd() && !s.full_h {
                for &v in graph.consumers(id) {
                    if scheme.get(v).is_none() {
                        continue;
                    }
                    if let cocco::graph::EdgeReq::Sliding(k) = graph.edge_req(id, v) {
                        assert_eq!(s.delta.h % k.stride.h.max(1), 0, "case {case}");
                    }
                }
            }
        }
    }
}

/// Growing a subgraph never shrinks its activation footprint.
#[test]
fn footprint_monotone_on_prefixes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_3000 + case);
        let graph = draw_dag(&mut rng);
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let ids: Vec<_> = graph.node_ids().collect();
        let mut previous = 0u64;
        for take in 1..=ids.len() {
            let members = &ids[..take];
            let stats = eval.subgraph_stats(members).unwrap();
            assert!(
                stats.act_footprint_bytes >= previous,
                "case {case}: footprint shrank at {take}: {} < {previous}",
                stats.act_footprint_bytes,
            );
            previous = stats.act_footprint_bytes;
        }
    }
}

/// EMA of any repaired partition respects the floor.
#[test]
fn ema_floor() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_4000 + case);
        let graph = draw_dag(&mut rng);
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let ids = draw_ids(&mut rng, 6);
        let assignment: Vec<u32> = (0..graph.len()).map(|i| ids[i % ids.len()]).collect();
        let p = repair(&graph, Partition::from_assignment(assignment), &|_| true);
        let buffer = BufferConfig::shared(64 << 20);
        let report = eval
            .eval_partition(&p.subgraphs(), &buffer, EvalOptions::default())
            .unwrap();
        let floor: u64 = graph.total_weight_elements()
            + graph
                .input_ids()
                .iter()
                .map(|&i| graph.out_elements(i))
                .sum::<u64>()
            + graph
                .output_ids()
                .iter()
                .map(|&o| graph.out_elements(o))
                .sum::<u64>();
        assert!(report.ema_bytes >= floor, "case {case}");
    }
}

/// Subgraph statistics do not depend on member order.
#[test]
fn stats_order_independent() {
    use rand::seq::SliceRandom;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_5000 + case);
        let graph = draw_dag(&mut rng);
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let mut members: Vec<_> = graph.node_ids().collect();
        let a = eval.subgraph_stats(&members).unwrap();
        members.shuffle(&mut rng);
        let b = eval.subgraph_stats(&members).unwrap();
        assert_eq!(a, b, "case {case}");
    }
}

/// The GA honours any sample budget exactly.
#[test]
fn ga_budget_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_6000 + case);
        let budget = rng.gen_range(1u64..120);
        let graph = cocco::graph::models::diamond();
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &graph,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            budget,
        );
        let out = CoccoGa::default().with_population(8).with_seed(1).run(&ctx);
        assert_eq!(out.samples, budget, "case {case}");
        assert_eq!(ctx.budget().used(), budget, "case {case}");
    }
}
