//! Incremental (subgraph-granular) evaluation: bit-identity with the full
//! path over random mutation sequences, across thread counts, and for
//! every stochastic searcher — the acceptance tests of the delta pipeline.

use cocco::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One random partition edit in the style of the GA operators, recording
/// the touched subgraphs into `delta` under the member-set invariant
/// (every member of every changed subgraph is marked).
fn random_edit(g: &Graph, p: &mut Partition, delta: &mut PartitionDelta, rng: &mut StdRng) {
    match rng.gen_range(0..3u32) {
        0 => {
            // Move one node to a neighbouring or fresh subgraph.
            let node = NodeId::from_index(rng.gen_range(0..g.len()));
            let mut candidates: Vec<u32> = g
                .producers(node)
                .iter()
                .chain(g.consumers(node).iter())
                .map(|&v| p.subgraph_of(v))
                .filter(|&sg| sg != p.subgraph_of(node))
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            candidates.push(p.fresh_id());
            let target = candidates[rng.gen_range(0..candidates.len())];
            delta.touch_subgraph(p, p.subgraph_of(node));
            delta.touch_subgraph(p, target);
            delta.touch(node);
            p.assign(node, target);
        }
        1 => {
            // Split one subgraph at a random topological point.
            let groups = p.subgraphs();
            let splittable: Vec<_> = groups.iter().filter(|m| m.len() >= 2).collect();
            if !splittable.is_empty() {
                let group = splittable[rng.gen_range(0..splittable.len())];
                let cut = rng.gen_range(1..group.len());
                let fresh = p.fresh_id();
                delta.touch_members(group);
                for &m in &group[cut..] {
                    p.assign(m, fresh);
                }
            }
        }
        _ => {
            // Merge across a random quotient edge.
            let quotient = Quotient::build(g, p);
            let groups = p.subgraphs();
            let edges: Vec<(u32, u32)> = (0..quotient.num_subgraphs() as u32)
                .flat_map(|a| quotient.succs(a).iter().map(move |&b| (a, b)))
                .collect();
            if !edges.is_empty() {
                let (a, b) = edges[rng.gen_range(0..edges.len())];
                let target = p.subgraph_of(groups[a as usize][0]);
                delta.touch_members(&groups[a as usize]);
                delta.touch_members(&groups[b as usize]);
                for &m in &groups[b as usize] {
                    p.assign(m, target);
                }
            }
        }
    }
}

#[test]
fn incrementally_maintained_fingerprints_equal_from_scratch_fingerprints() {
    // The fingerprint property test of the zero-rehash cache identity:
    // over random mutation + repair sequences, refreshing only the dirty
    // subgraphs' fingerprints must reproduce a from-scratch recomputation,
    // bit for bit, on every step.
    for model in ["randwire-a", "resnet50"] {
        let g = cocco::graph::models::by_name(model).unwrap();
        let mut rng = StdRng::seed_from_u64(0xF19E5);
        let mut partition = repair(&g, Partition::connected_groups(&g, 4), &|m| m.len() <= 12);
        let mut fps = PartitionFingerprints::compute(&partition);
        for step in 0..80 {
            let mut delta = PartitionDelta::clean(g.len());
            for _ in 0..rng.gen_range(1..=3u32) {
                random_edit(&g, &mut partition, &mut delta, &mut rng);
            }
            partition = repair_with_delta(&g, partition, &|m| m.len() <= 12, &mut delta);
            fps = fps.refresh(&partition, &delta);
            assert_eq!(
                fps,
                PartitionFingerprints::compute(&partition),
                "{model} step {step}: incremental fingerprints diverged from recompute"
            );
            // And the by-position view matches the member lists.
            for (members, &fp) in partition.subgraphs().iter().zip(fps.positions()) {
                assert_eq!(fp, NodeSetFp::of_members(members), "{model} step {step}");
            }
        }
    }
}

#[test]
fn incremental_scoring_is_bit_identical_over_random_mutation_sequences() {
    for model in ["randwire-a", "resnet50"] {
        let g = cocco::graph::models::by_name(model).unwrap();
        let evaluator = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        let fits = |members: &[NodeId]| -> bool {
            evaluator
                .subgraph_stats(members)
                .is_ok_and(|s| buffer.fits(s.act_footprint_bytes, s.wgt_resident_bytes))
        };

        let mut rng = StdRng::seed_from_u64(0xDE17A);
        let mut partition = repair(&g, Partition::connected_groups(&g, 4), &fits);
        let (scored, memo) =
            engine.score_composed(&evaluator, &partition.subgraphs(), &buffer, options);
        assert!(!scored.error, "{model}: seed partition must score");
        let mut memo: Arc<EvalMemo> = memo.expect("first composition returns a memo");

        let mut reused_total = 0u64;
        for step in 0..60 {
            // Mutate (1-3 edits), repair, then score through the delta path
            // and compare against the whole-partition evaluator, bit for
            // bit.
            let mut delta = PartitionDelta::clean(g.len());
            for _ in 0..rng.gen_range(1..=3u32) {
                random_edit(&g, &mut partition, &mut delta, &mut rng);
            }
            partition = repair_with_delta(&g, partition, &fits, &mut delta);
            let subgraphs = partition.subgraphs();
            let dirty = delta.dirty_subgraphs(&partition);
            let before = engine.stats().subgraph_reused;
            let (incremental, next_memo) =
                engine.score_delta(&evaluator, &subgraphs, &buffer, options, &memo, &dirty);
            reused_total += engine.stats().subgraph_reused - before;
            let full = evaluator
                .eval_partition(&subgraphs, &buffer, options)
                .unwrap();
            assert_eq!(
                incremental.ema_bytes, full.ema_bytes,
                "{model} step {step}: EMA diverged"
            );
            assert_eq!(
                incremental.energy_pj, full.energy_pj,
                "{model} step {step}: energy diverged (must be bit-identical)"
            );
            assert_eq!(
                incremental.fits, full.fits,
                "{model} step {step}: fits diverged"
            );
            if let Some(next) = next_memo {
                memo = next;
            }
        }
        assert!(
            reused_total > 0,
            "{model}: the walk never reused a term — the delta path is dead"
        );
    }
}

/// Runs one seeded search on resnet50 under an explicit engine
/// configuration and returns everything determinism is judged on.
fn resnet_run(
    method: SearchMethod,
    engine: EngineConfig,
) -> (f64, Option<Genome>, Vec<TracePoint>, EngineStats) {
    let g = cocco::graph::models::resnet50();
    let evaluator = Evaluator::new(&g, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        &g,
        &evaluator,
        BufferSpace::paper_shared(),
        Objective::paper_energy_capacity(),
        400,
    )
    .with_engine(engine);
    let out = method.run(&ctx);
    (
        out.best_cost,
        out.best,
        ctx.trace().points(),
        ctx.engine().stats(),
    )
}

#[test]
fn ga_sa_twostep_incremental_matches_full_path_at_any_thread_count() {
    // The acceptance criterion: seeded GA/SA/two-step runs on resnet50
    // produce bit-identical best cost and trace through the incremental
    // path vs the full path, serial and parallel.
    for method in [
        SearchMethod::ga(),
        SearchMethod::sa(),
        SearchMethod::two_step(),
    ] {
        let name = method.name();
        let reference = resnet_run(
            method.clone().with_seed(17),
            EngineConfig::serial().without_incremental(),
        );
        for threads in [1u32, 4] {
            let incremental = resnet_run(
                method.clone().with_seed(17),
                EngineConfig::with_threads(threads),
            );
            assert_eq!(
                reference.0, incremental.0,
                "{name}: best cost diverged at {threads} threads"
            );
            assert_eq!(
                reference.1, incremental.1,
                "{name}: best genome diverged at {threads} threads"
            );
            assert_eq!(
                reference.2, incremental.2,
                "{name}: trace diverged at {threads} threads"
            );
        }
        // And the incremental path actually reduces full subgraph
        // scorings on the mutation-heavy searchers.
        let incremental = resnet_run(method.with_seed(17), EngineConfig::serial());
        assert!(
            incremental.3.subgraph_scorings < reference.3.subgraph_scorings,
            "{name}: incremental path must score fewer subgraphs \
             ({} vs full {})",
            incremental.3.subgraph_scorings,
            reference.3.subgraph_scorings,
        );
    }
}

#[test]
fn persistent_scoped_and_serial_pools_are_bit_identical() {
    // The pool-lifecycle determinism criterion: seeded GA and SA runs on
    // resnet50 produce bit-identical best cost, genome and trace through
    // the persistent pool, the scoped pool and plain serial evaluation, at
    // 1 and 4 threads.
    for method in [SearchMethod::ga(), SearchMethod::sa()] {
        let name = method.name();
        let reference = resnet_run(method.clone().with_seed(29), EngineConfig::serial());
        for threads in [1u32, 4] {
            for pool in [PoolMode::Persistent, PoolMode::Scoped] {
                let run = resnet_run(
                    method.clone().with_seed(29),
                    EngineConfig::with_threads(threads).with_pool(pool),
                );
                assert_eq!(
                    reference.0, run.0,
                    "{name}: best cost diverged ({pool:?}, {threads} threads)"
                );
                assert_eq!(
                    reference.1, run.1,
                    "{name}: best genome diverged ({pool:?}, {threads} threads)"
                );
                assert_eq!(
                    reference.2, run.2,
                    "{name}: trace diverged ({pool:?}, {threads} threads)"
                );
                assert_eq!(
                    run.3.key_allocs, 0,
                    "{name}: incremental path built keys ({pool:?}, {threads} threads)"
                );
            }
        }
    }
}

#[test]
fn delta_reuse_survives_dse_buffer_changes() {
    // A DSE mutation changes the buffer without touching the partition;
    // the engine must detect the stale memo itself and still be exact.
    let g = cocco::graph::models::googlenet();
    let evaluator = Evaluator::new(&g, AcceleratorConfig::default());
    let engine = Engine::new(EngineConfig::serial());
    let options = EvalOptions::default();
    let partition = repair(&g, Partition::connected_groups(&g, 3), &|_| true);
    let subgraphs = partition.subgraphs();
    let small = BufferConfig::shared(1 << 20);
    let large = BufferConfig::shared(2 << 20);
    let (_, memo) = engine.score_composed(&evaluator, &subgraphs, &small, options);
    let memo = memo.unwrap();
    let dirty = vec![false; subgraphs.len()];
    let (scored, _) = engine.score_delta(&evaluator, &subgraphs, &large, options, &memo, &dirty);
    let full = evaluator
        .eval_partition(&subgraphs, &large, options)
        .unwrap();
    assert_eq!(scored.energy_pj, full.energy_pj);
    assert_eq!(scored.ema_bytes, full.ema_bytes);
    assert_eq!(
        engine.stats().subgraph_reused,
        0,
        "terms under another buffer must never be reused"
    );
}
