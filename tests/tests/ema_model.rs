//! Cross-crate properties of the communication model.

use cocco::prelude::*;

/// EMA of any valid partition is bounded below by weights + model inputs +
/// model outputs (the paper's "Min EMA ≈ #Wgt + #In + #Out").
#[test]
fn ema_floor_holds_for_all_partitions() {
    let g = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let buffer = BufferConfig::shared(64 << 20);
    let floor = g.total_weight_elements()
        + g.input_ids()
            .iter()
            .map(|&i| g.out_elements(i))
            .sum::<u64>()
        + g.output_ids()
            .iter()
            .map(|&o| g.out_elements(o))
            .sum::<u64>();
    for l in [1usize, 2, 4, 8, 1000] {
        let p = Partition::connected_groups(&g, l);
        let report = eval
            .eval_partition(&p.subgraphs(), &buffer, EvalOptions::default())
            .unwrap();
        assert!(
            report.ema_bytes >= floor,
            "L={l}: EMA {} below floor {floor}",
            report.ema_bytes
        );
    }
    // The whole-graph partition achieves the floor exactly.
    let whole = Partition::whole(g.len());
    let report = eval
        .eval_partition(&whole.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    assert_eq!(report.ema_bytes, floor);
}

/// The paper's Figure 1/3 trend: larger fused subgraphs never increase EMA
/// along the nested L = 1 -> whole hierarchy.
#[test]
fn fusion_is_monotone_on_chains() {
    let g = cocco::graph::models::chain(12);
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let buffer = BufferConfig::shared(64 << 20);
    let mut previous = u64::MAX;
    for l in [1usize, 2, 4, 13] {
        let p = Partition::connected_groups(&g, l);
        let report = eval
            .eval_partition(&p.subgraphs(), &buffer, EvalOptions::default())
            .unwrap();
        assert!(
            report.ema_bytes <= previous,
            "L={l} increased EMA: {} > {previous}",
            report.ema_bytes
        );
        previous = report.ema_bytes;
    }
}

/// Splitting a multi-consumer tensor across subgraphs charges it once per
/// consuming subgraph — but never per edge.
#[test]
fn boundary_tensors_charged_per_subgraph() {
    let g = cocco::graph::models::diamond(); // input,a,l,r,add
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let ids: Vec<_> = g.node_ids().collect();
    // {input,a} | {l,r,add}: a crosses once.
    let p1 = Partition::from_assignment(vec![0, 0, 1, 1, 1]);
    // {input,a} | {l} | {r} | {add}: a crosses into two subgraphs.
    let p2 = Partition::from_assignment(vec![0, 0, 1, 2, 3]);
    let buffer = BufferConfig::shared(64 << 20);
    let r1 = eval
        .eval_partition(&p1.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    let r2 = eval
        .eval_partition(&p2.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    let a_bytes = g.out_elements(ids[1]);
    // p2 loads `a` twice (for l and for r) and additionally moves l/r out.
    assert!(r2.ema_bytes >= r1.ema_bytes + a_bytes);
}

/// The shared-buffer design never fits worse than separate buffers of the
/// same total capacity (paper §5.3.1's observation).
#[test]
fn shared_fits_whenever_separate_fits() {
    let g = cocco::graph::models::resnet50();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    for l in [1usize, 3, 6] {
        let p = Partition::connected_groups(&g, l);
        for members in p.subgraphs() {
            let stats = eval.subgraph_stats(&members).unwrap();
            let sep = BufferConfig::separate(1 << 20, 1152 << 10);
            let shared = BufferConfig::shared((1 << 20) + (1152 << 10));
            if sep.fits(stats.act_footprint_bytes, stats.wgt_resident_bytes) {
                assert!(shared.fits(stats.act_footprint_bytes, stats.wgt_resident_bytes));
            }
        }
    }
}

/// Energy decomposition: every term is non-negative, and DRAM traffic
/// dominates for partition extremes (the premise of the whole paper).
#[test]
fn energy_terms_behave() {
    let g = cocco::graph::models::resnet50();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let buffer = BufferConfig::separate(1 << 20, 1152 << 10);
    let singles = Partition::singletons(g.len());
    let fused = Partition::connected_groups(&g, 5);
    let r_single = eval
        .eval_partition(&singles.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    let r_fused = eval
        .eval_partition(&fused.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    assert!(r_single.energy_pj > 0.0 && r_fused.energy_pj > 0.0);
    // Less DRAM traffic => less energy (same compute either way).
    assert!(r_fused.ema_bytes < r_single.ema_bytes);
    assert!(r_fused.energy_pj < r_single.energy_pj);
    // Sanity: ResNet50 inference lands in the single-digit mJ range, as in
    // the paper's Table 3 (4.2 mJ).
    let mj = r_fused.energy_mj();
    assert!((0.5..50.0).contains(&mj), "energy {mj} mJ out of range");
}

/// Latency sanity: ResNet50 at 2 TOPS is compute-bound in the paper at
/// ~4.6 ms; our utilization model should land within a small factor.
#[test]
fn latency_magnitude_is_plausible() {
    let g = cocco::graph::models::resnet50();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let buffer = BufferConfig::shared(2 << 20);
    let p = Partition::connected_groups(&g, 4);
    let report = eval
        .eval_partition(&p.subgraphs(), &buffer, EvalOptions::default())
        .unwrap();
    let ms = report.latency_ms(1.0);
    assert!((2.0..40.0).contains(&ms), "latency {ms} ms out of range");
}
