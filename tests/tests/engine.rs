//! Workspace-level tests of the evaluation engine: thread-count
//! invariance for every stochastic method, cache sharing across derived
//! contexts, and the `infeasible_errors` accounting.

use cocco::prelude::*;

fn explore(method: SearchMethod, threads: u32, budget: u64) -> Exploration {
    Cocco::new()
        .with_method(method)
        .with_budget(budget)
        .with_seed(21)
        .with_engine(EngineConfig::with_threads(threads))
        .explore(&cocco::graph::models::googlenet())
        .unwrap()
}

#[test]
fn every_stochastic_method_is_thread_count_invariant() {
    for method in [
        SearchMethod::ga(),
        SearchMethod::sa(),
        SearchMethod::two_step(),
    ] {
        let name = method.name();
        let serial = explore(method.clone(), 1, 400);
        let parallel = explore(method, 4, 400);
        assert_eq!(serial.cost, parallel.cost, "{name}: cost diverged");
        assert_eq!(serial.genome, parallel.genome, "{name}: genome diverged");
        assert_eq!(serial.trace, parallel.trace, "{name}: trace diverged");
        assert_eq!(serial.samples, parallel.samples, "{name}: samples diverged");
    }
}

#[test]
fn two_step_inner_runs_share_the_engine_cache() {
    let result = explore(SearchMethod::two_step(), 2, 600);
    assert!(
        result.stats.cache_hits > 0,
        "inner GAs re-propose partitions; the shared cache must see hits"
    );
    assert!(result.stats.evals >= result.samples);
}

#[test]
fn engine_stats_round_trip_through_json() {
    let result = explore(SearchMethod::ga(), 2, 300);
    let json = serde_json::to_string(&result).unwrap();
    let back: Exploration = serde_json::from_str(&json).unwrap();
    assert_eq!(back.stats, result.stats);
    assert_eq!(back.infeasible_errors, result.infeasible_errors);
}

#[test]
fn infeasible_errors_count_silent_evaluator_failures() {
    let g = cocco::graph::models::diamond();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        &g,
        &eval,
        BufferSpace::fixed(BufferConfig::shared(1 << 20)),
        Objective::partition_only(CostMetric::Ema),
        10,
    );
    let buffer = BufferConfig::shared(1 << 20);
    // An empty member set is an evaluator error, not a genuine misfit —
    // `fits` maps it to false but must count it.
    assert!(!ctx.fits(&[], &buffer));
    assert_eq!(ctx.trace().infeasible_errors(), 1);
    // Healthy queries leave the counter alone.
    let members: Vec<NodeId> = g.node_ids().collect();
    assert!(ctx.fits(&members, &buffer));
    assert_eq!(ctx.trace().infeasible_errors(), 1);
}

#[test]
fn healthy_runs_report_zero_infeasible_errors() {
    for method in [SearchMethod::ga(), SearchMethod::greedy()] {
        let name = method.name();
        let result = explore(method, 2, 300);
        assert_eq!(result.infeasible_errors, 0, "{name}");
    }
}

#[test]
fn bounded_cache_stays_within_budget_and_preserves_results() {
    // The memory-bounding criterion: a long exploration under a small
    // `cache_capacity` stays within the configured entry budget, reports
    // its evictions, and produces the exact result of an unbounded run.
    let capacity = 512usize;
    let run = |config: EngineConfig| {
        Cocco::new()
            .with_budget(2_000)
            .with_seed(17)
            .with_engine(config)
            .explore(&cocco::graph::models::googlenet())
            .unwrap()
    };
    let unbounded = run(EngineConfig::with_threads(2));
    let bounded = run(EngineConfig::with_threads(2).with_cache_capacity(capacity));
    assert_eq!(bounded.cost, unbounded.cost, "eviction changed the cost");
    assert_eq!(
        bounded.genome, unbounded.genome,
        "eviction changed the genome"
    );
    assert_eq!(bounded.trace, unbounded.trace, "eviction changed the trace");
    let entries = bounded.stats.cache_entries + bounded.stats.subgraph_entries;
    assert!(
        entries <= capacity as u64,
        "{entries} cached entries exceed the {capacity}-entry budget"
    );
    assert!(
        bounded.stats.evictions() > 0,
        "a 2000-sample run against a 512-entry budget must evict"
    );
    assert_eq!(
        unbounded.stats.evictions(),
        0,
        "the default budget must be generous enough to never evict here"
    );
}

#[test]
fn eviction_victims_are_deterministic_across_identical_runs() {
    // The regression test for nondeterministic victim selection: when a
    // generation sweep still overflows the shard budget, the entries shed
    // must be a function of the keys alone — never of map iteration
    // order — so two identical runs persist byte-identical snapshots.
    let dir = std::env::temp_dir().join(format!("cocco-evict-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |tag: &str| {
        let path = dir.join(format!("snapshot-{tag}.json"));
        let result = Cocco::new()
            .with_budget(2_000)
            .with_seed(17)
            .with_engine(EngineConfig::serial().with_cache_capacity(512))
            .with_cache_file(&path)
            .explore(&cocco::graph::models::googlenet())
            .unwrap();
        assert!(
            result.stats.evictions() > 0,
            "the run must evict, or byte-identity proves nothing"
        );
        (std::fs::read(&path).unwrap(), result)
    };
    let (bytes_a, a) = run("a");
    let (bytes_b, b) = run("b");
    assert_eq!(
        a.cost, b.cost,
        "identical runs diverged before the snapshot"
    );
    assert_eq!(
        bytes_a, bytes_b,
        "identical runs persisted different cache snapshots after evictions"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_path_builds_zero_per_probe_keys() {
    // The zero-rehash criterion, observed end to end through the facade.
    let result = explore(SearchMethod::ga(), 2, 400);
    assert_eq!(result.stats.key_allocs, 0);
}

#[test]
fn roll_up_cache_hits_seed_offspring_memos() {
    // Memo-on-hit (ROADMAP item): genomes scored from the partition
    // roll-up cache still hand breakdowns to their offspring, so the
    // fraction of terms answered without a fresh scoring rises. Observable
    // signal: a GA run reuses memo terms even when many evaluations are
    // cache hits, and total fresh scorings stay a small fraction of term
    // requests.
    let result = explore(SearchMethod::ga(), 1, 800);
    assert!(result.stats.cache_hits > 0);
    assert!(result.stats.subgraph_reused > 0);
    assert!(
        result.stats.subgraph_hit_rate() > 0.5,
        "memo reuse + term cache must answer most term requests \
         (got {:.0}%)",
        result.stats.subgraph_hit_rate() * 100.0
    );
}
