//! Workspace-level tests of the evaluation engine: thread-count
//! invariance for every stochastic method, cache sharing across derived
//! contexts, and the `infeasible_errors` accounting.

use cocco::prelude::*;

fn explore(method: SearchMethod, threads: u32, budget: u64) -> Exploration {
    Cocco::new()
        .with_method(method)
        .with_budget(budget)
        .with_seed(21)
        .with_engine(EngineConfig::with_threads(threads))
        .explore(&cocco::graph::models::googlenet())
        .unwrap()
}

#[test]
fn every_stochastic_method_is_thread_count_invariant() {
    for method in [
        SearchMethod::ga(),
        SearchMethod::sa(),
        SearchMethod::two_step(),
    ] {
        let name = method.name();
        let serial = explore(method.clone(), 1, 400);
        let parallel = explore(method, 4, 400);
        assert_eq!(serial.cost, parallel.cost, "{name}: cost diverged");
        assert_eq!(serial.genome, parallel.genome, "{name}: genome diverged");
        assert_eq!(serial.trace, parallel.trace, "{name}: trace diverged");
        assert_eq!(serial.samples, parallel.samples, "{name}: samples diverged");
    }
}

#[test]
fn two_step_inner_runs_share_the_engine_cache() {
    let result = explore(SearchMethod::two_step(), 2, 600);
    assert!(
        result.stats.cache_hits > 0,
        "inner GAs re-propose partitions; the shared cache must see hits"
    );
    assert!(result.stats.evals >= result.samples);
}

#[test]
fn engine_stats_round_trip_through_json() {
    let result = explore(SearchMethod::ga(), 2, 300);
    let json = serde_json::to_string(&result).unwrap();
    let back: Exploration = serde_json::from_str(&json).unwrap();
    assert_eq!(back.stats, result.stats);
    assert_eq!(back.infeasible_errors, result.infeasible_errors);
}

#[test]
fn infeasible_errors_count_silent_evaluator_failures() {
    let g = cocco::graph::models::diamond();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        &g,
        &eval,
        BufferSpace::fixed(BufferConfig::shared(1 << 20)),
        Objective::partition_only(CostMetric::Ema),
        10,
    );
    let buffer = BufferConfig::shared(1 << 20);
    // An empty member set is an evaluator error, not a genuine misfit —
    // `fits` maps it to false but must count it.
    assert!(!ctx.fits(&[], &buffer));
    assert_eq!(ctx.trace().infeasible_errors(), 1);
    // Healthy queries leave the counter alone.
    let members: Vec<NodeId> = g.node_ids().collect();
    assert!(ctx.fits(&members, &buffer));
    assert_eq!(ctx.trace().infeasible_errors(), 1);
}

#[test]
fn healthy_runs_report_zero_infeasible_errors() {
    for method in [SearchMethod::ga(), SearchMethod::greedy()] {
        let name = method.name();
        let result = explore(method, 2, 300);
        assert_eq!(result.infeasible_errors, 0, "{name}");
    }
}
