//! Every search method produces valid partitions on every paper model.

use cocco::prelude::*;

fn check_valid(model: &str, buffer: BufferConfig, budget: u64) {
    let g = cocco::graph::models::by_name(model).unwrap();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let make_ctx = || {
        SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(buffer),
            Objective::partition_only(CostMetric::Ema),
            budget,
        )
    };
    let methods: Vec<(&str, Box<dyn Searcher>)> = vec![
        ("greedy", Box::new(GreedyFusion::default())),
        ("dp", Box::new(DepthDp::default())),
        (
            "ga",
            Box::new(CoccoGa::default().with_population(24).with_seed(1)),
        ),
        ("sa", Box::new(SimulatedAnnealing::default().with_seed(1))),
    ];
    for (name, method) in methods {
        let out = method.run(&make_ctx());
        let best = out
            .best
            .unwrap_or_else(|| panic!("{model}/{name}: no solution"));
        best.partition
            .validate(&g)
            .unwrap_or_else(|e| panic!("{model}/{name}: invalid partition: {e}"));
        // Every subgraph respects the capacity (streamed singletons aside).
        for members in best.partition.subgraphs() {
            let stats = eval.subgraph_stats(&members).unwrap();
            assert!(
                buffer.fits(stats.act_footprint_bytes, stats.wgt_resident_bytes),
                "{model}/{name}: oversized subgraph"
            );
        }
    }
}

#[test]
fn cnn_models_produce_valid_partitions() {
    for model in ["vgg16", "resnet50", "googlenet"] {
        check_valid(model, BufferConfig::separate(1 << 20, 1152 << 10), 400);
    }
}

#[test]
fn irregular_models_produce_valid_partitions() {
    for model in ["randwire-a", "nasnet"] {
        check_valid(model, BufferConfig::separate(1 << 20, 1152 << 10), 300);
    }
}

#[test]
fn sequence_models_produce_valid_partitions() {
    for model in ["transformer", "gpt"] {
        check_valid(model, BufferConfig::shared(2 << 20), 300);
    }
}

#[test]
fn resnet152_produces_valid_partitions() {
    check_valid("resnet152", BufferConfig::shared(2 << 20), 300);
}

#[test]
fn exhaustive_is_valid_where_it_completes() {
    for model in ["vgg16", "chain"] {
        let g = if model == "chain" {
            cocco::graph::models::chain(10)
        } else {
            cocco::graph::models::by_name(model).unwrap()
        };
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(BufferConfig::separate(1 << 20, 1152 << 10)),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        let out = Exhaustive::default().run(&ctx);
        assert!(out.completed, "{model} enumeration did not complete");
        assert!(out.best.unwrap().partition.validate(&g).is_ok());
    }
}
