//! End-to-end reproduction of the paper's worked examples (Figures 4-6)
//! through the public API.

use cocco::graph::{Dims2, GraphBuilder, Kernel, LayerOp, TensorShape};
use cocco::mem::snapshot::replay;
use cocco::prelude::*;
use cocco::tiling::production::derive_production;

fn conv1d(f: u32, s: u32, p: u32) -> LayerOp {
    LayerOp::Conv {
        kernel: Kernel::new(Dims2::new(f, 1), Dims2::new(s, 1), Dims2::new(p, 0)),
        c_out: 1,
    }
}

/// The Figure 5 subgraph (node(1) split into two single-producer halves).
fn figure5() -> cocco::graph::Graph {
    let mut b = GraphBuilder::new("fig5");
    let in2 = b.input(TensorShape::new(64, 1, 1));
    let in1 = b.input(TensorShape::new(64, 1, 1));
    b.add("n0", conv1d(3, 2, 1), &[in2]).unwrap();
    let n1a = b.add("n1a", conv1d(3, 1, 1), &[in2]).unwrap();
    let n1b = b.add("n1b", conv1d(3, 1, 1), &[in1]).unwrap();
    b.eltwise("n1", &[n1a, n1b]).unwrap();
    b.add("n2", conv1d(1, 1, 0), &[in1]).unwrap();
    b.finish().unwrap()
}

#[test]
fn figure5_derivation_matches_paper() {
    let g = figure5();
    let members: Vec<_> = g.node_ids().collect();
    let mapper = Mapper::new(MapperPolicy::Tile { rows: 2, cols: 1 });
    let scheme = derive_scheme(&g, &members, &mapper).unwrap();
    assert!(scheme.exact_upd());
    let s = |name: &str| {
        let id = g.iter().find(|(_, n)| n.name() == name).unwrap().0;
        *scheme.get(id).unwrap()
    };
    // Δ(-2)=4, x(-2)=6, upd(-2)=1
    assert_eq!(s("input").delta.h, 4);
    assert_eq!(s("input").tile.h, 6);
    assert_eq!(s("input").upd_num.h, 1);
    // Δ(-1)=2, x(-1)=4, upd(-1)=2
    assert_eq!(s("input1").delta.h, 2);
    assert_eq!(s("input1").tile.h, 4);
    assert_eq!(s("input1").upd_num.h, 2);
    // outputs: Δ=x=2; upd(0)=1, upd(1)=upd(2)=2 — the co-prime {1,2,1,2,2}.
    assert_eq!(s("n0").upd_num.h, 1);
    assert_eq!(s("n1").upd_num.h, 2);
    assert_eq!(s("n2").upd_num.h, 2);
}

#[test]
fn figure6_snapshot_matches_paper() {
    let g = figure5();
    let members: Vec<_> = g.node_ids().collect();
    let mapper = Mapper::new(MapperPolicy::Tile { rows: 2, cols: 1 });
    let scheme = derive_scheme(&g, &members, &mapper).unwrap();
    let snaps = replay(&g, &scheme, 2);
    let id = |name: &str| g.iter().find(|(_, n)| n.name() == name).unwrap().0;
    let ranges = |op: usize, node: &str| -> Vec<(u32, u32)> {
        snaps[op]
            .updates
            .iter()
            .filter(|u| u.node == id(node))
            .map(|u| (u.from, u.to))
            .collect()
    };
    assert_eq!(ranges(0, "input"), vec![(0, 5)]);
    assert_eq!(ranges(1, "input"), vec![(4, 9)]);
    assert_eq!(ranges(0, "input1"), vec![(0, 3), (2, 5)]);
    assert_eq!(ranges(1, "input1"), vec![(4, 7), (6, 9)]);
}

#[test]
fn figure4_production_centric_extra_data() {
    // Node(-1) input; node(0) 5x5/2; node(1) 1x1/1; node(2) 3x3/2; node(3) add.
    let mut b = GraphBuilder::new("fig4");
    let i = b.input(TensorShape::new(63, 63, 1));
    let n0 = b
        .add(
            "n0",
            LayerOp::Conv {
                kernel: Kernel::new(Dims2::square(5), Dims2::square(2), Dims2::square(1)),
                c_out: 1,
            },
            &[i],
        )
        .unwrap();
    let n1 = b
        .add(
            "n1",
            LayerOp::Conv {
                kernel: Kernel::square_valid(1, 1),
                c_out: 1,
            },
            &[i],
        )
        .unwrap();
    let n2 = b
        .add(
            "n2",
            LayerOp::Conv {
                kernel: Kernel::new(Dims2::square(3), Dims2::square(2), Dims2::square(0)),
                c_out: 1,
            },
            &[n1],
        )
        .unwrap();
    b.eltwise("n3", &[n0, n2]).unwrap();
    let g = b.finish().unwrap();
    let members: Vec<_> = g.node_ids().collect();
    let report = derive_production(&g, &members, Dims2::square(5)).unwrap();
    let extra = |name: &str| {
        let id = g.iter().find(|(_, n)| n.name() == name).unwrap().0;
        report.get(id).unwrap().extra_elements()
    };
    // "three extra data of Node(2) along with sixteen extra source data of
    // Node(1) take up extra memory space"
    assert_eq!(extra("n2"), 3);
    assert_eq!(extra("n1"), 16);

    // And the consumption-centric scheme avoids exactly that overhead.
    let mapper = Mapper::new(MapperPolicy::Tile { rows: 1, cols: 1 });
    let scheme = derive_scheme(&g, &members, &mapper).unwrap();
    let consumption_total: u64 = scheme.iter().map(|(_, s)| s.tile.area()).sum();
    assert!(report.total_buffered() > consumption_total);
}

#[test]
fn buffer_region_manager_matches_paper_overhead() {
    // "272-byte size (17-bit address for the 1MB 64bit-width global
    // buffer)" with N = 64.
    let mgr = cocco::mem::BufferRegionManager::new(1 << 20, 64);
    assert_eq!(mgr.register_file_bytes(), 272);
}
