//! Checkpoint/resume bit-identity: every method of the registry,
//! interrupted mid-run at a pseudo-random step, with its `DriverState`
//! round-tripped through JSON, resumes to the exact outcome (best cost,
//! genome, trace) of the uninterrupted seeded run — at 1 and 4 worker
//! threads.

use cocco::prelude::*;

/// The methods under test: all seven searchers (TwoStep in both its
/// interleaved default and the sequential baseline, and both samplings)
/// plus the portfolio meta-driver.
fn methods() -> Vec<(SearchMethod, &'static str)> {
    vec![
        (SearchMethod::ga().with_seed(17), "ga"),
        (SearchMethod::sa().with_seed(17), "sa"),
        (SearchMethod::greedy(), "greedy"),
        (SearchMethod::depth_dp(), "dp"),
        (SearchMethod::exhaustive(), "exhaustive"),
        (
            SearchMethod::TwoStep(TwoStep::random().with_per_candidate(120).with_seed(17)),
            "twostep-interleaved",
        ),
        (
            SearchMethod::TwoStep(TwoStep::grid().with_per_candidate(120).with_seed(17)),
            "twostep-grid",
        ),
        (
            SearchMethod::TwoStep(
                TwoStep::random()
                    .with_per_candidate(120)
                    .with_seed(17)
                    .sequential(),
            ),
            "twostep-sequential",
        ),
        (
            SearchMethod::Portfolio(
                Portfolio::new(vec![SearchMethod::ga(), SearchMethod::sa()]).with_seed(17),
            ),
            "portfolio",
        ),
    ]
}

fn make_ctx<'a>(
    g: &'a cocco::graph::Graph,
    eval: &'a Evaluator<'a>,
    threads: u32,
) -> SearchContext<'a> {
    SearchContext::new(
        g,
        eval,
        BufferSpace::paper_shared(),
        Objective::paper_energy_capacity(),
        480,
    )
    .with_engine(EngineConfig::with_threads(threads))
}

type RunResult = (f64, Option<Genome>, u64, Vec<TracePoint>);

/// Runs the driver to completion.
fn run_to_completion(
    method: &SearchMethod,
    g: &cocco::graph::Graph,
    eval: &Evaluator<'_>,
    threads: u32,
) -> RunResult {
    let ctx = make_ctx(g, eval, threads);
    let out = method.run(&ctx);
    (out.best_cost, out.best, out.samples, ctx.trace().points())
}

/// Runs the driver for `interrupt_at` steps, snapshots through JSON, then
/// resumes on a **fresh context** (budget and trace replayed) to the end.
fn run_interrupted(
    method: &SearchMethod,
    g: &cocco::graph::Graph,
    eval: &Evaluator<'_>,
    threads: u32,
    interrupt_at: u64,
) -> RunResult {
    let snapshot = {
        let ctx = make_ctx(g, eval, threads);
        let mut driver = method.driver();
        let mut steps = 0u64;
        loop {
            if steps >= interrupt_at {
                break;
            }
            match driver.next_batch(&ctx) {
                Step::Evaluate(mut batch) => {
                    ctx.evaluate_chunks(&mut batch);
                    driver.absorb(&ctx, batch);
                }
                Step::Continue => {}
                Step::Done => break,
            }
            steps += 1;
        }
        SearchSnapshot::capture(method, &*driver, &ctx)
        // The interrupted context, driver and any in-flight state die here.
    };

    // Round-trip the whole snapshot (driver state, trace, coordinates)
    // through its JSON encoding — what a checkpoint file stores.
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let snapshot: SearchSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
    assert_eq!(snapshot.fingerprint, eval.fingerprint());
    assert_eq!(&snapshot.method, method);

    let ctx = make_ctx(g, eval, threads);
    snapshot.replay_into(&ctx);
    let mut driver = method
        .driver_from_state(&snapshot.driver)
        .expect("state matches method");
    let out = run_driver(&mut *driver, &ctx);
    (out.best_cost, out.best, out.samples, ctx.trace().points())
}

#[test]
fn every_method_resumes_bit_identically_mid_run() {
    let g = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    for (method, name) in methods() {
        for threads in [1u32, 4] {
            let reference = run_to_completion(&method, &g, &eval, threads);
            // A cheap deterministic per-(method, threads) pseudo-random
            // interrupt point: somewhere in the first handful of steps,
            // never step 0 alone.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            let interrupt_at = 1 + (h.wrapping_add(u64::from(threads)) % 5);
            let resumed = run_interrupted(&method, &g, &eval, threads, interrupt_at);
            assert_eq!(
                reference.0, resumed.0,
                "{name}@{threads}t: best cost diverged after resume (step {interrupt_at})"
            );
            assert_eq!(
                reference.1, resumed.1,
                "{name}@{threads}t: best genome diverged after resume"
            );
            assert_eq!(
                reference.2, resumed.2,
                "{name}@{threads}t: samples diverged after resume"
            );
            assert_eq!(
                reference.3, resumed.3,
                "{name}@{threads}t: trace diverged after resume"
            );
        }
    }
}

#[test]
fn snapshot_of_a_finished_driver_resumes_to_the_same_outcome() {
    // Resuming a completed run is a no-op: the driver reports Done
    // immediately and hands back the stored outcome.
    let g = cocco::graph::models::diamond();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    let method = SearchMethod::ga().with_seed(3);
    let ctx = make_ctx(&g, &eval, 1);
    let mut driver = method.driver();
    let out = run_driver(&mut *driver, &ctx);
    let snapshot = SearchSnapshot::capture(&method, &*driver, &ctx);
    let json = serde_json::to_string(&snapshot).unwrap();
    let snapshot: SearchSnapshot = serde_json::from_str(&json).unwrap();
    let ctx2 = make_ctx(&g, &eval, 1);
    snapshot.replay_into(&ctx2);
    let mut resumed = method.driver_from_state(&snapshot.driver).unwrap();
    let again = run_driver(&mut *resumed, &ctx2);
    assert_eq!(out.best_cost, again.best_cost);
    assert_eq!(out.best, again.best);
    assert_eq!(out.samples, again.samples);
    assert_eq!(ctx.trace().points(), ctx2.trace().points());
}

#[test]
fn driver_states_round_trip_through_json_for_every_method() {
    // Structural check: DriverState of every method serializes and
    // deserializes to an equal value (including infinite costs).
    let g = cocco::graph::models::diamond();
    let eval = Evaluator::new(&g, AcceleratorConfig::default());
    for (method, name) in methods() {
        let ctx = make_ctx(&g, &eval, 1);
        let mut driver = method.driver();
        // Advance a couple of steps so the state is non-trivial.
        for _ in 0..2 {
            match driver.next_batch(&ctx) {
                Step::Evaluate(mut batch) => {
                    ctx.evaluate_chunks(&mut batch);
                    driver.absorb(&ctx, batch);
                }
                Step::Continue => {}
                Step::Done => break,
            }
        }
        let state = driver.state();
        let json = serde_json::to_string(&state).unwrap_or_else(|e| panic!("{name}: {e}"));
        let back: DriverState =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(state, back, "{name}: state changed across the round-trip");
    }
}
