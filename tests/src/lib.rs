//! Integration test crate for the Cocco workspace (tests live in `tests/tests/`).
