//! Hardware-mapping co-exploration on GoogleNet: find the buffer capacity
//! and partition that minimize `BUF_SIZE + α·energy` (paper Formula 2),
//! comparing the separate-buffer and shared-buffer memory designs of
//! paper §5.3.1.
//!
//! Run with: `cargo run --release -p cocco --example co_explore`

use cocco::prelude::*;

fn main() -> Result<(), cocco::Error> {
    let model = cocco::graph::models::googlenet();
    println!("{model}\n");

    let budget = 10_000;
    for (label, space) in [
        ("separate buffers", BufferSpace::paper_separate()),
        ("shared buffer", BufferSpace::paper_shared()),
    ] {
        let result = Cocco::new()
            .with_space(space)
            .with_objective(Objective::co_exploration(CostMetric::Energy, 0.002))
            .with_budget(budget)
            .with_seed(1)
            .explore(&model)?;
        let buffer = match result.genome.buffer {
            BufferConfig::Separate { glb, wgt } => {
                format!("GLB {} KB + WGT {} KB", glb >> 10, wgt >> 10)
            }
            BufferConfig::Shared { total } => format!("{} KB shared", total >> 10),
        };
        println!(
            "{label:<18} -> {buffer:<28} cost {:.3e}  energy {:.3} mJ  {} subgraphs",
            result.cost,
            result.report.energy_mj(),
            result.genome.partition.num_subgraphs()
        );
    }
    println!(
        "\nThe shared design usually reaches a lower Formula-2 cost: one pool\n\
         serves whichever of activations/weights is the bottleneck per subgraph\n\
         (paper Table 2 vs Table 1)."
    );
    Ok(())
}
