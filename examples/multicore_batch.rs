//! Multi-core and batch scaling (paper §5.4.2-§5.4.3, Table 3): share a
//! subgraph's weights across cores over the crossbar and amortize weight
//! loads across batch samples.
//!
//! Run with: `cargo run --release -p cocco --example multicore_batch`

use cocco::prelude::*;

fn main() -> Result<(), cocco::Error> {
    let model = cocco::graph::models::resnet50();
    println!("{model}\n");
    println!(
        "{:>5} {:>6} {:>12} {:>10} {:>12}",
        "cores", "batch", "energy (mJ)", "lat (ms)", "buffer (KB)"
    );
    for cores in [1u32, 2, 4] {
        for batch in [1u32, 2, 8] {
            let options = EvalOptions::new(cores, batch).expect("nonzero cores/batch");
            let result = Cocco::new()
                .with_space(BufferSpace::paper_shared())
                .with_objective(Objective::paper_energy_capacity())
                .with_options(options)
                .with_budget(4_000)
                .with_seed(11)
                .explore(&model)?;
            println!(
                "{:>5} {:>6} {:>12.2} {:>10.2} {:>12}",
                cores,
                batch,
                result.report.energy_mj(),
                result.report.latency_ms(1.0),
                result.genome.buffer.total_bytes() >> 10
            );
        }
    }
    println!(
        "\nExpected shapes (paper Table 3): energy rises from 1 to 2 cores\n\
         (crossbar weight rotation), per-core capacity falls with more cores\n\
         (weight sharding), and latency grows sub-linearly with batch size\n\
         (weights load once per subgraph)."
    );
    Ok(())
}
