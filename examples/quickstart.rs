//! Quickstart: build a small CNN, co-explore its memory configuration and
//! print the recommended design.
//!
//! Run with: `cargo run --release -p cocco --example quickstart`

use cocco::prelude::*;

fn main() -> Result<(), cocco::Error> {
    // 1. Describe a model with the graph builder (or use
    //    `cocco::graph::models::*` for the paper's workloads). Builder
    //    errors convert into the unified `cocco::Error`, so one `?` works
    //    across the whole pipeline.
    let mut b = GraphBuilder::new("tiny-cnn");
    let input = b.input(TensorShape::new(64, 64, 3));
    let c1 = b.conv("c1", input, 32, Kernel::square_same(3, 1))?;
    let c2 = b.conv("c2", c1, 32, Kernel::square_same(3, 1))?;
    let skip = b.conv("skip", c1, 32, Kernel::pointwise())?;
    let add = b.eltwise("add", &[c2, skip])?;
    let down = b.conv("down", add, 64, Kernel::square_same(3, 2))?;
    let gap = b.global_pool("gap", down)?;
    b.fc("classifier", gap, 10)?;
    let model = b.finish()?;
    println!("model: {model}");

    // 2. Co-explore buffer capacity and graph partition (paper Formula 2).
    //    Any method of the registry plugs in here — swap `SearchMethod::ga()`
    //    for `sa()`, `greedy()`, `depth_dp()`, `exhaustive()` or
    //    `two_step()` and the rest of the session is unchanged.
    let result = Cocco::new()
        .with_space(BufferSpace::paper_shared())
        .with_objective(Objective::paper_energy_capacity())
        .with_method(SearchMethod::ga())
        .with_budget(5_000)
        .with_seed(42)
        .explore(&model)?;

    // 3. Inspect the recommendation.
    println!(
        "recommended shared buffer: {} KB",
        result.genome.buffer.total_bytes() >> 10
    );
    println!(
        "subgraphs: {} | EMA: {:.1} KB | energy: {:.4} mJ | latency: {:.3} ms",
        result.genome.partition.num_subgraphs(),
        result.report.ema_bytes as f64 / 1024.0,
        result.report.energy_mj(),
        result.report.latency_ms(1.0),
    );
    for (i, members) in result.genome.partition.subgraphs().iter().enumerate() {
        let names: Vec<&str> = members.iter().map(|&m| model.node(m).name()).collect();
        println!("  subgraph {i}: {}", names.join(", "));
    }
    Ok(())
}
