//! Graph-partition comparison on ResNet-50: layer-by-layer execution vs the
//! Halide-style greedy baseline, the Irregular-NN DP baseline and Cocco's
//! GA — the workload the paper's introduction motivates (reducing external
//! memory access through inter-layer reuse).
//!
//! Run with: `cargo run --release -p cocco --example resnet_partition`

use cocco::prelude::*;

fn main() {
    let model = cocco::graph::models::resnet50();
    let accel = AcceleratorConfig::default();
    let evaluator = Evaluator::new(&model, accel);
    // The paper's single-core platform: 1 MB global + 1.125 MB weight buffer.
    let buffer = BufferConfig::separate(1 << 20, 1152 << 10);

    println!("{model}");
    println!("platform: 2 TOPS, 1 MB GLB + 1.125 MB WGT, 16 GB/s DRAM\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "method", "subgraphs", "EMA (MB)", "avgBW (GB/s)", "samples"
    );

    let report_row = |name: &str, partition: &Partition, samples: u64| {
        let report = evaluator
            .eval_partition(&partition.subgraphs(), &buffer, EvalOptions::default())
            .expect("evaluation");
        println!(
            "{:<22} {:>10} {:>12.2} {:>12.2} {:>10}",
            name,
            partition.num_subgraphs(),
            report.ema_bytes as f64 / (1 << 20) as f64,
            report.avg_bw_gbps,
            samples
        );
    };

    // Baseline: one layer per subgraph.
    report_row("layer-by-layer", &Partition::singletons(model.len()), 0);

    // Every search method, through the same registry and trait path the
    // `Cocco` facade uses (partition-only objective at the fixed buffer;
    // the enumeration is skipped — ResNet-50 is beyond its state budget).
    let ctx = SearchContext::new(
        &model,
        &evaluator,
        BufferSpace::fixed(buffer),
        Objective::partition_only(CostMetric::Ema),
        20_000,
    );
    for method in [
        SearchMethod::greedy(),
        SearchMethod::depth_dp(),
        SearchMethod::ga().with_seed(0xC0CC0),
    ] {
        let outcome = method.run(&ctx);
        report_row(
            method.name(),
            &outcome.best.expect("feasible partition").partition,
            outcome.samples,
        );
    }
}
