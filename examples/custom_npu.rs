//! Customize the accelerator model and inspect the consumption-centric
//! execution scheme of a subgraph (paper §3.1) on an irregular RandWire
//! network.
//!
//! Run with: `cargo run --release -p cocco --example custom_npu`

use cocco::mem::footprint::subgraph_footprint;
use cocco::prelude::*;

fn main() -> Result<(), cocco::Error> {
    // An 8x8 PE array at 1.2 GHz with 32 GB/s of DRAM — a beefier core
    // than the paper's default.
    let accel = AcceleratorConfig {
        pe_rows: 8,
        pe_cols: 8,
        freq_ghz: 1.2,
        dram_gbps: 32.0,
        mapper: Mapper::new(MapperPolicy::Tile { rows: 4, cols: 16 }),
        ..AcceleratorConfig::default()
    };
    println!("peak throughput: {:.2} TOPS", accel.peak_tops());

    let model = cocco::graph::models::randwire_a();
    println!("{model}");

    let evaluator = Evaluator::new(&model, accel.clone());
    let ctx = SearchContext::new(
        &model,
        &evaluator,
        BufferSpace::paper_shared(),
        Objective::paper_energy_capacity(),
        4_000,
    );
    let outcome = CoccoGa::default().with_seed(7).run(&ctx);
    let best = outcome.best.expect("feasible solution");
    println!(
        "recommended buffer {} KB, cost {:.3e}",
        best.buffer.total_bytes() >> 10,
        outcome.best_cost
    );

    // Inspect the derived execution scheme of the largest subgraph.
    let subgraphs = best.partition.subgraphs();
    let largest = subgraphs.iter().max_by_key(|m| m.len()).unwrap();
    let scheme = derive_scheme(&model, largest, &accel.mapper)?;
    let fp = subgraph_footprint(&model, largest, &scheme, 1);
    println!(
        "\nlargest subgraph: {} layers, {} buffer regions, {:.1} KB activations, {:.1} KB weights",
        largest.len(),
        fp.regions,
        fp.activation_bytes as f64 / 1024.0,
        fp.weight_bytes as f64 / 1024.0
    );
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8}",
        "layer", "Δ (h,w)", "x (h,w)", "upd", "side?"
    );
    for (id, s) in scheme.iter() {
        println!(
            "{:<22} {:>10} {:>10} {:>8} {:>8}",
            model.node(id).name(),
            format!("{},{}", s.delta.h, s.delta.w),
            format!("{},{}", s.tile.h, s.tile.w),
            format!("{}x{}", s.upd_num.h, s.upd_num.w),
            if s.interior_consumed && s.overlap_rows() > 0 {
                "yes"
            } else {
                "-"
            }
        );
    }
    Ok(())
}
