//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework under the same crate name and
//! import paths the Cocco crates already use (`use serde::{Serialize,
//! Deserialize}` plus `#[derive(Serialize, Deserialize)]`, provided by the
//! sibling `serde_derive` proc-macro crate).
//!
//! The data model is a JSON-shaped [`Value`] tree rather than upstream
//! serde's visitor architecture: [`Serialize`] renders a type into a
//! [`Value`], [`Deserialize`] reads one back. The `serde_json` shim prints
//! and parses that tree. Swapping the real crates back in only requires the
//! handful of manual `impl`s in this workspace (search for `impl Serialize
//! for` outside `shims/`) to be rewritten against upstream's traits; all
//! derived code regenerates itself.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped tree: the serialization data model of this shim.
///
/// Object fields keep insertion order so serialized output is stable and
/// diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` — also used for `None` and non-finite floats.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of field name to value.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for any other variant.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value of object field `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, value)| value)
    }

    /// A short human label for error messages ("object", "string", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error raised while deserializing a [`Value`] into a typed structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }

    /// A "expected X for type T, found Y" mismatch error.
    pub fn mismatch(expected: &str, ty: &str, found: &Value) -> Self {
        Self::custom(format!(
            "expected {expected} for {ty}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a required object field, with a typed error on absence.
///
/// Used by `#[derive(Deserialize)]`-generated code.
pub fn field<'v>(fields: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the shim's data model.
    fn to_value(&self) -> Value;
}

/// Types that can be read back from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses an instance out of the shim's data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::mismatch("boolean", "bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::mismatch("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("{n} out of range for {}", stringify!($t)))
                    })?,
                    other => return Err(Error::mismatch("integer", stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else if self.is_nan() {
            // JSON has no infinities or NaN; they round-trip as tagged
            // strings so checkpointed costs (often infinite) survive
            // exactly.
            Value::Str("NaN".to_string())
        } else if *self > 0.0 {
            Value::Str("Infinity".to_string())
        } else {
            Value::Str("-Infinity".to_string())
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats serialize as tagged strings (see
            // `Serialize for f64`).
            Value::Str(s) => match s.as_str() {
                "Infinity" => Ok(f64::INFINITY),
                "-Infinity" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                _ => Err(Error::mismatch("number", "f64", value)),
            },
            // Older snapshots rendered non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::mismatch("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::mismatch("string", "String", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::mismatch("single-character string", "char", other)),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::mismatch("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::mismatch("2-element array", "tuple", value)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::mismatch("3-element array", "tuple", value)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let v: Option<f64> = Some(0.002);
        assert_eq!(Option::<f64>::from_value(&v.to_value()).unwrap(), v);
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn non_finite_floats_round_trip_exactly() {
        for x in [f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
        }
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        // Legacy null (the previous non-finite encoding) still reads.
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn type_mismatches_are_reported() {
        let err = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("u32"));
        let err = field(&[], "population", "GaConfig").unwrap_err();
        assert!(err.to_string().contains("population"));
        assert!(err.to_string().contains("GaConfig"));
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(i8::from_value(&Value::U64(200)).is_err());
    }
}
