//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the `serde` shim's `Value` data model.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are unavailable offline). Supported input shapes — exactly what the
//! Cocco workspace derives on:
//!
//! * structs with named fields (including unit-ish `struct S {}`),
//! * tuple structs (newtypes serialize transparently, wider ones as arrays),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   upstream serde's default representation).
//!
//! Generics, lifetimes and `#[serde(...)]` attributes are intentionally
//! rejected so that code written against this shim stays inside the subset
//! upstream serde would accept unchanged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field list.
enum Fields {
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Number of tuple fields.
    Tuple(usize),
    /// No payload at all (`struct S;` or a unit enum variant).
    Unit,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// The parsed input item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(...)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive shim: generic type `{name}` is not supported"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("serde_derive: bad struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("serde_derive: bad enum body: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("serde_derive: cannot derive for `{other}`")),
    }
}

/// Parses `attr* vis? name : type ,`-separated named fields, keeping only
/// the names. Types are skipped with angle-bracket awareness so commas
/// inside `Vec<(A, B)>`-style types do not split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(token) = tokens.next() else { break };
        let TokenTree::Ident(field) = token else {
            return Err(format!("serde_derive: expected field name, got {token:?}"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde_derive: expected `:`, got {other:?}")),
        }
        names.push(field.to_string());
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(names)
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut in_field = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    count += 1;
                    in_field = true;
                }
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Attributes before the variant.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() != '#' {
                break;
            }
            tokens.next();
            tokens.next();
        }
        let Some(token) = tokens.next() else { break };
        let TokenTree::Ident(name) = token else {
            return Err(format!(
                "serde_derive: expected variant name, got {token:?}"
            ));
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                tokens.next();
                Fields::Named(named)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(count)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        for token in tokens.by_ref() {
            if let TokenTree::Punct(p) = &token {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    Ok(variants)
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => object_expr(names, |f| format!("&self.{f}")),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => array_expr(*n, |i| format!("&self.{i}")),
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            impl_serialize(name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                array_expr(*n, |i| format!("f{i}"))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),",
                                binders.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inner = object_expr(fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, format!("match self {{ {} }}", arms.join("\n")))
        }
    }
}

fn object_expr(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({f:?}.to_string(), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join("\n"))
}

fn array_expr(n: usize, access: impl Fn(usize) -> String) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Serialize::to_value({}),", access(i)))
        .collect();
    format!("::serde::Value::Array(vec![{}])", items.join("\n"))
}

fn impl_serialize(name: &str, body: String) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => named_ctor(name, name, names),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
                }
                Fields::Tuple(n) => tuple_ctor(name, name, *n, "value"),
                Fields::Unit => format!(
                    "match value {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::Error::mismatch(\"null\", {name:?}, other)),\n\
                     }}"
                ),
            };
            impl_deserialize(name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                        // Also accept `{"Variant": null}` for symmetry.
                        tagged_arms.push_str(&format!(
                            "{vname:?} => match inner {{\n\
                                 ::serde::Value::Null => Ok({name}::{vname}),\n\
                                 other => Err(::serde::Error::mismatch(\"null\", {vname:?}, other)),\n\
                             }},\n"
                        ));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let ctor = tuple_ctor(&format!("{name}::{vname}"), vname, *n, "inner");
                        tagged_arms.push_str(&format!("{vname:?} => {{ {ctor} }},\n"));
                    }
                    Fields::Named(fields) => {
                        let ctor = named_ctor_from(
                            &format!("{name}::{vname}"),
                            vname,
                            fields,
                            "inner",
                        );
                        tagged_arms.push_str(&format!("{vname:?} => {{ {ctor} }},\n"));
                    }
                }
            }
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::custom(format!(\n\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }},\n\
                     other => Err(::serde::Error::mismatch(\n\
                         \"string or single-key object\", {name:?}, other)),\n\
                 }}"
            );
            impl_deserialize(name, body)
        }
    }
}

/// `Ok(Path { a: ..., b: ... })` reading named fields out of `value`.
fn named_ctor(path: &str, ty: &str, fields: &[String]) -> String {
    named_ctor_from(path, ty, fields, "value")
}

fn named_ctor_from(path: &str, ty: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::field(fields, {f:?}, {ty:?})?)?,"
            )
        })
        .collect();
    format!(
        "match {source}.as_object() {{\n\
             Some(fields) => Ok({path} {{ {} }}),\n\
             None => Err(::serde::Error::mismatch(\"object\", {ty:?}, {source})),\n\
         }}",
        inits.join("\n")
    )
}

/// `Ok(Path(f0, f1, ...))` reading an n-element array out of `source`.
fn tuple_ctor(path: &str, ty: &str, n: usize, source: &str) -> String {
    let binders: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
    let inits: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(f{i})?,"))
        .collect();
    format!(
        "match {source}.as_array() {{\n\
             Some([{}]) => Ok({path}({})),\n\
             _ => Err(::serde::Error::mismatch(\"{n}-element array\", {ty:?}, {source})),\n\
         }}",
        binders.join(", "),
        inits.join("\n")
    )
}

fn impl_deserialize(name: &str, body: String) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
