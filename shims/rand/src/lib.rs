//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API the Cocco crates use:
//! [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast, with
//! well-understood statistical quality, and fully deterministic under a
//! fixed seed (which the search tests rely on). It makes no attempt to be
//! bit-compatible with upstream `rand`; only the API contract is shared, so
//! swapping the real crate back in is a one-line manifest change.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](RngCore::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of `T` over its natural domain
    /// (`[0, 1)` for floats, the full range for integers, fair for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut bits_of(self))
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_from(&mut bits_of(self))
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Adapts a `?Sized` receiver into the word source the sampling traits
/// consume (generic default methods cannot name `Self` in a closure bound).
fn bits_of<R: RngCore + ?Sized>(rng: &mut R) -> impl FnMut() -> u64 + '_ {
    move || rng.next_u64()
}

/// Types samplable over a natural domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from `next` (a 64-bit word source).
    fn sample(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        next() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(next: &mut dyn FnMut() -> u64) -> Self {
                next() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire reduction
/// without the rejection loop; the bias is below 2^-64 for every span the
/// workspace uses).
fn uniform_below(next: &mut dyn FnMut() -> u64, span: u64) -> u64 {
    ((u128::from(next()) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(next, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                start + uniform_below(next, span + 1) as $t
            }
        }
    )*};
}
sample_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(next, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                start.wrapping_add(uniform_below(next, span + 1) as $t)
            }
        }
    )*};
}
sample_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(next);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(next) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic under a fixed seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing a generator
        /// mid-stream. Restoring it with [`from_state`](StdRng::from_state)
        /// continues the exact same sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`state`](StdRng::state).
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `rand::seq` item the workspace uses).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trip_continues_the_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&z));
            let w: u32 = rng.gen_range(1..=20u32);
            assert!((1..=20).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // The mean of 1000 uniforms is ~0.5 ± 0.03.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let dynrng: &mut dyn RngCore = &mut rng;
        assert!(sample(dynrng) < 1.0);
    }
}
