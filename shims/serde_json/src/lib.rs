//! Offline stand-in for `serde_json`, built on the `serde` shim's [`Value`]
//! data model: a JSON printer ([`to_string`], [`to_string_pretty`]) and a
//! strict recursive-descent parser ([`from_str`]).
//!
//! Numbers print via Rust's shortest round-trip formatting, so every finite
//! `f64` survives a serialize → parse cycle exactly. Non-finite floats have
//! no JSON representation and are emitted as `null` (matching upstream
//! serde_json's behaviour).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Renders any serializable type into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reads a typed structure back out of a [`Value`].
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed structure.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---- printer ---------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form; it always
                // contains `.` or `e`, so the parser reads it back as F64.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of JSON")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn bad_token(&self) -> Error {
        Error::custom(format!("invalid token at offset {}", self.pos))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the printer;
                            // reject them rather than decode them wrongly.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| Error::custom("bad \\u escape (surrogate)"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-scan from the byte position to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.bad_token())?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        match text.parse::<f64>() {
            // Out-of-range literals like `1e400` parse to infinity, which
            // has no JSON representation — reject rather than corrupt the
            // value to `null` on the next serialize.
            Ok(x) if x.is_finite() => Ok(Value::F64(x)),
            Ok(_) => Err(Error::custom(format!("number `{text}` out of range"))),
            Err(_) => Err(Error::custom(format!("invalid number `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("resnet50".into())),
            ("alpha".into(), Value::F64(0.002)),
            ("budget".into(), Value::U64(50_000)),
            ("offset".into(), Value::I64(-3)),
            ("fits".into(), Value::Bool(true)),
            (
                "trace".into(),
                Value::Array(vec![Value::Null, Value::F64(1.5)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [
            to_string(&value).unwrap(),
            to_string_pretty(&value).unwrap(),
        ] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.002, 1.0, 1e-9, 123456.789, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nwith \"quotes\" + \\ + tab\t + unicode é";
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
        // Out-of-range floats must error, not become infinity.
        assert!(from_str::<Value>("1e400").is_err());
        assert!(from_str::<Value>("-1e400").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u32, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[\n1,\n2,\n3\n]".replace('\n', ""));
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
