//! Enumeration-based baseline: state-compression DP over downsets
//! (Fused-CNN / Jangda et al., improved as in paper §4.2.1).
//!
//! A state is the *downset* of already-computed layers; a transition
//! executes one more subgraph — any connected, predecessor-closed, fitting
//! subset of the remaining layers. Memoizing on the downset collapses all
//! execution orders that cover the same layers, which is the paper's
//! "recording one subgraph in the state" improvement. The method is exact
//! but still exponential for wide irregular graphs, so explicit state and
//! expansion budgets turn "cannot complete in a reasonable time" into a
//! reportable outcome ([`SearchOutcome::completed`]).

use crate::context::SearchContext;
use crate::driver::{run_driver, DriverState, EvalBatch, SearchDriver, Step};
use crate::genome::Genome;
use crate::outcome::{SearchOutcome, Searcher};
use cocco_graph::{Graph, NodeId};
use cocco_partition::Partition;
use cocco_sim::BufferConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Abort thresholds for the enumeration.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExhaustiveLimits {
    /// Maximum number of distinct downset states.
    pub max_states: usize,
    /// Maximum number of subgraph-enumeration steps.
    pub max_expansions: u64,
}

impl Default for ExhaustiveLimits {
    fn default() -> Self {
        Self {
            max_states: 200_000,
            max_expansions: 50_000_000,
        }
    }
}

/// The exact enumeration baseline. Deterministic, fixed hardware only.
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, Exhaustive, Objective, SearchContext, Searcher};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::chain(4);
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::fixed(BufferConfig::shared(8 << 20)),
///     Objective::partition_only(CostMetric::Ema),
///     0,
/// );
/// let outcome = Exhaustive::default().run(&ctx);
/// assert!(outcome.completed);
/// assert_eq!(outcome.best.unwrap().partition.num_subgraphs(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Exhaustive {
    /// Abort thresholds.
    pub limits: ExhaustiveLimits,
}

impl Exhaustive {
    /// Creates the searcher with custom limits.
    pub fn new(limits: ExhaustiveLimits) -> Self {
        Self { limits }
    }
}

type Bits = Box<[u64]>;

fn bits_new(words: usize) -> Bits {
    vec![0u64; words].into_boxed_slice()
}

fn bits_get(b: &[u64], i: usize) -> bool {
    b[i / 64] >> (i % 64) & 1 == 1
}

fn bits_set(b: &mut [u64], i: usize) {
    b[i / 64] |= 1 << (i % 64);
}

fn bits_clear(b: &mut [u64], i: usize) {
    b[i / 64] &= !(1 << (i % 64));
}

fn bits_count(b: &[u64]) -> usize {
    b.iter().map(|w| w.count_ones() as usize).sum()
}

#[derive(Clone)]
struct StateInfo {
    cost: f64,
    back: Option<(Bits, Vec<u32>)>,
}

impl Exhaustive {
    /// The enumeration as a resumable [`SearchDriver`] (one popcount level
    /// per step).
    pub fn driver(&self) -> ExhaustiveDriver {
        ExhaustiveDriver {
            limits: self.limits,
            levels: Vec::new(),
            level: 0,
            total_states: 1,
            expansions: 0,
            done: false,
            outcome: SearchOutcome::empty(),
        }
    }

    /// The fixed buffer the enumeration runs under.
    fn buffer(ctx: &SearchContext<'_>) -> BufferConfig {
        match ctx.space {
            crate::objective::BufferSpace::Fixed(c) => c,
            _ => *ctx
                .space
                .grid()
                .last()
                // cocco-audit: allow(R1) CapacityRange is non-empty by construction, so every grid() has entries
                .expect("buffer space has at least one configuration"),
        }
    }
}

impl Searcher for Exhaustive {
    fn name(&self) -> &'static str {
        "Enumeration"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        run_driver(&mut self.driver(), ctx)
    }
}

/// One serialized downset state: the downset bits, its best cost (always
/// finite) and the back-pointer `(parent downset, executed subgraph)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ExhaustiveEntry {
    downset: Vec<u64>,
    cost: f64,
    back: Option<(Vec<u64>, Vec<u32>)>,
}

/// Serializable state of an [`ExhaustiveDriver`]: the per-level downset
/// tables (sorted by downset, so snapshots are stable) plus the
/// level cursor and abort counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExhaustiveState {
    levels: Vec<Vec<ExhaustiveEntry>>,
    level: u64,
    total_states: u64,
    expansions: u64,
    done: bool,
    outcome: SearchOutcome,
}

/// The downset-DP enumeration as a step-driven state machine: each step
/// expands every state of one popcount level (states processed in sorted
/// downset order, so the run — including abort boundaries and equal-cost
/// tie-breaks — is deterministic across processes); the final step
/// reconstructs the optimal execution chain. Analytic: no step consumes
/// budget.
#[derive(Debug)]
pub struct ExhaustiveDriver {
    limits: ExhaustiveLimits,
    levels: Vec<HashMap<Bits, StateInfo>>,
    /// Next level to expand (`levels` empty ⇒ not yet initialized).
    level: usize,
    total_states: usize,
    expansions: u64,
    done: bool,
    outcome: SearchOutcome,
}

impl std::fmt::Debug for StateInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateInfo")
            .field("cost", &self.cost)
            .finish()
    }
}

impl ExhaustiveDriver {
    /// Resumes a driver from a serialized state.
    pub fn from_state(limits: ExhaustiveLimits, state: ExhaustiveState) -> Self {
        Self {
            limits,
            levels: state
                .levels
                .into_iter()
                .map(|entries| {
                    entries
                        .into_iter()
                        .map(|e| {
                            (
                                e.downset.into_boxed_slice(),
                                StateInfo {
                                    cost: e.cost,
                                    back: e
                                        .back
                                        .map(|(p, members)| (p.into_boxed_slice(), members)),
                                },
                            )
                        })
                        .collect()
                })
                .collect(),
            level: state.level as usize,
            total_states: state.total_states as usize,
            expansions: state.expansions,
            done: state.done,
            outcome: state.outcome,
        }
    }

    /// Finalizes after an abort or a completed sweep.
    fn finalize(&mut self, ctx: &SearchContext<'_>, aborted: bool) -> Step {
        let graph = ctx.graph();
        let buffer = Exhaustive::buffer(ctx);
        let n = graph.len();
        let words = n.div_ceil(64);
        self.done = true;
        self.outcome.completed = !aborted;
        if aborted {
            return Step::Done;
        }
        // Reconstruct the optimal chain from the full downset.
        let full: Bits = {
            let mut b = bits_new(words);
            for i in 0..n {
                bits_set(&mut b, i);
            }
            b
        };
        if !self.levels[n].contains_key(&full) {
            return Step::Done; // nothing fits at all
        }
        let mut assignment = vec![0u32; n];
        let mut cursor = full;
        let mut sg = 0u32;
        loop {
            let level = bits_count(&cursor);
            let info = &self.levels[level][&cursor];
            match &info.back {
                Some((parent, members)) => {
                    for &m in members {
                        assignment[m as usize] = sg;
                    }
                    sg += 1;
                    cursor = parent.clone();
                }
                None => break,
            }
        }
        let mut partition = Partition::from_assignment(assignment);
        partition.canonicalize(graph);
        let cost = ctx.partition_cost(&partition, &buffer);
        self.outcome.consider(Genome::new(partition, buffer), cost);
        Step::Done
    }
}

impl SearchDriver for ExhaustiveDriver {
    fn name(&self) -> &'static str {
        "Enumeration"
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Step {
        if self.done {
            return Step::Done;
        }
        let graph = ctx.graph();
        let buffer = Exhaustive::buffer(ctx);
        let n = graph.len();
        let words = n.div_ceil(64);
        if self.levels.is_empty() {
            // DP over downsets, processed by popcount level.
            self.levels = (0..=n).map(|_| HashMap::new()).collect();
            self.levels[0].insert(
                bits_new(words),
                StateInfo {
                    cost: 0.0,
                    back: None,
                },
            );
            return Step::Continue;
        }
        if self.level >= n {
            return self.finalize(ctx, false);
        }

        // Per-step precomputation (cheap relative to a level's expansion
        // work, and keeps snapshots small): weight-capacity bound for
        // monotone pruning, and undirected adjacency for connectivity.
        let wgt_cap = match buffer {
            BufferConfig::Separate { wgt, .. } => wgt,
            BufferConfig::Shared { total } => total,
        };
        let elem = ctx.evaluator().config().elem_bytes;
        let node_wgt: Vec<u64> = graph
            .node_ids()
            .map(|id| graph.weight_elements(id) * elem)
            .collect();
        let neighbors: Vec<Vec<u32>> = graph
            .node_ids()
            .map(|id| {
                let mut v: Vec<u32> = graph
                    .producers(id)
                    .iter()
                    .chain(graph.consumers(id).iter())
                    .map(|x| x.index() as u32)
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();

        let level = self.level;
        self.level += 1;
        if self.levels[level].is_empty() {
            return Step::Continue;
        }
        // Sorted-state iteration: processing order (and with it abort
        // boundaries and equal-cost tie-breaks) must not depend on the
        // hash map's per-process iteration order.
        let mut states: Vec<(Bits, f64)> = self.levels[level]
            .iter()
            .map(|(k, v)| (k.clone(), v.cost))
            .collect();
        states.sort_by(|a, b| a.0.cmp(&b.0));
        let mut aborted = false;
        'states: for (downset, base_cost) in states {
            // Ready nodes: not computed, all producers computed.
            let ready: Vec<u32> = (0..n as u32)
                .filter(|&v| {
                    !bits_get(&downset, v as usize)
                        && graph
                            .producers(NodeId::from_index(v as usize))
                            .iter()
                            .all(|p| bits_get(&downset, p.index()))
                })
                .collect();
            for &start in &ready {
                let mut enumerator = SubgraphEnumerator {
                    graph,
                    ctx,
                    buffer: &buffer,
                    neighbors: &neighbors,
                    node_wgt: &node_wgt,
                    wgt_cap,
                    downset: &downset,
                    start,
                    expansions: &mut self.expansions,
                    limit: self.limits.max_expansions,
                    emitted: Vec::new(),
                };
                enumerator.enumerate();
                let emitted = std::mem::take(&mut enumerator.emitted);
                drop(enumerator);
                if self.expansions >= self.limits.max_expansions {
                    aborted = true;
                    break 'states;
                }
                for (members, cost) in emitted {
                    let mut next = downset.clone();
                    for &m in &members {
                        bits_set(&mut next, m as usize);
                    }
                    let next_level = bits_count(&next);
                    let new_cost = base_cost + cost;
                    let entry = self.levels[next_level].entry(next);
                    match entry {
                        std::collections::hash_map::Entry::Occupied(mut o) => {
                            if new_cost < o.get().cost {
                                o.insert(StateInfo {
                                    cost: new_cost,
                                    back: Some((downset.clone(), members)),
                                });
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            self.total_states += 1;
                            v.insert(StateInfo {
                                cost: new_cost,
                                back: Some((downset.clone(), members)),
                            });
                        }
                    }
                    if self.total_states > self.limits.max_states {
                        aborted = true;
                        break 'states;
                    }
                }
            }
        }
        if aborted {
            return self.finalize(ctx, true);
        }
        Step::Continue
    }

    fn absorb(&mut self, _ctx: &SearchContext<'_>, _batch: EvalBatch) {}

    fn outcome(&self) -> SearchOutcome {
        self.outcome.clone()
    }

    fn state(&self) -> DriverState {
        let levels: Vec<Vec<ExhaustiveEntry>> = self
            .levels
            .iter()
            .map(|level| {
                let mut entries: Vec<ExhaustiveEntry> = level
                    .iter()
                    .map(|(downset, info)| ExhaustiveEntry {
                        downset: downset.to_vec(),
                        cost: info.cost,
                        back: info
                            .back
                            .as_ref()
                            .map(|(p, members)| (p.to_vec(), members.clone())),
                    })
                    .collect();
                entries.sort_by(|a, b| a.downset.cmp(&b.downset));
                entries
            })
            .collect();
        DriverState::Exhaustive(ExhaustiveState {
            levels,
            level: self.level as u64,
            total_states: self.total_states as u64,
            expansions: self.expansions,
            done: self.done,
            outcome: self.outcome.clone(),
        })
    }
}

/// Enumerates every connected, predecessor-closed, fitting subset of the
/// uncomputed region whose minimal element is `start`, exactly once
/// (ascending-start + excluded-sibling scheme).
struct SubgraphEnumerator<'e, 'a> {
    graph: &'e Graph,
    ctx: &'e SearchContext<'a>,
    buffer: &'e BufferConfig,
    neighbors: &'e [Vec<u32>],
    node_wgt: &'e [u64],
    wgt_cap: u64,
    downset: &'e [u64],
    start: u32,
    expansions: &'e mut u64,
    limit: u64,
    emitted: Vec<(Vec<u32>, f64)>,
}

impl SubgraphEnumerator<'_, '_> {
    fn enumerate(&mut self) {
        let n = self.graph.len();
        let words = n.div_ceil(64);
        let mut in_s = bits_new(words);
        bits_set(&mut in_s, self.start as usize);
        let mut missing = bits_new(words); // preds of S outside downset ∪ S
        for p in self
            .graph
            .producers(NodeId::from_index(self.start as usize))
        {
            if !bits_get(self.downset, p.index()) {
                bits_set(&mut missing, p.index());
            }
        }
        let excluded = bits_new(words);
        let wgt = self.node_wgt[self.start as usize];
        self.extend(
            &mut vec![self.start],
            &mut in_s,
            &mut missing,
            excluded,
            wgt,
        );
    }

    /// `true` if some missing predecessor can never be added in this branch
    /// (it is excluded or below the start), making the branch dead.
    fn branch_dead(&self, missing: &[u64], excluded: &[u64]) -> bool {
        for w in 0..missing.len() {
            let dead = missing[w] & excluded[w];
            if dead != 0 {
                return true;
            }
        }
        // Any missing pred below start is unreachable by construction.
        for i in 0..self.start as usize {
            if bits_get(missing, i) {
                return true;
            }
        }
        false
    }

    fn extend(
        &mut self,
        members: &mut Vec<u32>,
        in_s: &mut Bits,
        missing: &mut Bits,
        mut excluded: Bits,
        wgt: u64,
    ) {
        *self.expansions += 1;
        if *self.expansions >= self.limit {
            return;
        }
        if self.branch_dead(missing, &excluded) {
            return;
        }
        // Emit when predecessor-closed and fitting.
        if bits_count(missing) == 0 {
            let ids: Vec<NodeId> = members
                .iter()
                .map(|&m| NodeId::from_index(m as usize))
                .collect();
            if let Some(cost) = self.ctx.subgraph_cost(&ids, self.buffer) {
                let mut sorted = members.clone();
                sorted.sort_unstable();
                self.emitted.push((sorted, cost));
            }
        }
        // Expansion candidates: neighbors of S, uncomputed, not in S, not
        // excluded, above the start.
        let mut candidates: Vec<u32> = Vec::new();
        for &m in members.iter() {
            for &c in &self.neighbors[m as usize] {
                if c > self.start
                    && !bits_get(self.downset, c as usize)
                    && !bits_get(in_s, c as usize)
                    && !bits_get(&excluded, c as usize)
                {
                    candidates.push(c);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for c in candidates {
            let new_wgt = wgt + self.node_wgt[c as usize];
            if new_wgt <= self.wgt_cap {
                // Recurse with c added, then restore all bookkeeping.
                let was_missing = bits_get(missing, c as usize);
                bits_set(in_s, c as usize);
                bits_clear(missing, c as usize);
                let mut added_missing: Vec<usize> = Vec::new();
                for p in self.graph.producers(NodeId::from_index(c as usize)) {
                    if !bits_get(self.downset, p.index())
                        && !bits_get(in_s, p.index())
                        && !bits_get(missing, p.index())
                    {
                        bits_set(missing, p.index());
                        added_missing.push(p.index());
                    }
                }
                members.push(c);
                self.extend(members, in_s, missing, excluded.clone(), new_wgt);
                members.pop();
                bits_clear(in_s, c as usize);
                for p in added_missing {
                    bits_clear(missing, p);
                }
                if was_missing {
                    bits_set(missing, c as usize);
                }
            }
            // Exclude c from subsequent sibling branches.
            bits_set(&mut excluded, c as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, CostMetric, Evaluator};

    fn run_on(graph: &Graph, buffer: BufferConfig) -> SearchOutcome {
        let eval = Evaluator::new(graph, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            graph,
            &eval,
            BufferSpace::fixed(buffer),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        Exhaustive::default().run(&ctx)
    }

    #[test]
    fn optimal_on_chain() {
        let g = cocco_graph::models::chain(5);
        let out = run_on(&g, BufferConfig::shared(8 << 20));
        assert!(out.completed);
        let floor = g.total_weight_elements()
            + g.out_elements(g.input_ids()[0])
            + g.out_elements(g.output_ids()[0]);
        assert_eq!(out.best_cost, floor as f64);
    }

    #[test]
    fn optimal_on_diamond_beats_or_matches_everything() {
        let g = cocco_graph::models::diamond();
        let buffer = BufferConfig::shared(64 << 10);
        let out = run_on(&g, buffer);
        assert!(out.completed);
        // Compare against brute force over a few handmade partitions.
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(buffer),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        for assignment in [
            vec![0, 1, 2, 3, 4],
            vec![0, 0, 1, 1, 1],
            vec![0, 0, 0, 0, 0],
            vec![0, 0, 1, 2, 3],
        ] {
            let p = Partition::from_assignment(assignment);
            if p.validate(&g).is_err() {
                continue;
            }
            let cost = ctx.partition_cost(&p, &buffer);
            assert!(
                out.best_cost <= cost + 1e-9,
                "enumeration missed a better partition: {} > {}",
                out.best_cost,
                cost
            );
        }
    }

    #[test]
    fn result_is_valid() {
        let g = cocco_graph::models::diamond();
        let out = run_on(&g, BufferConfig::shared(128 << 10));
        let best = out.best.unwrap();
        assert!(best.partition.validate(&g).is_ok());
    }

    #[test]
    fn budget_abort_reports_incomplete() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(BufferConfig::separate(1 << 20, 1152 << 10)),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        let out = Exhaustive::new(ExhaustiveLimits {
            max_states: 10,
            max_expansions: 1_000,
        })
        .run(&ctx);
        assert!(!out.completed);
        assert!(out.best.is_none());
    }

    #[test]
    fn tiny_buffer_forces_singletons() {
        let g = cocco_graph::models::chain(3);
        // Just big enough for single layers.
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let single = eval
            .subgraph_stats(&[g.node_ids().nth(1).unwrap()])
            .unwrap();
        let cap = single.act_footprint_bytes + single.wgt_resident_bytes + 4096;
        let out = run_on(&g, BufferConfig::shared(cap));
        if let Some(best) = out.best {
            // Every subgraph fits the tiny buffer.
            for members in best.partition.subgraphs() {
                let stats = eval.subgraph_stats(&members).unwrap();
                assert!(stats.act_footprint_bytes + stats.wgt_resident_bytes <= cap);
            }
        }
    }
}
