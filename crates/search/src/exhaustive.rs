//! Enumeration-based baseline: state-compression DP over downsets
//! (Fused-CNN / Jangda et al., improved as in paper §4.2.1).
//!
//! A state is the *downset* of already-computed layers; a transition
//! executes one more subgraph — any connected, predecessor-closed, fitting
//! subset of the remaining layers. Memoizing on the downset collapses all
//! execution orders that cover the same layers, which is the paper's
//! "recording one subgraph in the state" improvement. The method is exact
//! but still exponential for wide irregular graphs, so explicit state and
//! expansion budgets turn "cannot complete in a reasonable time" into a
//! reportable outcome ([`SearchOutcome::completed`]).

use crate::context::SearchContext;
use crate::genome::Genome;
use crate::outcome::{SearchOutcome, Searcher};
use cocco_graph::{Graph, NodeId};
use cocco_partition::Partition;
use cocco_sim::BufferConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Abort thresholds for the enumeration.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExhaustiveLimits {
    /// Maximum number of distinct downset states.
    pub max_states: usize,
    /// Maximum number of subgraph-enumeration steps.
    pub max_expansions: u64,
}

impl Default for ExhaustiveLimits {
    fn default() -> Self {
        Self {
            max_states: 200_000,
            max_expansions: 50_000_000,
        }
    }
}

/// The exact enumeration baseline. Deterministic, fixed hardware only.
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, Exhaustive, Objective, SearchContext, Searcher};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::chain(4);
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::fixed(BufferConfig::shared(8 << 20)),
///     Objective::partition_only(CostMetric::Ema),
///     0,
/// );
/// let outcome = Exhaustive::default().run(&ctx);
/// assert!(outcome.completed);
/// assert_eq!(outcome.best.unwrap().partition.num_subgraphs(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Exhaustive {
    /// Abort thresholds.
    pub limits: ExhaustiveLimits,
}

impl Exhaustive {
    /// Creates the searcher with custom limits.
    pub fn new(limits: ExhaustiveLimits) -> Self {
        Self { limits }
    }
}

type Bits = Box<[u64]>;

fn bits_new(words: usize) -> Bits {
    vec![0u64; words].into_boxed_slice()
}

fn bits_get(b: &[u64], i: usize) -> bool {
    b[i / 64] >> (i % 64) & 1 == 1
}

fn bits_set(b: &mut [u64], i: usize) {
    b[i / 64] |= 1 << (i % 64);
}

fn bits_clear(b: &mut [u64], i: usize) {
    b[i / 64] &= !(1 << (i % 64));
}

fn bits_count(b: &[u64]) -> usize {
    b.iter().map(|w| w.count_ones() as usize).sum()
}

struct StateInfo {
    cost: f64,
    back: Option<(Bits, Vec<u32>)>,
}

impl Searcher for Exhaustive {
    fn name(&self) -> &'static str {
        "Enumeration"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        let graph = ctx.graph();
        let buffer = match ctx.space {
            crate::objective::BufferSpace::Fixed(c) => c,
            _ => *ctx
                .space
                .grid()
                .last()
                .expect("buffer space has at least one configuration"),
        };
        let n = graph.len();
        let words = n.div_ceil(64);

        // Weight-capacity bound for monotone pruning during enumeration.
        let wgt_cap = match buffer {
            BufferConfig::Separate { wgt, .. } => wgt,
            BufferConfig::Shared { total } => total,
        };
        let elem = ctx.evaluator().config().elem_bytes;
        let node_wgt: Vec<u64> = graph
            .node_ids()
            .map(|id| graph.weight_elements(id) * elem)
            .collect();

        // Undirected adjacency for connectivity expansion.
        let neighbors: Vec<Vec<u32>> = graph
            .node_ids()
            .map(|id| {
                let mut v: Vec<u32> = graph
                    .producers(id)
                    .iter()
                    .chain(graph.consumers(id).iter())
                    .map(|x| x.index() as u32)
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();

        // DP over downsets, processed by popcount level.
        let mut levels: Vec<HashMap<Bits, StateInfo>> = (0..=n).map(|_| HashMap::new()).collect();
        levels[0].insert(
            bits_new(words),
            StateInfo {
                cost: 0.0,
                back: None,
            },
        );
        let mut total_states = 1usize;
        let mut expansions = 0u64;
        let mut aborted = false;

        'levels: for level in 0..n {
            if levels[level].is_empty() {
                continue;
            }
            let states: Vec<(Bits, f64)> = levels[level]
                .iter()
                .map(|(k, v)| (k.clone(), v.cost))
                .collect();
            for (downset, base_cost) in states {
                // Ready nodes: not computed, all producers computed.
                let ready: Vec<u32> = (0..n as u32)
                    .filter(|&v| {
                        !bits_get(&downset, v as usize)
                            && graph
                                .producers(NodeId::from_index(v as usize))
                                .iter()
                                .all(|p| bits_get(&downset, p.index()))
                    })
                    .collect();
                for &start in &ready {
                    let mut enumerator = SubgraphEnumerator {
                        graph,
                        ctx,
                        buffer: &buffer,
                        neighbors: &neighbors,
                        node_wgt: &node_wgt,
                        wgt_cap,
                        downset: &downset,
                        start,
                        expansions: &mut expansions,
                        limit: self.limits.max_expansions,
                        emitted: Vec::new(),
                    };
                    enumerator.enumerate();
                    let emitted = std::mem::take(&mut enumerator.emitted);
                    drop(enumerator);
                    if expansions >= self.limits.max_expansions {
                        aborted = true;
                        break 'levels;
                    }
                    for (members, cost) in emitted {
                        let mut next = downset.clone();
                        for &m in &members {
                            bits_set(&mut next, m as usize);
                        }
                        let next_level = bits_count(&next);
                        let new_cost = base_cost + cost;
                        let entry = levels[next_level].entry(next);
                        match entry {
                            std::collections::hash_map::Entry::Occupied(mut o) => {
                                if new_cost < o.get().cost {
                                    o.insert(StateInfo {
                                        cost: new_cost,
                                        back: Some((downset.clone(), members)),
                                    });
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(v) => {
                                total_states += 1;
                                v.insert(StateInfo {
                                    cost: new_cost,
                                    back: Some((downset.clone(), members)),
                                });
                            }
                        }
                        if total_states > self.limits.max_states {
                            aborted = true;
                            break 'levels;
                        }
                    }
                }
            }
        }

        let mut outcome = SearchOutcome::empty();
        outcome.completed = !aborted;
        if aborted {
            return outcome;
        }
        // Reconstruct the optimal chain from the full downset.
        let full: Bits = {
            let mut b = bits_new(words);
            for i in 0..n {
                bits_set(&mut b, i);
            }
            b
        };
        let Some(_final_state) = levels[n].get(&full) else {
            return outcome; // nothing fits at all
        };
        let mut assignment = vec![0u32; n];
        let mut cursor = full;
        let mut sg = 0u32;
        loop {
            let level = bits_count(&cursor);
            let info = &levels[level][&cursor];
            match &info.back {
                Some((parent, members)) => {
                    for &m in members {
                        assignment[m as usize] = sg;
                    }
                    sg += 1;
                    cursor = parent.clone();
                }
                None => break,
            }
        }
        let mut partition = Partition::from_assignment(assignment);
        partition.canonicalize(graph);
        let cost = ctx.partition_cost(&partition, &buffer);
        outcome.consider(Genome::new(partition, buffer), cost);
        outcome
    }
}

/// Enumerates every connected, predecessor-closed, fitting subset of the
/// uncomputed region whose minimal element is `start`, exactly once
/// (ascending-start + excluded-sibling scheme).
struct SubgraphEnumerator<'e, 'a> {
    graph: &'e Graph,
    ctx: &'e SearchContext<'a>,
    buffer: &'e BufferConfig,
    neighbors: &'e [Vec<u32>],
    node_wgt: &'e [u64],
    wgt_cap: u64,
    downset: &'e [u64],
    start: u32,
    expansions: &'e mut u64,
    limit: u64,
    emitted: Vec<(Vec<u32>, f64)>,
}

impl SubgraphEnumerator<'_, '_> {
    fn enumerate(&mut self) {
        let n = self.graph.len();
        let words = n.div_ceil(64);
        let mut in_s = bits_new(words);
        bits_set(&mut in_s, self.start as usize);
        let mut missing = bits_new(words); // preds of S outside downset ∪ S
        for p in self
            .graph
            .producers(NodeId::from_index(self.start as usize))
        {
            if !bits_get(self.downset, p.index()) {
                bits_set(&mut missing, p.index());
            }
        }
        let excluded = bits_new(words);
        let wgt = self.node_wgt[self.start as usize];
        self.extend(
            &mut vec![self.start],
            &mut in_s,
            &mut missing,
            excluded,
            wgt,
        );
    }

    /// `true` if some missing predecessor can never be added in this branch
    /// (it is excluded or below the start), making the branch dead.
    fn branch_dead(&self, missing: &[u64], excluded: &[u64]) -> bool {
        for w in 0..missing.len() {
            let dead = missing[w] & excluded[w];
            if dead != 0 {
                return true;
            }
        }
        // Any missing pred below start is unreachable by construction.
        for i in 0..self.start as usize {
            if bits_get(missing, i) {
                return true;
            }
        }
        false
    }

    fn extend(
        &mut self,
        members: &mut Vec<u32>,
        in_s: &mut Bits,
        missing: &mut Bits,
        mut excluded: Bits,
        wgt: u64,
    ) {
        *self.expansions += 1;
        if *self.expansions >= self.limit {
            return;
        }
        if self.branch_dead(missing, &excluded) {
            return;
        }
        // Emit when predecessor-closed and fitting.
        if bits_count(missing) == 0 {
            let ids: Vec<NodeId> = members
                .iter()
                .map(|&m| NodeId::from_index(m as usize))
                .collect();
            if let Some(cost) = self.ctx.subgraph_cost(&ids, self.buffer) {
                let mut sorted = members.clone();
                sorted.sort_unstable();
                self.emitted.push((sorted, cost));
            }
        }
        // Expansion candidates: neighbors of S, uncomputed, not in S, not
        // excluded, above the start.
        let mut candidates: Vec<u32> = Vec::new();
        for &m in members.iter() {
            for &c in &self.neighbors[m as usize] {
                if c > self.start
                    && !bits_get(self.downset, c as usize)
                    && !bits_get(in_s, c as usize)
                    && !bits_get(&excluded, c as usize)
                {
                    candidates.push(c);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for c in candidates {
            let new_wgt = wgt + self.node_wgt[c as usize];
            if new_wgt <= self.wgt_cap {
                // Recurse with c added, then restore all bookkeeping.
                let was_missing = bits_get(missing, c as usize);
                bits_set(in_s, c as usize);
                bits_clear(missing, c as usize);
                let mut added_missing: Vec<usize> = Vec::new();
                for p in self.graph.producers(NodeId::from_index(c as usize)) {
                    if !bits_get(self.downset, p.index())
                        && !bits_get(in_s, p.index())
                        && !bits_get(missing, p.index())
                    {
                        bits_set(missing, p.index());
                        added_missing.push(p.index());
                    }
                }
                members.push(c);
                self.extend(members, in_s, missing, excluded.clone(), new_wgt);
                members.pop();
                bits_clear(in_s, c as usize);
                for p in added_missing {
                    bits_clear(missing, p);
                }
                if was_missing {
                    bits_set(missing, c as usize);
                }
            }
            // Exclude c from subsequent sibling branches.
            bits_set(&mut excluded, c as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, CostMetric, Evaluator};

    fn run_on(graph: &Graph, buffer: BufferConfig) -> SearchOutcome {
        let eval = Evaluator::new(graph, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            graph,
            &eval,
            BufferSpace::fixed(buffer),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        Exhaustive::default().run(&ctx)
    }

    #[test]
    fn optimal_on_chain() {
        let g = cocco_graph::models::chain(5);
        let out = run_on(&g, BufferConfig::shared(8 << 20));
        assert!(out.completed);
        let floor = g.total_weight_elements()
            + g.out_elements(g.input_ids()[0])
            + g.out_elements(g.output_ids()[0]);
        assert_eq!(out.best_cost, floor as f64);
    }

    #[test]
    fn optimal_on_diamond_beats_or_matches_everything() {
        let g = cocco_graph::models::diamond();
        let buffer = BufferConfig::shared(64 << 10);
        let out = run_on(&g, buffer);
        assert!(out.completed);
        // Compare against brute force over a few handmade partitions.
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(buffer),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        for assignment in [
            vec![0, 1, 2, 3, 4],
            vec![0, 0, 1, 1, 1],
            vec![0, 0, 0, 0, 0],
            vec![0, 0, 1, 2, 3],
        ] {
            let p = Partition::from_assignment(assignment);
            if p.validate(&g).is_err() {
                continue;
            }
            let cost = ctx.partition_cost(&p, &buffer);
            assert!(
                out.best_cost <= cost + 1e-9,
                "enumeration missed a better partition: {} > {}",
                out.best_cost,
                cost
            );
        }
    }

    #[test]
    fn result_is_valid() {
        let g = cocco_graph::models::diamond();
        let out = run_on(&g, BufferConfig::shared(128 << 10));
        let best = out.best.unwrap();
        assert!(best.partition.validate(&g).is_ok());
    }

    #[test]
    fn budget_abort_reports_incomplete() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(BufferConfig::separate(1 << 20, 1152 << 10)),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        let out = Exhaustive::new(ExhaustiveLimits {
            max_states: 10,
            max_expansions: 1_000,
        })
        .run(&ctx);
        assert!(!out.completed);
        assert!(out.best.is_none());
    }

    #[test]
    fn tiny_buffer_forces_singletons() {
        let g = cocco_graph::models::chain(3);
        // Just big enough for single layers.
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let single = eval
            .subgraph_stats(&[g.node_ids().nth(1).unwrap()])
            .unwrap();
        let cap = single.act_footprint_bytes + single.wgt_resident_bytes + 4096;
        let out = run_on(&g, BufferConfig::shared(cap));
        if let Some(best) = out.best {
            // Every subgraph fits the tiny buffer.
            for members in best.partition.subgraphs() {
                let stats = eval.subgraph_stats(&members).unwrap();
                assert!(stats.act_footprint_bytes + stats.wgt_resident_bytes <= cap);
            }
        }
    }
}
