//! Objectives and buffer search spaces.

use cocco_sim::{BufferConfig, CapacityRange, CostMetric};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The buffer design space a search explores.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferSpace {
    /// A single fixed configuration (partition-only search).
    Fixed(BufferConfig),
    /// Separate global/weight buffers, each on a capacity grid.
    Separate {
        /// Global (activation) buffer range.
        glb: CapacityRange,
        /// Weight buffer range.
        wgt: CapacityRange,
    },
    /// One shared buffer on a capacity grid.
    Shared(CapacityRange),
}

impl BufferSpace {
    /// Fixed-configuration space.
    pub fn fixed(config: BufferConfig) -> Self {
        BufferSpace::Fixed(config)
    }

    /// The paper's separate-buffer co-exploration space
    /// (GLB 128–2048 KB /64, WGT 144–2304 KB /72).
    pub fn paper_separate() -> Self {
        BufferSpace::Separate {
            glb: CapacityRange::paper_glb(),
            wgt: CapacityRange::paper_wgt(),
        }
    }

    /// The paper's shared-buffer co-exploration space (128–3072 KB /64).
    pub fn paper_shared() -> Self {
        BufferSpace::Shared(CapacityRange::paper_shared())
    }

    /// `true` when the space holds exactly one configuration.
    pub fn is_fixed(&self) -> bool {
        matches!(self, BufferSpace::Fixed(_))
    }

    /// Samples a configuration uniformly from the space.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BufferConfig {
        match self {
            BufferSpace::Fixed(c) => *c,
            BufferSpace::Separate { glb, wgt } => BufferConfig::separate(
                glb.candidate(rng.gen_range(0..glb.len())),
                wgt.candidate(rng.gen_range(0..wgt.len())),
            ),
            BufferSpace::Shared(r) => BufferConfig::shared(r.candidate(rng.gen_range(0..r.len()))),
        }
    }

    /// Snaps an arbitrary configuration onto the space's grid (identity for
    /// fixed spaces).
    pub fn snap(&self, config: BufferConfig) -> BufferConfig {
        match (self, config) {
            (BufferSpace::Fixed(c), _) => *c,
            (BufferSpace::Separate { glb, wgt }, BufferConfig::Separate { glb: g, wgt: w }) => {
                BufferConfig::separate(glb.snap(g), wgt.snap(w))
            }
            (BufferSpace::Separate { glb, wgt }, BufferConfig::Shared { total }) => {
                // Split a shared total proportionally to the grid midpoints.
                BufferConfig::separate(glb.snap(total / 2), wgt.snap(total / 2))
            }
            (BufferSpace::Shared(r), c) => BufferConfig::shared(r.snap(c.total_bytes())),
        }
    }

    /// Perturbs a configuration with Gaussian noise of `sigma` (as a
    /// fraction of each range's span), snapped back onto the grid — the
    /// paper's `mutation-DSE`.
    pub fn perturb<R: Rng + ?Sized>(
        &self,
        config: BufferConfig,
        sigma: f64,
        rng: &mut R,
    ) -> BufferConfig {
        let jitter = |value: u64, range: &CapacityRange, rng: &mut R| -> u64 {
            let span = (range.max - range.min) as f64;
            let noise = gaussian(rng) * sigma * span;
            let v = value as f64 + noise;
            range.snap(v.max(0.0) as u64)
        };
        match (self, config) {
            (BufferSpace::Fixed(c), _) => *c,
            (BufferSpace::Separate { glb, wgt }, BufferConfig::Separate { glb: g, wgt: w }) => {
                BufferConfig::separate(jitter(g, glb, rng), jitter(w, wgt, rng))
            }
            (BufferSpace::Separate { .. }, shared) => self.snap(shared),
            (BufferSpace::Shared(r), c) => BufferConfig::shared(jitter(c.total_bytes(), r, rng)),
        }
    }

    /// Averages two configurations and snaps to the grid — the paper's
    /// hardware crossover rule ("the average of its parents, rounded to the
    /// nearest candidate value").
    pub fn blend(&self, a: BufferConfig, b: BufferConfig) -> BufferConfig {
        match self {
            BufferSpace::Fixed(c) => *c,
            BufferSpace::Separate { .. } => {
                let (ga, wa) = split(a);
                let (gb, wb) = split(b);
                self.snap(BufferConfig::separate((ga + gb) / 2, (wa + wb) / 2))
            }
            BufferSpace::Shared(_) => self.snap(BufferConfig::shared(
                (a.total_bytes() + b.total_bytes()) / 2,
            )),
        }
    }

    /// Every configuration of the space on its grid (for grid search);
    /// fixed spaces yield their single configuration.
    pub fn grid(&self) -> Vec<BufferConfig> {
        match self {
            BufferSpace::Fixed(c) => vec![*c],
            BufferSpace::Separate { glb, wgt } => {
                let mut out = Vec::with_capacity(glb.len() * wgt.len());
                for g in glb.iter() {
                    for w in wgt.iter() {
                        out.push(BufferConfig::separate(g, w));
                    }
                }
                out
            }
            BufferSpace::Shared(r) => r.iter().map(BufferConfig::shared).collect(),
        }
    }
}

fn split(c: BufferConfig) -> (u64, u64) {
    match c {
        BufferConfig::Separate { glb, wgt } => (glb, wgt),
        BufferConfig::Shared { total } => (total / 2, total / 2),
    }
}

/// Box–Muller standard normal sample.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The optimization objective (paper Formulas 1 and 2).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// The metric `M`.
    pub metric: CostMetric,
    /// `None` ⇒ Formula 1 (partition-only); `Some(α)` ⇒ Formula 2.
    pub alpha: Option<f64>,
}

impl Objective {
    /// Formula 1: minimize `Σ Cost_M` at a fixed buffer.
    pub fn partition_only(metric: CostMetric) -> Self {
        Self {
            metric,
            alpha: None,
        }
    }

    /// Formula 2: minimize `BUF_SIZE + α·Σ Cost_M`.
    pub fn co_exploration(metric: CostMetric, alpha: f64) -> Self {
        Self {
            metric,
            alpha: Some(alpha),
        }
    }

    /// The paper's energy-capacity co-optimization (α = 0.002).
    pub fn paper_energy_capacity() -> Self {
        Self::co_exploration(CostMetric::Energy, 0.002)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_stays_on_grid() {
        let space = BufferSpace::paper_shared();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = space.sample(&mut rng);
            let t = c.total_bytes();
            assert!((128 << 10..=3072 << 10).contains(&t));
            assert_eq!((t - (128 << 10)) % (64 << 10), 0);
        }
    }

    #[test]
    fn blend_averages() {
        let space = BufferSpace::paper_shared();
        let a = BufferConfig::shared(128 << 10);
        let b = BufferConfig::shared(384 << 10);
        assert_eq!(space.blend(a, b).total_bytes(), 256 << 10);
    }

    #[test]
    fn perturb_respects_fixed_space() {
        let fixed = BufferSpace::fixed(BufferConfig::shared(1 << 20));
        let mut rng = StdRng::seed_from_u64(2);
        let p = fixed.perturb(BufferConfig::shared(123), 0.5, &mut rng);
        assert_eq!(p.total_bytes(), 1 << 20);
    }

    #[test]
    fn grid_enumerates_everything() {
        let space = BufferSpace::Shared(CapacityRange::new(100, 300, 100));
        assert_eq!(space.grid().len(), 3);
        let sep = BufferSpace::Separate {
            glb: CapacityRange::new(100, 200, 100),
            wgt: CapacityRange::new(100, 300, 100),
        };
        assert_eq!(sep.grid().len(), 6);
    }

    #[test]
    fn separate_blend_rounds_per_buffer() {
        let space = BufferSpace::paper_separate();
        let a = BufferConfig::separate(128 << 10, 144 << 10);
        let b = BufferConfig::separate(256 << 10, 288 << 10);
        let c = space.blend(a, b);
        assert_eq!(c, BufferConfig::separate(192 << 10, 216 << 10));
    }
}
