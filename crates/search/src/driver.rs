//! Step-driven, resumable search: the [`SearchDriver`] state machine that
//! sits under every method of the crate.
//!
//! A driver replaces the monolithic run-to-completion loop with an
//! explicit protocol:
//!
//! 1. [`next_batch`](SearchDriver::next_batch) advances the method's
//!    internal state machine and yields a [`Step`] — either a batch of
//!    [`EvalCandidate`]s to evaluate (with per-chunk objective/budget
//!    overrides, so sub-searches and interleaved schemes can share one
//!    engine dispatch), an internal-work notification, or completion;
//! 2. the harness evaluates the batch as **one** engine dispatch
//!    ([`SearchContext::evaluate_chunks`]);
//! 3. [`absorb`](SearchDriver::absorb) feeds the evaluated candidates back,
//!    advancing selection/acceptance/fold state.
//!
//! Between any two steps, [`state`](SearchDriver::state) produces a
//! serde-serializable [`DriverState`] snapshot: round-tripping it through
//! JSON and resuming with `SearchMethod::driver_from_state` continues the
//! run **bit-identically** (best cost, genome and trace equal to the
//! uninterrupted seeded run, at any thread count). Snapshots deliberately
//! drop in-memory [`EvalMemo`](cocco_engine::EvalMemo)s — memos are a
//! wall-clock optimization, so a resumed run recomputes a little more but
//! never scores differently.
//!
//! [`run_driver`] is the thin default loop every [`Searcher`] now runs
//! through; on top of the same uniform step surface sit the interleaved
//! two-step scheme ([`TwoStep`](crate::TwoStep)) and the
//! [`Portfolio`](crate::Portfolio) meta-driver.

use crate::context::{EvalCandidate, SearchContext};
use crate::dp::DpState;
use crate::exhaustive::ExhaustiveState;
use crate::ga::GaState;
use crate::greedy::GreedyState;
use crate::objective::Objective;
use crate::outcome::SearchOutcome;
use crate::portfolio::PortfolioState;
use crate::sa::SaState;
use crate::twostep::TwoStepState;
use cocco_engine::{SampleBudget, SampleReservation, TracePoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One contiguous group of candidates inside an [`EvalBatch`], carrying
/// its own evaluation coordinates:
///
/// * `objective` — `None` evaluates under the context's objective; a
///   two-step inner GA overrides it with the partition-only objective;
/// * `budget` — `None` draws funding from the context budget; a sliced
///   sub-search points at its slice;
/// * `reservation` — funding drawn **ahead of dispatch** (deterministic
///   interleaving); takes precedence over `budget`. An abandoned batch
///   refunds the unconsumed reservation to the shared pool on drop.
#[derive(Debug)]
pub struct EvalChunk {
    /// The candidates; repaired and scored in place by evaluation.
    pub candidates: Vec<EvalCandidate>,
    /// Objective override (`None` → the context's objective).
    pub objective: Option<Objective>,
    /// Funding source override (`None` → the context's budget).
    pub budget: Option<Arc<SampleBudget>>,
    /// Pre-drawn funding; supersedes `budget` when present.
    pub reservation: Option<SampleReservation>,
}

impl EvalChunk {
    /// A chunk evaluated under the context's own objective and budget.
    pub fn new(candidates: Vec<EvalCandidate>) -> Self {
        Self {
            candidates,
            objective: None,
            budget: None,
            reservation: None,
        }
    }
}

/// One driver step's worth of evaluation work: chunks dispatched to the
/// engine pool **together**, funded and traced in chunk order.
#[derive(Debug, Default)]
pub struct EvalBatch {
    /// The chunks, in funding/trace order.
    pub chunks: Vec<EvalChunk>,
}

impl EvalBatch {
    /// A batch of one plain chunk (the common single-method case).
    pub fn single(candidates: Vec<EvalCandidate>) -> Self {
        Self {
            chunks: vec![EvalChunk::new(candidates)],
        }
    }

    /// Total candidates across all chunks.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.candidates.len()).sum()
    }

    /// `true` when no chunk carries any candidate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a driver wants next.
#[derive(Debug)]
pub enum Step {
    /// Evaluate this batch (one engine dispatch), then call
    /// [`absorb`](SearchDriver::absorb) with it.
    Evaluate(EvalBatch),
    /// Internal (analytic) work was done; call
    /// [`next_batch`](SearchDriver::next_batch) again.
    Continue,
    /// The search is finished; read [`outcome`](SearchDriver::outcome).
    Done,
}

/// A search method as a resumable state machine. See the module docs for
/// the protocol; every method of the registry implements it, and
/// `Searcher::run` is now a thin [`run_driver`] loop.
pub trait SearchDriver: Send {
    /// The method's display name.
    fn name(&self) -> &'static str;

    /// Advances the state machine and yields the next step.
    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Step;

    /// Feeds an evaluated batch back (costs/memos filled in; a candidate
    /// with `cost == None` was not funded — the budget ran out).
    fn absorb(&mut self, ctx: &SearchContext<'_>, batch: EvalBatch);

    /// The best-so-far outcome (final once [`Step::Done`] was returned).
    fn outcome(&self) -> SearchOutcome;

    /// A serializable snapshot of the driver's state, valid between any
    /// two steps. In-memory evaluation memos are dropped (performance
    /// only, never results).
    fn state(&self) -> DriverState;
}

/// The serializable state of any driver in the registry — what a
/// checkpoint stores and `SearchMethod::driver_from_state` resumes from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DriverState {
    /// Genetic co-exploration.
    Ga(GaState),
    /// Simulated annealing.
    Sa(SaState),
    /// Greedy fusion.
    Greedy(GreedyState),
    /// Depth-ordered DP.
    DepthDp(DpState),
    /// Downset enumeration.
    Exhaustive(ExhaustiveState),
    /// Two-step capacity-then-partition scheme.
    TwoStep(TwoStepState),
    /// Portfolio meta-driver.
    Portfolio(PortfolioState),
}

/// Advances `driver` by exactly one step — `next_batch`, evaluate (one
/// engine dispatch), `absorb` — under a `search.step_ns` telemetry span.
/// Returns `false` once the driver reported [`Step::Done`]. Both
/// [`run_driver`] and the facade's checkpointed loop are loops over this
/// function, so stepping and instrumentation stay one code path.
pub fn drive_step(driver: &mut dyn SearchDriver, ctx: &SearchContext<'_>) -> bool {
    let telemetry = ctx.telemetry();
    let span = telemetry.span("search.step_ns");
    match driver.next_batch(ctx) {
        Step::Evaluate(mut batch) => {
            let candidates = batch.len();
            ctx.evaluate_chunks(&mut batch);
            if ctx.fault_abort().is_some() {
                // A worker panic quarantined this batch: the candidates
                // carry no costs and their samples were refunded. Stop
                // stepping without absorbing, so the driver's outcome is
                // the best seen before the fault. Dropping the batch
                // refunds any un-taken reservation capacity.
                return false;
            }
            driver.absorb(ctx, batch);
            let name = driver.name();
            drop(span);
            telemetry.emit("search.step", || {
                vec![("driver", name.into()), ("candidates", candidates.into())]
            });
            true
        }
        Step::Continue => true,
        Step::Done => false,
    }
}

/// The default run loop: [`drive_step`] until done. Every `Searcher::run`
/// in the crate is this loop over the method's driver, so the stepped and
/// "monolithic" paths are one code path and bit-identical by construction.
pub fn run_driver(driver: &mut dyn SearchDriver, ctx: &SearchContext<'_>) -> SearchOutcome {
    while drive_step(driver, ctx) {}
    driver.outcome()
}

/// Current [`SearchSnapshot::version`]. Version 2 added
/// [`SearchSnapshot::infeasible_errors`], so a resumed run's final
/// error count matches the uninterrupted run's.
pub const CHECKPOINT_VERSION: u32 = 2;

/// A whole-run checkpoint: the driver state plus everything the harness
/// must restore around it (trace so far, budget consumption, and the
/// coordinates the snapshot is only valid under).
///
/// `fingerprint` is the evaluator's `(model, accelerator config)`
/// fingerprint — the same identity the engine's cache keys embed — so a
/// resume against a different model or platform is rejected instead of
/// continuing a nonsensical search.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// The evaluator fingerprint the run was recorded under.
    pub fingerprint: u64,
    /// The method (with its full configuration) that produced the state.
    pub method: crate::SearchMethod,
    /// The driver's serialized state machine.
    pub driver: DriverState,
    /// The budget limit of the interrupted run.
    pub budget_limit: u64,
    /// Samples consumed when the snapshot was taken.
    pub budget_used: u64,
    /// Evaluator errors folded into "does not fit"/infinite cost so far.
    pub infeasible_errors: u64,
    /// Every trace point recorded up to the snapshot.
    pub trace: Vec<TracePoint>,
}

impl SearchSnapshot {
    /// Captures a snapshot of `driver` between steps, under `ctx`.
    pub fn capture(
        method: &crate::SearchMethod,
        driver: &dyn SearchDriver,
        ctx: &SearchContext<'_>,
    ) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            fingerprint: ctx.evaluator().fingerprint(),
            method: method.clone(),
            driver: driver.state(),
            budget_limit: ctx.budget().limit(),
            budget_used: ctx.budget().used(),
            infeasible_errors: ctx.trace().infeasible_errors(),
            trace: ctx.trace().points(),
        }
    }

    /// Replays the snapshot's consumed budget, recorded trace and error
    /// counter into a fresh context, so the resumed run continues with the
    /// exact sample indices, trace and diagnostics the uninterrupted run
    /// would have.
    pub fn replay_into(&self, ctx: &SearchContext<'_>) {
        for _ in 0..self.budget_used {
            ctx.budget().try_consume();
        }
        ctx.trace().add_infeasible_errors(self.infeasible_errors);
        for point in &self.trace {
            ctx.trace().record(*point);
        }
    }
}

/// Serializes an RNG for a [`DriverState`] (the xoshiro256** state words).
pub(crate) fn rng_state(rng: &StdRng) -> Vec<u64> {
    rng.state().to_vec()
}

/// Restores an RNG from [`rng_state`] words (a short vector — from a
/// hand-edited snapshot — falls back to reseeding from the first word).
pub(crate) fn rng_from_state(words: &[u64]) -> StdRng {
    match <[u64; 4]>::try_from(words) {
        Ok(state) => StdRng::from_state(state),
        Err(_) => StdRng::seed_from_u64(words.first().copied().unwrap_or(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    #[test]
    fn rng_state_round_trips_mid_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..13 {
            rng.next_u64();
        }
        let mut restored = rng_from_state(&rng_state(&rng));
        for _ in 0..50 {
            assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn malformed_rng_state_falls_back_to_seed() {
        let rng = rng_from_state(&[42]);
        let seeded = StdRng::seed_from_u64(42);
        assert_eq!(rng.state(), seeded.state());
    }

    #[test]
    fn batch_len_counts_across_chunks() {
        let batch = EvalBatch::default();
        assert!(batch.is_empty());
    }
}
