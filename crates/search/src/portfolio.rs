//! Portfolio search: N method drivers stepped round-robin against one
//! engine and one sample budget.
//!
//! The uniform [`SearchDriver`](crate::SearchDriver) step surface makes
//! method-level scheduling trivial: every round, each live member
//! contributes its next batch, the batches are dispatched to the engine
//! pool **together** (one dispatch, one shared memoization cache), and the
//! results are fed back member by member. Deterministic methods (greedy,
//! DP, enumeration) ride along for free — they consume no samples and
//! retire after their analytic steps.

use crate::context::SearchContext;
use crate::driver::{run_driver, DriverState, EvalBatch, SearchDriver, Step};
use crate::method::SearchMethod;
use crate::outcome::{SearchOutcome, Searcher};
use serde::{Deserialize, Serialize};

/// When the portfolio stops.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PortfolioPolicy {
    /// Run every member until it finishes (or the shared budget runs
    /// out); report the best outcome across members.
    BestAtExhaustion,
    /// Stop the whole portfolio as soon as any member's best cost reaches
    /// the target (members that already finished keep their results).
    FirstToTarget(f64),
}

/// A portfolio of search methods racing on one budget/engine.
///
/// # Examples
///
/// ```
/// use cocco_search::{
///     BufferSpace, Objective, Portfolio, SearchContext, SearchMethod, Searcher,
/// };
/// use cocco_sim::{AcceleratorConfig, Evaluator};
///
/// let g = cocco_graph::models::diamond();
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::paper_shared(),
///     Objective::paper_energy_capacity(),
///     400,
/// );
/// let portfolio = Portfolio::new(vec![SearchMethod::ga(), SearchMethod::sa()]);
/// let outcome = portfolio.run(&ctx);
/// assert!(outcome.best.is_some());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Portfolio {
    /// The racing methods (each with its own typed configuration).
    pub members: Vec<SearchMethod>,
    /// The stopping policy.
    pub policy: PortfolioPolicy,
    /// Base seed; member `i` is reseeded with `seed + i` at driver build,
    /// so members explore distinct trajectories under one session seed.
    pub seed: u64,
}

impl Portfolio {
    /// A best-at-exhaustion portfolio over `members`.
    pub fn new(members: Vec<SearchMethod>) -> Self {
        Self {
            members,
            policy: PortfolioPolicy::BestAtExhaustion,
            seed: 0xC0CC0,
        }
    }

    /// Stops as soon as any member reaches `target` cost.
    #[must_use]
    pub fn first_to_target(mut self, target: f64) -> Self {
        self.policy = PortfolioPolicy::FirstToTarget(target);
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The members with the portfolio's per-member seeds applied — the
    /// exact configurations both fresh builds and resumes use.
    fn seeded_members(&self) -> Vec<SearchMethod> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| m.clone().with_seed(self.seed.wrapping_add(i as u64)))
            .collect()
    }

    /// The portfolio as a resumable [`SearchDriver`].
    pub fn driver(&self) -> PortfolioDriver {
        PortfolioDriver {
            config: self.clone(),
            members: self
                .seeded_members()
                .iter()
                .map(|m| MemberSlot {
                    driver: m.driver(),
                    done: false,
                })
                .collect(),
            pending_map: Vec::new(),
            done: false,
            outcome: SearchOutcome::empty(),
        }
    }
}

/// One serialized portfolio member.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct PortfolioMemberState {
    state: DriverState,
    done: bool,
}

/// Serializable state of a [`PortfolioDriver`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PortfolioState {
    members: Vec<PortfolioMemberState>,
    done: bool,
    outcome: SearchOutcome,
}

struct MemberSlot {
    driver: Box<dyn SearchDriver>,
    done: bool,
}

impl std::fmt::Debug for MemberSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemberSlot")
            .field("name", &self.driver.name())
            .field("done", &self.done)
            .finish()
    }
}

/// The portfolio meta-driver: steps every live member once per round and
/// merges their batches into one engine dispatch.
#[derive(Debug)]
pub struct PortfolioDriver {
    config: Portfolio,
    members: Vec<MemberSlot>,
    /// Chunk distribution of the in-flight batch: `(member, chunk count)`.
    pending_map: Vec<(usize, usize)>,
    done: bool,
    outcome: SearchOutcome,
}

impl PortfolioDriver {
    /// Resumes a driver from a serialized state. Returns `None` when the
    /// member states don't match the configured methods (a checkpoint
    /// from a different portfolio).
    pub fn from_state(config: Portfolio, state: PortfolioState) -> Option<Self> {
        let seeded = config.seeded_members();
        if seeded.len() != state.members.len() {
            return None;
        }
        let mut members = Vec::with_capacity(seeded.len());
        for (method, member) in seeded.iter().zip(state.members) {
            members.push(MemberSlot {
                driver: method.driver_from_state(&member.state)?,
                done: member.done,
            });
        }
        Some(Self {
            config,
            members,
            pending_map: Vec::new(),
            done: state.done,
            outcome: state.outcome,
        })
    }

    /// Merges a member's best-so-far into the portfolio outcome and
    /// refreshes the sample tally (members keep their own counts).
    fn refresh_outcome(&mut self) {
        let mut samples = 0;
        let mut completed = true;
        for member in &self.members {
            let sub = member.driver.outcome();
            samples += sub.samples;
            if member.done {
                completed &= sub.completed;
            }
            if let Some(best) = sub.best {
                self.outcome.consider(best, sub.best_cost);
            }
        }
        self.outcome.samples = samples;
        self.outcome.completed = completed;
    }

    /// `true` when the stopping policy is satisfied.
    fn target_reached(&self) -> bool {
        match self.config.policy {
            PortfolioPolicy::BestAtExhaustion => false,
            PortfolioPolicy::FirstToTarget(target) => self.outcome.best_cost <= target,
        }
    }
}

impl SearchDriver for PortfolioDriver {
    fn name(&self) -> &'static str {
        "Portfolio"
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Step {
        if self.done {
            return Step::Done;
        }
        if self.target_reached() || self.members.iter().all(|m| m.done) {
            self.refresh_outcome();
            self.done = true;
            return Step::Done;
        }
        let mut batch = EvalBatch::default();
        self.pending_map.clear();
        for mi in 0..self.members.len() {
            if self.members[mi].done {
                continue;
            }
            match self.members[mi].driver.next_batch(ctx) {
                Step::Evaluate(member_batch) => {
                    let count = member_batch.chunks.len();
                    batch.chunks.extend(member_batch.chunks);
                    self.pending_map.push((mi, count));
                }
                Step::Continue => {}
                Step::Done => self.members[mi].done = true,
            }
        }
        self.refresh_outcome();
        if batch.chunks.is_empty() {
            return Step::Continue;
        }
        Step::Evaluate(batch)
    }

    fn absorb(&mut self, ctx: &SearchContext<'_>, batch: EvalBatch) {
        let mut chunks = batch.chunks.into_iter();
        let map = std::mem::take(&mut self.pending_map);
        for (mi, count) in map {
            let member_batch = EvalBatch {
                chunks: chunks.by_ref().take(count).collect(),
            };
            self.members[mi].driver.absorb(ctx, member_batch);
        }
        self.refresh_outcome();
    }

    fn outcome(&self) -> SearchOutcome {
        self.outcome.clone()
    }

    fn state(&self) -> DriverState {
        DriverState::Portfolio(PortfolioState {
            members: self
                .members
                .iter()
                .map(|m| PortfolioMemberState {
                    state: m.driver.state(),
                    done: m.done,
                })
                .collect(),
            done: self.done,
            outcome: self.outcome.clone(),
        })
    }
}

impl Searcher for Portfolio {
    fn name(&self) -> &'static str {
        "Portfolio"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        run_driver(&mut self.driver(), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, Evaluator};

    fn ctx<'a>(
        g: &'a cocco_graph::Graph,
        eval: &'a Evaluator<'a>,
        budget: u64,
    ) -> SearchContext<'a> {
        SearchContext::new(
            g,
            eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            budget,
        )
    }

    #[test]
    fn portfolio_is_at_least_as_good_as_each_member_alone_on_shared_budget() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let portfolio = Portfolio::new(vec![
            SearchMethod::greedy(),
            SearchMethod::ga(),
            SearchMethod::sa(),
        ])
        .with_seed(7);
        let out = portfolio.run(&ctx(&g, &eval, 400));
        let best = out.best.expect("portfolio found nothing");
        assert!(best.partition.validate(&g).is_ok());
        // Greedy alone (it consumes no samples) can never beat the
        // portfolio that contains it.
        let greedy_ctx = ctx(&g, &eval, 0);
        let greedy = SearchMethod::greedy().run(&greedy_ctx);
        assert!(out.best_cost <= greedy.best_cost);
        assert!(out.samples <= 400);
    }

    #[test]
    fn first_to_target_stops_early() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        // An infinite-cost target is reached by the first finite solution:
        // the portfolio must stop long before the budget is drained.
        let portfolio = Portfolio::new(vec![SearchMethod::ga(), SearchMethod::sa()])
            .first_to_target(f64::MAX)
            .with_seed(3);
        let out = portfolio.run(&ctx(&g, &eval, 100_000));
        assert!(out.best.is_some());
        assert!(
            out.samples < 100_000,
            "first-to-target must stop before exhaustion ({} samples)",
            out.samples
        );
    }

    #[test]
    fn first_to_target_sees_two_step_bests_mid_run() {
        // Regression: TwoStepDriver::outcome() must surface live inner
        // GAs' bests (not only folded slots), or a first-to-target
        // portfolio over a two-step member burns the whole budget.
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let member = SearchMethod::TwoStep(crate::TwoStep::random().with_per_candidate(2_000));
        let portfolio = Portfolio::new(vec![member])
            .first_to_target(f64::MAX)
            .with_seed(6);
        let out = portfolio.run(&ctx(&g, &eval, 50_000));
        assert!(out.best.is_some());
        assert!(
            out.samples < 10_000,
            "the portfolio must stop as soon as an inner GA finds a finite design \
             ({} samples burned)",
            out.samples
        );
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        use cocco_engine::EngineConfig;
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let run = |threads: u32| {
            let ctx = ctx(&g, &eval, 300).with_engine(EngineConfig::with_threads(threads));
            let out = Portfolio::new(vec![SearchMethod::ga(), SearchMethod::sa()])
                .with_seed(11)
                .run(&ctx);
            (out.best_cost, out.best, out.samples, ctx.trace().points())
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel, "portfolio diverged across thread counts");
    }

    #[test]
    fn members_share_one_dispatch() {
        // Both stochastic members' chunks ride in one batch per round.
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = ctx(&g, &eval, 5_000);
        let mut driver = Portfolio::new(vec![SearchMethod::ga(), SearchMethod::sa()])
            .with_seed(1)
            .driver();
        // Round 1: GA seed population + SA seed state in one batch.
        let step = loop {
            match driver.next_batch(&ctx) {
                Step::Evaluate(batch) => break batch,
                Step::Continue => {}
                Step::Done => panic!("portfolio finished before evaluating"),
            }
        };
        assert_eq!(step.chunks.len(), 2, "one chunk per stochastic member");
        drop(step);
    }
}
