//! The Cocco genetic co-exploration engine (paper §4.3-§4.4, Figure 9).

use crate::context::{EvalCandidate, EvalHint, SearchContext};
use crate::driver::{
    rng_from_state, rng_state, run_driver, DriverState, EvalBatch, SearchDriver, Step,
};
use crate::genome::Genome;
use crate::outcome::{SearchOutcome, Searcher};
use cocco_engine::EvalMemo;
use cocco_graph::Graph;
use cocco_partition::{Partition, PartitionDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One scored population member: the genome, its cost and the evaluation's
/// per-subgraph breakdown (seed for its offspring's incremental hints).
#[derive(Clone, Debug)]
struct Member {
    genome: Genome,
    cost: f64,
    memo: Option<Arc<EvalMemo>>,
}

/// Per-operation mutation probabilities (each applied independently).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MutationRates {
    /// `modify-node`: move one node to another (possibly new) subgraph.
    pub modify_node: f64,
    /// `split-subgraph`: split one subgraph at a random topological point.
    pub split_subgraph: f64,
    /// `merge-subgraph`: merge two randomly selected subgraphs.
    pub merge_subgraph: f64,
    /// `mutation-DSE`: Gaussian-perturb the memory configuration.
    pub dse: f64,
    /// Standard deviation of the DSE perturbation as a fraction of the
    /// capacity range span.
    pub dse_sigma: f64,
}

impl Default for MutationRates {
    fn default() -> Self {
        Self {
            modify_node: 0.5,
            split_subgraph: 0.3,
            merge_subgraph: 0.3,
            dse: 0.4,
            dse_sigma: 0.15,
        }
    }
}

/// Configuration of [`CoccoGa`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Genomes per generation.
    pub population: usize,
    /// Tournament size for survivor selection.
    pub tournament: usize,
    /// Fraction of offspring produced by crossover (the rest are mutated
    /// copies of tournament winners).
    pub crossover_fraction: f64,
    /// Mutation probabilities.
    pub mutation: MutationRates,
    /// RNG seed (searches are fully deterministic under a fixed seed, at
    /// any engine thread count).
    pub seed: u64,
    /// Optional warm-start partitions (paper benefit 4: initialize GA from
    /// other optimizers and fine-tune).
    pub initial: Vec<Partition>,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population: 100,
            tournament: 3,
            crossover_fraction: 0.6,
            mutation: MutationRates::default(),
            seed: 0xC0CC0,
            initial: Vec::new(),
        }
    }
}

/// The Cocco genetic algorithm: co-explores graph partitions and memory
/// configurations with the paper's customized crossover and mutations,
/// in-situ capacity repair and tournament selection.
///
/// Each generation is scored as one
/// [`evaluate_batch`](SearchContext::evaluate_batch) call, so the fitness
/// evaluation spreads over the context's engine pool (DiGamma-style
/// population parallelism) while staying bit-identical to a serial run.
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, CoccoGa, Objective, SearchContext, Searcher};
/// use cocco_sim::{AcceleratorConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::diamond();
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::paper_shared(),
///     Objective::paper_energy_capacity(),
///     1_000,
/// );
/// let outcome = CoccoGa::default().with_seed(42).run(&ctx);
/// assert!(outcome.best.is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CoccoGa {
    config: GaConfig,
}

impl CoccoGa {
    /// Creates the engine from an explicit configuration.
    pub fn new(config: GaConfig) -> Self {
        Self { config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the population size.
    pub fn with_population(mut self, population: usize) -> Self {
        self.config.population = population.max(2);
        self
    }

    /// Warm-starts the population with existing partitions.
    pub fn with_initial(mut self, initial: Vec<Partition>) -> Self {
        self.config.initial = initial;
        self
    }
}

impl CoccoGa {
    /// The GA as a resumable [`SearchDriver`].
    pub fn driver(&self) -> GaDriver {
        GaDriver::new(self.config.clone())
    }
}

impl Searcher for CoccoGa {
    fn name(&self) -> &'static str {
        "Cocco (GA)"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        run_driver(&mut self.driver(), ctx)
    }
}

/// Where the GA state machine stands.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum GaPhase {
    /// The initial population is being built/evaluated.
    Seed,
    /// Generations are running.
    Evolve,
    /// The budget ran out (or the population died).
    Done,
}

/// One serialized population member (the in-memory memo is dropped — a
/// resumed run re-derives breakdowns lazily, bit-identically).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct GaMember {
    genome: Genome,
    cost: f64,
}

/// Serializable state of a [`GaDriver`], valid between any two steps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaState {
    rng: Vec<u64>,
    phase: GaPhase,
    population: Vec<GaMember>,
    /// Warm partitions queued for injection into the next generation
    /// (cross-candidate elite migration in the interleaved two-step).
    pending: Vec<Partition>,
    outcome: SearchOutcome,
}

/// The genetic algorithm as a step-driven state machine: one
/// [`next_batch`](SearchDriver::next_batch) builds one generation (the
/// seed population first), one [`absorb`](SearchDriver::absorb) folds the
/// scored generation and runs survivor selection. RNG draws happen in the
/// exact order of the former monolithic loop, so `CoccoGa::run`, manual
/// stepping and a checkpoint-resumed run are bit-identical.
#[derive(Debug)]
pub struct GaDriver {
    config: GaConfig,
    rng: StdRng,
    phase: GaPhase,
    population: Vec<Member>,
    pending: Vec<Partition>,
    outcome: SearchOutcome,
}

impl GaDriver {
    /// A fresh driver (seeds its RNG from the configuration).
    pub fn new(config: GaConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            rng,
            phase: GaPhase::Seed,
            population: Vec::new(),
            pending: Vec::new(),
            outcome: SearchOutcome::empty(),
        }
    }

    /// Resumes a driver from a serialized state (memos start empty; the
    /// first resumed generation recomputes them, results unchanged).
    pub fn from_state(config: GaConfig, state: GaState) -> Self {
        Self {
            config,
            rng: rng_from_state(&state.rng),
            phase: state.phase,
            population: state
                .population
                .into_iter()
                .map(|m| Member {
                    genome: m.genome,
                    cost: m.cost,
                    memo: None,
                })
                .collect(),
            pending: state.pending,
            outcome: state.outcome,
        }
    }

    /// Queues a warm partition for injection into the next generation —
    /// how the interleaved two-step migrates elites between capacity
    /// candidates ("combining the information between different sizes",
    /// the very ability the paper says the two-step scheme lacks).
    pub fn inject(&mut self, partition: Partition) {
        self.pending.push(partition);
    }

    /// Builds the seed population, drawing RNG in the legacy order
    /// (paper §4.4.1: warm starts, structured seeds, random genomes).
    fn seed_batch(&mut self, ctx: &SearchContext<'_>) -> Vec<EvalCandidate> {
        let cfg = &self.config;
        let graph = ctx.graph();
        let mut seeds: Vec<Genome> = cfg
            .initial
            .iter()
            .map(|p| Genome::new(p.clone(), ctx.space.sample(&mut self.rng)))
            .collect();
        // A few structured seeds (fused connected groups at several sizes)
        // alongside the random genomes: they compensate for scaled-down
        // sample budgets without changing what the search can express.
        for l in [2usize, 3, 5, 8, 13] {
            if seeds.len() < cfg.population {
                seeds.push(Genome::new(
                    Partition::connected_groups(graph, l),
                    ctx.space.sample(&mut self.rng),
                ));
            }
        }
        while seeds.len() < cfg.population {
            seeds.push(Genome::random(graph, &ctx.space, &mut self.rng));
        }
        seeds.truncate(cfg.population);
        seeds.into_iter().map(EvalCandidate::new).collect()
    }

    /// Builds one generation of offspring. Queued warm injections go
    /// first (they displace random offspring, never grow the generation);
    /// the rest is the paper's crossover/mutation mix.
    fn offspring_batch(&mut self, ctx: &SearchContext<'_>) -> Vec<EvalCandidate> {
        let cfg = &self.config;
        let graph = ctx.graph();
        let mut offspring: Vec<EvalCandidate> = Vec::with_capacity(cfg.population);
        for partition in self.pending.drain(..) {
            if offspring.len() < cfg.population {
                offspring.push(EvalCandidate::new(Genome::new(
                    partition,
                    ctx.space.sample(&mut self.rng),
                )));
            }
        }
        while offspring.len() < cfg.population {
            let child = if self.rng.gen_bool(cfg.crossover_fraction.clamp(0.0, 1.0))
                && self.population.len() >= 2
            {
                let dad_idx = self.rng.gen_range(0..self.population.len());
                let mom_idx = self.rng.gen_range(0..self.population.len());
                let (dad, mom) = (
                    &self.population[dad_idx].genome,
                    &self.population[mom_idx].genome,
                );
                let mut child = Genome::new(
                    crossover(graph, &dad.partition, &mom.partition, &mut self.rng),
                    ctx.space.blend(dad.buffer, mom.buffer),
                );
                // A crossover child reproduces whole parent subgraphs,
                // so dad's memo still covers many of its member sets —
                // but crossover edits are of unknown extent, so the
                // honest delta (required by the fingerprint-keyed
                // incremental path) is derived by diffing the child's
                // subgraph fingerprints against dad's: exactly the
                // nodes whose member set changed are marked. (When the
                // blended buffer differs from dad's the engine drops
                // the memo and the term cache takes over.)
                let mut delta = match &self.population[dad_idx].memo {
                    Some(memo) => memo.fingerprints().delta_against(&child.partition),
                    None => PartitionDelta::all(graph.len()),
                };
                mutate_with_delta(
                    ctx,
                    graph,
                    &mut child,
                    &cfg.mutation,
                    &mut self.rng,
                    &mut delta,
                );
                let hint = self.population[dad_idx]
                    .memo
                    .clone()
                    .map(|memo| EvalHint { memo, delta });
                EvalCandidate::with_hint(child, hint)
            } else {
                let parent = tournament(&self.population, cfg.tournament, &mut self.rng);
                let mut child = self.population[parent].genome.clone();
                let mut delta = PartitionDelta::clean(graph.len());
                mutate_with_delta(
                    ctx,
                    graph,
                    &mut child,
                    &cfg.mutation,
                    &mut self.rng,
                    &mut delta,
                );
                let hint = self.population[parent]
                    .memo
                    .clone()
                    .map(|memo| EvalHint { memo, delta });
                EvalCandidate::with_hint(child, hint)
            };
            offspring.push(child);
        }
        offspring
    }
}

impl SearchDriver for GaDriver {
    fn name(&self) -> &'static str {
        "Cocco (GA)"
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Step {
        match self.phase {
            GaPhase::Seed => Step::Evaluate(EvalBatch::single(self.seed_batch(ctx))),
            GaPhase::Evolve => {
                if ctx.budget().is_exhausted() || self.population.is_empty() {
                    self.phase = GaPhase::Done;
                    return Step::Done;
                }
                Step::Evaluate(EvalBatch::single(self.offspring_batch(ctx)))
            }
            GaPhase::Done => Step::Done,
        }
    }

    fn absorb(&mut self, _ctx: &SearchContext<'_>, batch: EvalBatch) {
        let cfg = &self.config;
        let evaluated = batch.chunks.into_iter().flat_map(|c| c.candidates);
        match self.phase {
            GaPhase::Seed => {
                for candidate in evaluated {
                    let Some(cost) = candidate.cost else { break };
                    self.outcome.samples += 1;
                    self.outcome.consider(candidate.genome.clone(), cost);
                    self.population.push(Member {
                        genome: candidate.genome,
                        cost,
                        memo: candidate.memo,
                    });
                }
                self.phase = GaPhase::Evolve;
            }
            GaPhase::Evolve => {
                // Fold the scored generation, then survivor selection:
                // elitism + tournaments over the combined pool.
                let mut pool = std::mem::take(&mut self.population);
                for candidate in evaluated {
                    let Some(cost) = candidate.cost else { break };
                    self.outcome.samples += 1;
                    self.outcome.consider(candidate.genome.clone(), cost);
                    pool.push(Member {
                        genome: candidate.genome,
                        cost,
                        memo: candidate.memo,
                    });
                }
                let mut next: Vec<Member> = Vec::with_capacity(cfg.population);
                if let Some(best_idx) = pool
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
                    .map(|(i, _)| i)
                {
                    next.push(pool[best_idx].clone());
                }
                while next.len() < cfg.population && !pool.is_empty() {
                    let w = tournament(&pool, cfg.tournament, &mut self.rng);
                    next.push(pool[w].clone());
                }
                self.population = next;
            }
            GaPhase::Done => {}
        }
    }

    fn outcome(&self) -> SearchOutcome {
        self.outcome.clone()
    }

    fn state(&self) -> DriverState {
        DriverState::Ga(GaState {
            rng: rng_state(&self.rng),
            phase: self.phase,
            population: self
                .population
                .iter()
                .map(|m| GaMember {
                    genome: m.genome.clone(),
                    cost: m.cost,
                })
                .collect(),
            pending: self.pending.clone(),
            outcome: self.outcome.clone(),
        })
    }
}

/// Index of the best genome among `k` uniformly sampled contestants.
fn tournament(pool: &[Member], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..pool.len());
    for _ in 1..k.max(1) {
        let challenger = rng.gen_range(0..pool.len());
        if pool[challenger].cost < pool[best].cost {
            best = challenger;
        }
    }
    best
}

/// The paper's crossover (Fig. 9b): scan layers in topological order; each
/// undecided layer picks a random parent and reproduces that parent's whole
/// subgraph; collisions with already-decided layers are resolved by either
/// splitting the undecided remainder into a new subgraph (Child-1) or
/// merging it into a decided layer's subgraph (Child-2), chosen at random.
pub(crate) fn crossover(
    graph: &Graph,
    dad: &Partition,
    mom: &Partition,
    rng: &mut StdRng,
) -> Partition {
    let n = graph.len();
    // Precompute member lists per parent subgraph id.
    let members_of = |p: &Partition| -> std::collections::HashMap<u32, Vec<usize>> {
        let mut m: std::collections::HashMap<u32, Vec<usize>> = std::collections::HashMap::new();
        for (i, &a) in p.assignment().iter().enumerate() {
            m.entry(a).or_default().push(i);
        }
        m
    };
    let dad_members = members_of(dad);
    let mom_members = members_of(mom);

    const UNDECIDED: u32 = u32::MAX;
    let mut child = vec![UNDECIDED; n];
    let mut next_id = 0u32;
    for v in 0..n {
        if child[v] != UNDECIDED {
            continue;
        }
        let (parent, members) = if rng.gen_bool(0.5) {
            (dad, &dad_members)
        } else {
            (mom, &mom_members)
        };
        let sg = parent.subgraph_of(cocco_graph::NodeId::from_index(v));
        let group = &members[&sg];
        let decided: Vec<usize> = group
            .iter()
            .copied()
            .filter(|&u| child[u] != UNDECIDED)
            .collect();
        if decided.is_empty() {
            for &u in group {
                child[u] = next_id;
            }
            next_id += 1;
        } else if rng.gen_bool(0.5) {
            // Child-1: the undecided remainder becomes a new subgraph.
            for &u in group {
                if child[u] == UNDECIDED {
                    child[u] = next_id;
                }
            }
            next_id += 1;
        } else {
            // Child-2: merge the remainder into a decided member's subgraph.
            let target = child[decided[rng.gen_range(0..decided.len())]];
            for &u in group {
                if child[u] == UNDECIDED {
                    child[u] = target;
                }
            }
        }
    }
    Partition::from_assignment(child)
}

/// Applies the four customized mutations, each with its own probability
/// (shared with the simulated-annealing baseline, paper §4.2.4), recording
/// into `delta` every node whose subgraph membership changes.
///
/// The delta invariant is member-set based: an operator that changes a
/// subgraph's member set marks **all** of that subgraph's (old and new)
/// members, so an unmarked subgraph is guaranteed untouched and its cached
/// evaluation terms can be reused. A DSE (buffer) perturbation marks no
/// nodes — the buffer is part of every term's cache key, so the engine
/// detects the change itself and drops the memo.
pub(crate) fn mutate_with_delta(
    ctx: &SearchContext<'_>,
    graph: &Graph,
    genome: &mut Genome,
    rates: &MutationRates,
    rng: &mut StdRng,
    delta: &mut PartitionDelta,
) {
    let n = graph.len();
    if rng.gen_bool(rates.modify_node.clamp(0.0, 1.0)) {
        // modify-node: reassign one node to a neighbouring subgraph (the
        // subgraph of one of its producers/consumers, keeping the move
        // local as in paper Fig. 9c) or to a fresh one.
        let node = cocco_graph::NodeId::from_index(rng.gen_range(0..n));
        let mut candidates: Vec<u32> = graph
            .producers(node)
            .iter()
            .chain(graph.consumers(node).iter())
            .map(|&v| genome.partition.subgraph_of(v))
            .filter(|&sg| sg != genome.partition.subgraph_of(node))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.push(genome.partition.fresh_id());
        let target = candidates[rng.gen_range(0..candidates.len())];
        // Both the donor's and the receiver's member sets change.
        delta.touch_subgraph(&genome.partition, genome.partition.subgraph_of(node));
        delta.touch_subgraph(&genome.partition, target);
        delta.touch(node);
        genome.partition.assign(node, target);
    }
    if rng.gen_bool(rates.split_subgraph.clamp(0.0, 1.0)) {
        // split-subgraph: cut one subgraph at a random topological point.
        let groups = genome.partition.subgraphs();
        let splittable: Vec<_> = groups.iter().filter(|g| g.len() >= 2).collect();
        if !splittable.is_empty() {
            let group = splittable[rng.gen_range(0..splittable.len())];
            let cut = rng.gen_range(1..group.len());
            let fresh = genome.partition.fresh_id();
            delta.touch_members(group);
            for &m in &group[cut..] {
                genome.partition.assign(m, fresh);
            }
        }
    }
    if rng.gen_bool(rates.merge_subgraph.clamp(0.0, 1.0)) {
        // merge-subgraph: merge across a random quotient edge (merging
        // non-adjacent subgraphs would only trigger a bigger SCC repair).
        let quotient = cocco_partition::Quotient::build(graph, &genome.partition);
        let groups = genome.partition.subgraphs();
        let edges: Vec<(u32, u32)> = (0..quotient.num_subgraphs() as u32)
            .flat_map(|a| quotient.succs(a).iter().map(move |&b| (a, b)))
            .collect();
        if !edges.is_empty() {
            let (a, b) = edges[rng.gen_range(0..edges.len())];
            let target = genome.partition.subgraph_of(groups[a as usize][0]);
            delta.touch_members(&groups[a as usize]);
            delta.touch_members(&groups[b as usize]);
            for &m in &groups[b as usize] {
                genome.partition.assign(m, target);
            }
        }
    }
    if !ctx.space.is_fixed() && rng.gen_bool(rates.dse.clamp(0.0, 1.0)) {
        genome.buffer = ctx.space.perturb(genome.buffer, rates.dse_sigma, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};

    fn ctx_fixed<'a>(graph: &'a Graph, eval: &'a Evaluator<'a>, budget: u64) -> SearchContext<'a> {
        SearchContext::new(
            graph,
            eval,
            BufferSpace::fixed(BufferConfig::shared(1 << 20)),
            Objective::partition_only(CostMetric::Ema),
            budget,
        )
    }

    #[test]
    fn finds_optimum_on_tiny_chain() {
        // With a huge buffer, the optimal partition of a chain is a single
        // subgraph (weights + input + output only).
        let g = cocco_graph::models::chain(5);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(BufferConfig::shared(8 << 20)),
            Objective::partition_only(CostMetric::Ema),
            2_000,
        );
        let outcome = CoccoGa::default().with_seed(1).run(&ctx);
        let best = outcome.best.unwrap();
        assert_eq!(best.partition.num_subgraphs(), 1);
        let floor = g.total_weight_elements()
            + g.out_elements(g.input_ids()[0])
            + g.out_elements(g.output_ids()[0]);
        assert_eq!(outcome.best_cost, floor as f64);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let run = |seed| {
            let ctx = ctx_fixed(&g, &eval, 500);
            CoccoGa::default().with_seed(seed).run(&ctx).best_cost
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn identical_results_at_any_thread_count() {
        use cocco_engine::EngineConfig;
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let run = |threads: u32| {
            let ctx = SearchContext::new(
                &g,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                600,
            )
            .with_engine(EngineConfig::with_threads(threads));
            let out = CoccoGa::default()
                .with_population(24)
                .with_seed(13)
                .run(&ctx);
            (out.best_cost, out.best, ctx.trace().points())
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.0, parallel.0, "best cost differs");
        assert_eq!(serial.1, parallel.1, "best genome differs");
        assert_eq!(serial.2, parallel.2, "trace differs");
    }

    #[test]
    fn crossover_children_inherit_parent_subgraphs() {
        let g = cocco_graph::models::chain(5); // 6 nodes
        let dad = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        let mom = Partition::from_assignment(vec![0, 0, 1, 1, 2, 2]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let child = crossover(&g, &dad, &mom, &mut rng);
            assert_eq!(child.len(), 6);
            // Every node is decided.
            assert!(child.assignment().iter().all(|&a| a != u32::MAX));
        }
    }

    #[test]
    fn crossover_of_identical_parents_is_identity() {
        let g = cocco_graph::models::chain(4);
        let p = Partition::from_assignment(vec![0, 0, 1, 1, 1]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut child = crossover(&g, &p, &p, &mut rng);
        child.canonicalize(&g);
        assert_eq!(child, p);
    }

    #[test]
    fn evaluated_genomes_are_always_valid() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = ctx_fixed(&g, &eval, 300);
        let outcome = CoccoGa::default()
            .with_seed(11)
            .with_population(20)
            .run(&ctx);
        let best = outcome.best.unwrap();
        assert!(best.partition.validate(&g).is_ok());
    }

    #[test]
    fn co_exploration_moves_buffer_size() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            1_500,
        );
        let outcome = CoccoGa::default()
            .with_seed(2)
            .with_population(30)
            .run(&ctx);
        let best = outcome.best.unwrap();
        // Formula 2 punishes the 3 MB extreme; the chosen size should be
        // strictly inside the range.
        let total = best.buffer.total_bytes();
        assert!(total < 3072 << 10, "picked {total}");
    }

    #[test]
    fn warm_start_is_respected() {
        let g = cocco_graph::models::chain(4);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = ctx_fixed(&g, &eval, 50);
        let warm = Partition::whole(g.len());
        let outcome = CoccoGa::default()
            .with_seed(3)
            .with_population(4)
            .with_initial(vec![warm])
            .run(&ctx);
        // The whole-graph partition fits in 1 MB and is optimal here, so
        // the warm start's cost must be the final answer.
        assert_eq!(outcome.best.unwrap().partition.num_subgraphs(), 1);
    }

    #[test]
    fn budget_is_respected() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = ctx_fixed(&g, &eval, 37);
        let outcome = CoccoGa::default().with_seed(5).run(&ctx);
        assert_eq!(outcome.samples, 37);
        assert_eq!(ctx.budget().used(), 37);
        assert_eq!(ctx.trace().len(), 37);
    }
}
