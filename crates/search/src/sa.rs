//! Simulated-annealing baseline (paper §4.2.4).

use crate::context::{EvalCandidate, EvalHint, SearchContext};
use crate::driver::{
    rng_from_state, rng_state, run_driver, DriverState, EvalBatch, SearchDriver, Step,
};
use crate::ga::{mutate_with_delta, MutationRates};
use crate::genome::Genome;
use crate::outcome::{SearchOutcome, Searcher};
use cocco_engine::EvalMemo;
use cocco_partition::PartitionDelta;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of [`SimulatedAnnealing`].
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Initial temperature, as a fraction of the initial cost (the accept
    /// probability of a move that worsens cost by `T·cost` is `1/e`).
    pub initial_temperature: f64,
    /// Geometric cooling factor applied per step.
    pub cooling: f64,
    /// Mutation probabilities (the paper reuses Cocco's customized
    /// operators).
    pub mutation: MutationRates,
    /// RNG seed.
    pub seed: u64,
    /// Restart from the best state after this many consecutive rejected
    /// moves (0 disables restarts).
    pub restart_after: u64,
    /// Neighbors proposed (and evaluated as one engine batch) per step.
    /// All neighbors of a step mutate the same current state; the
    /// Metropolis scan then processes them in proposal order. `1`
    /// reproduces classic single-neighbor annealing.
    pub neighbor_batch: u32,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            initial_temperature: 0.02,
            cooling: 0.999,
            mutation: MutationRates::default(),
            seed: 0xC0CC0,
            restart_after: 500,
            neighbor_batch: 8,
        }
    }
}

/// Simulated annealing over genomes, using the same mutation operators and
/// repair pipeline as [`CoccoGa`](crate::CoccoGa) — the paper's co-optimizing
/// baseline, "not as stable as the genetic algorithm in a range of
/// benchmarks".
///
/// Neighbors are proposed [`neighbor_batch`](SaConfig::neighbor_batch) at a
/// time and scored as one engine batch, so the annealing chain benefits
/// from the worker pool while the accept/reject sequence stays
/// seed-deterministic at any thread count.
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, Objective, SearchContext, Searcher, SimulatedAnnealing};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::diamond();
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::fixed(BufferConfig::shared(1 << 20)),
///     Objective::partition_only(CostMetric::Ema),
///     500,
/// );
/// let outcome = SimulatedAnnealing::default().run(&ctx);
/// assert!(outcome.best_cost.is_finite());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Creates the searcher from an explicit configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }
}

impl SimulatedAnnealing {
    /// The annealer as a resumable [`SearchDriver`].
    pub fn driver(&self) -> SaDriver {
        SaDriver::new(self.config)
    }
}

impl Searcher for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        run_driver(&mut self.driver(), ctx)
    }
}

/// Where the annealing state machine stands.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum SaPhase {
    /// The random seed state is being evaluated.
    Init,
    /// The annealing chain is running.
    Anneal,
    /// The budget ran out.
    Done,
}

/// Serializable state of an [`SaDriver`], valid between any two steps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaState {
    rng: Vec<u64>,
    phase: SaPhase,
    current: Option<Genome>,
    current_cost: f64,
    temperature: f64,
    rejected: u64,
    outcome: SearchOutcome,
}

/// Simulated annealing as a step-driven state machine: one
/// [`next_batch`](SearchDriver::next_batch) proposes a neighbor batch of
/// the current state, one [`absorb`](SearchDriver::absorb) runs the
/// Metropolis scan in proposal order. RNG draws match the former
/// monolithic loop exactly.
#[derive(Debug)]
pub struct SaDriver {
    config: SaConfig,
    rng: StdRng,
    phase: SaPhase,
    current: Option<Genome>,
    current_cost: f64,
    /// The current state's breakdown (seeds each neighbor's incremental
    /// hint); the best state's breakdown restores it on restarts. Both are
    /// in-memory only — a resumed run re-derives them lazily.
    current_memo: Option<Arc<EvalMemo>>,
    best_memo: Option<Arc<EvalMemo>>,
    temperature: f64,
    rejected: u64,
    outcome: SearchOutcome,
}

impl SaDriver {
    /// A fresh driver (seeds its RNG from the configuration).
    pub fn new(config: SaConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            rng,
            phase: SaPhase::Init,
            current: None,
            current_cost: f64::INFINITY,
            current_memo: None,
            best_memo: None,
            temperature: 0.0,
            rejected: 0,
            outcome: SearchOutcome::empty(),
        }
    }

    /// Resumes a driver from a serialized state.
    pub fn from_state(config: SaConfig, state: SaState) -> Self {
        Self {
            config,
            rng: rng_from_state(&state.rng),
            phase: state.phase,
            current: state.current,
            current_cost: state.current_cost,
            current_memo: None,
            best_memo: None,
            temperature: state.temperature,
            rejected: state.rejected,
            outcome: state.outcome,
        }
    }
}

impl SearchDriver for SaDriver {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Step {
        match self.phase {
            SaPhase::Init => {
                let seed =
                    EvalCandidate::new(Genome::random(ctx.graph(), &ctx.space, &mut self.rng));
                Step::Evaluate(EvalBatch::single(vec![seed]))
            }
            SaPhase::Anneal => {
                // Propose a batch of neighbors of the current state (serial
                // RNG draws keep the proposal sequence seed-deterministic);
                // each neighbor carries the current state's memo plus its
                // own mutation delta, so only touched subgraphs re-score.
                let graph = ctx.graph();
                // cocco-audit: allow(R1) the Anneal phase is only entered after Seed sets self.current
                let current = self.current.clone().expect("annealing has a current state");
                let batch = self.config.neighbor_batch.max(1) as usize;
                let neighbors: Vec<EvalCandidate> = (0..batch)
                    .map(|_| {
                        let mut candidate = current.clone();
                        let mut delta = PartitionDelta::clean(graph.len());
                        mutate_with_delta(
                            ctx,
                            graph,
                            &mut candidate,
                            &self.config.mutation,
                            &mut self.rng,
                            &mut delta,
                        );
                        let hint = self
                            .current_memo
                            .clone()
                            .map(|memo| EvalHint { memo, delta });
                        EvalCandidate::with_hint(candidate, hint)
                    })
                    .collect();
                Step::Evaluate(EvalBatch::single(neighbors))
            }
            SaPhase::Done => Step::Done,
        }
    }

    fn absorb(&mut self, _ctx: &SearchContext<'_>, batch: EvalBatch) {
        let cfg = self.config;
        let evaluated = batch.chunks.into_iter().flat_map(|c| c.candidates);
        match self.phase {
            SaPhase::Init => {
                let Some(candidate) = evaluated.into_iter().next() else {
                    self.phase = SaPhase::Done;
                    return;
                };
                let Some(cost) = candidate.cost else {
                    self.phase = SaPhase::Done;
                    return;
                };
                self.outcome.samples += 1;
                self.current = Some(candidate.genome.clone());
                self.current_cost = cost;
                self.current_memo = candidate.memo;
                self.best_memo = self.current_memo.clone();
                self.outcome.consider(candidate.genome, cost);
                // Temperature in absolute cost units.
                let scale = if cost.is_finite() { cost } else { 1.0 };
                self.temperature = cfg.initial_temperature * scale;
                self.phase = SaPhase::Anneal;
            }
            SaPhase::Anneal => {
                // The Metropolis scan, in proposal order.
                for candidate in evaluated {
                    let Some(cost) = candidate.cost else {
                        self.phase = SaPhase::Done; // budget exhausted
                        return;
                    };
                    self.outcome.samples += 1;
                    let improved = cost < self.outcome.best_cost;
                    self.outcome.consider(candidate.genome.clone(), cost);
                    if improved {
                        self.best_memo = candidate.memo.clone();
                    }
                    let accept = cost <= self.current_cost || {
                        let delta = cost - self.current_cost;
                        self.temperature > 0.0
                            && self.rng.gen::<f64>() < (-delta / self.temperature).exp()
                    };
                    if accept {
                        self.current = Some(candidate.genome);
                        self.current_cost = cost;
                        self.current_memo = candidate.memo;
                        self.rejected = 0;
                    } else {
                        self.rejected += 1;
                        if cfg.restart_after > 0 && self.rejected >= cfg.restart_after {
                            if let Some(best) = &self.outcome.best {
                                self.current = Some(best.clone());
                                self.current_cost = self.outcome.best_cost;
                                self.current_memo = self.best_memo.clone();
                            }
                            self.rejected = 0;
                        }
                    }
                    self.temperature *= cfg.cooling;
                }
            }
            SaPhase::Done => {}
        }
    }

    fn outcome(&self) -> SearchOutcome {
        self.outcome.clone()
    }

    fn state(&self) -> DriverState {
        DriverState::Sa(SaState {
            rng: rng_state(&self.rng),
            phase: self.phase,
            current: self.current.clone(),
            current_cost: self.current_cost,
            temperature: self.temperature,
            rejected: self.rejected,
            outcome: self.outcome.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};

    #[test]
    fn improves_over_first_sample() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(BufferConfig::separate(1 << 20, 1152 << 10)),
            Objective::partition_only(CostMetric::Ema),
            1_500,
        );
        let outcome = SimulatedAnnealing::default().with_seed(4).run(&ctx);
        let curve = ctx.trace().best_curve();
        assert!(curve.len() > 1, "SA never improved");
        assert!(outcome.best_cost < curve[0].1);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let run = |seed| {
            let ctx = SearchContext::new(
                &g,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                300,
            );
            SimulatedAnnealing::default()
                .with_seed(seed)
                .run(&ctx)
                .best_cost
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn best_genome_is_valid() {
        let g = cocco_graph::models::randwire_a();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(BufferConfig::shared(1 << 20)),
            Objective::partition_only(CostMetric::Ema),
            200,
        );
        let outcome = SimulatedAnnealing::default().with_seed(1).run(&ctx);
        assert!(outcome.best.unwrap().partition.validate(&g).is_ok());
    }
}
