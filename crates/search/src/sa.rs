//! Simulated-annealing baseline (paper §4.2.4).

use crate::context::{EvalCandidate, EvalHint, SearchContext};
use crate::ga::{mutate_with_delta, MutationRates};
use crate::genome::Genome;
use crate::outcome::{SearchOutcome, Searcher};
use cocco_partition::PartitionDelta;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of [`SimulatedAnnealing`].
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Initial temperature, as a fraction of the initial cost (the accept
    /// probability of a move that worsens cost by `T·cost` is `1/e`).
    pub initial_temperature: f64,
    /// Geometric cooling factor applied per step.
    pub cooling: f64,
    /// Mutation probabilities (the paper reuses Cocco's customized
    /// operators).
    pub mutation: MutationRates,
    /// RNG seed.
    pub seed: u64,
    /// Restart from the best state after this many consecutive rejected
    /// moves (0 disables restarts).
    pub restart_after: u64,
    /// Neighbors proposed (and evaluated as one engine batch) per step.
    /// All neighbors of a step mutate the same current state; the
    /// Metropolis scan then processes them in proposal order. `1`
    /// reproduces classic single-neighbor annealing.
    pub neighbor_batch: u32,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            initial_temperature: 0.02,
            cooling: 0.999,
            mutation: MutationRates::default(),
            seed: 0xC0CC0,
            restart_after: 500,
            neighbor_batch: 8,
        }
    }
}

/// Simulated annealing over genomes, using the same mutation operators and
/// repair pipeline as [`CoccoGa`](crate::CoccoGa) — the paper's co-optimizing
/// baseline, "not as stable as the genetic algorithm in a range of
/// benchmarks".
///
/// Neighbors are proposed [`neighbor_batch`](SaConfig::neighbor_batch) at a
/// time and scored as one engine batch, so the annealing chain benefits
/// from the worker pool while the accept/reject sequence stays
/// seed-deterministic at any thread count.
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, Objective, SearchContext, Searcher, SimulatedAnnealing};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::diamond();
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::fixed(BufferConfig::shared(1 << 20)),
///     Objective::partition_only(CostMetric::Ema),
///     500,
/// );
/// let outcome = SimulatedAnnealing::default().run(&ctx);
/// assert!(outcome.best_cost.is_finite());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Creates the searcher from an explicit configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }
}

impl Searcher for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        let cfg = &self.config;
        let graph = ctx.graph();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let start_samples = ctx.budget().used();
        let mut outcome = SearchOutcome::empty();

        let mut seed = EvalCandidate::new(Genome::random(graph, &ctx.space, &mut rng));
        let Some(Some(seed_cost)) = ctx
            .evaluate_candidates(std::slice::from_mut(&mut seed))
            .pop()
        else {
            return outcome;
        };
        let mut current = seed.genome;
        let mut current_cost = seed_cost;
        // The current state's per-subgraph breakdown seeds each neighbor's
        // incremental hint; the best state's breakdown restores it on
        // restarts.
        let mut current_memo = seed.memo;
        let mut best_memo = current_memo.clone();
        outcome.consider(current.clone(), current_cost);

        // Temperature in absolute cost units.
        let scale = if current_cost.is_finite() {
            current_cost
        } else {
            1.0
        };
        let mut temperature = cfg.initial_temperature * scale;
        let mut rejected = 0u64;

        let batch = cfg.neighbor_batch.max(1) as usize;
        'anneal: loop {
            // Propose a batch of neighbors of the current state (serial RNG
            // draws keep the proposal sequence seed-deterministic), score
            // them as one engine batch — each neighbor carrying the current
            // state's memo plus its own mutation delta, so only touched
            // subgraphs are re-scored — then run the Metropolis scan in
            // proposal order.
            let mut neighbors: Vec<EvalCandidate> = (0..batch)
                .map(|_| {
                    let mut candidate = current.clone();
                    let mut delta = PartitionDelta::clean(graph.len());
                    mutate_with_delta(
                        ctx,
                        graph,
                        &mut candidate,
                        &cfg.mutation,
                        &mut rng,
                        &mut delta,
                    );
                    let hint = current_memo.clone().map(|memo| EvalHint { memo, delta });
                    EvalCandidate::with_hint(candidate, hint)
                })
                .collect();
            let costs = ctx.evaluate_candidates(&mut neighbors);
            for (candidate, cost) in neighbors.into_iter().zip(costs) {
                let Some(cost) = cost else {
                    break 'anneal; // budget exhausted
                };
                let improved = cost < outcome.best_cost;
                outcome.consider(candidate.genome.clone(), cost);
                if improved {
                    best_memo = candidate.memo.clone();
                }
                let accept = cost <= current_cost || {
                    let delta = cost - current_cost;
                    temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp()
                };
                if accept {
                    current = candidate.genome;
                    current_cost = cost;
                    current_memo = candidate.memo;
                    rejected = 0;
                } else {
                    rejected += 1;
                    if cfg.restart_after > 0 && rejected >= cfg.restart_after {
                        if let Some(best) = &outcome.best {
                            current = best.clone();
                            current_cost = outcome.best_cost;
                            current_memo = best_memo.clone();
                        }
                        rejected = 0;
                    }
                }
                temperature *= cfg.cooling;
            }
        }

        outcome.samples = ctx.budget().used() - start_samples;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};

    #[test]
    fn improves_over_first_sample() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(BufferConfig::separate(1 << 20, 1152 << 10)),
            Objective::partition_only(CostMetric::Ema),
            1_500,
        );
        let outcome = SimulatedAnnealing::default().with_seed(4).run(&ctx);
        let curve = ctx.trace().best_curve();
        assert!(curve.len() > 1, "SA never improved");
        assert!(outcome.best_cost < curve[0].1);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let run = |seed| {
            let ctx = SearchContext::new(
                &g,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                300,
            );
            SimulatedAnnealing::default()
                .with_seed(seed)
                .run(&ctx)
                .best_cost
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn best_genome_is_valid() {
        let g = cocco_graph::models::randwire_a();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::fixed(BufferConfig::shared(1 << 20)),
            Objective::partition_only(CostMetric::Ema),
            200,
        );
        let outcome = SimulatedAnnealing::default().with_seed(1).run(&ctx);
        assert!(outcome.best.unwrap().partition.validate(&g).is_ok());
    }
}
