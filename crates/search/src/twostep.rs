//! Two-step exploration baselines: capacity sampling followed by
//! partition-only GA (paper §5.1.3, "RS+GA" and "GS+GA").

use crate::context::SearchContext;
use crate::driver::{run_driver, DriverState, EvalBatch, SearchDriver, Step};
use crate::ga::{GaConfig, GaDriver, GaState};
use crate::genome::Genome;
use crate::objective::{BufferSpace, Objective};
use crate::outcome::{SearchOutcome, Searcher};
use cocco_partition::Partition;
use cocco_sim::BufferConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the first step picks capacity candidates.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapacitySampling {
    /// Uniform random candidates from the space ("RS").
    Random,
    /// Evenly spaced grid candidates traversed from large to small ("GS" —
    /// the paper notes the deterministic large-to-small direction makes its
    /// convergence time depend on where the optimum lies).
    Grid,
}

/// The decoupled two-step scheme: sample memory-capacity candidates, run a
/// partition-only GA for each (a fixed per-candidate sample budget, 5 000
/// in the paper), and keep the best Formula-2 cost.
///
/// The paper's criticism — "the two-step scheme fails to combine the
/// information between different sizes" — falls out of the classic
/// construction: each inner GA restarts from scratch. Two modes:
///
/// * **Interleaved** (the default, [`interleave`](TwoStep::interleave)
///   `= true`): every capacity candidate gets a deterministic
///   [`SampleBudget`](cocco_engine::SampleBudget) slice up front, the
///   inner GAs advance **round-robin**, and each round's generations are
///   dispatched to the engine pool as *one* batch, so the memoized caches
///   warm across candidates within one dispatch. On top of the shared
///   schedule, the round's globally most promising partition (by
///   Formula-2 cost) migrates into the other candidates' next generations
///   — precisely the cross-size information flow the paper says the
///   scheme lacks. Funding is pre-reserved per chunk, so a driver dropped
///   mid-step refunds its unconsumed reservation to the shared pool.
/// * **Sequential** ([`sequential`](TwoStep::sequential)): the historical
///   construction — one candidate at a time, each inner GA from scratch —
///   kept as the reference baseline arm.
///
/// Either way the inner GAs run on derived contexts, so their generation
/// batches use the outer context's engine — same worker pool, one shared
/// memoization cache (re-proposed partitions under the same buffer score
/// for free).
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, CapacitySampling, Objective, SearchContext, Searcher, TwoStep};
/// use cocco_sim::{AcceleratorConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::diamond();
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::paper_shared(),
///     Objective::co_exploration(CostMetric::Energy, 0.002),
///     1_000,
/// );
/// let outcome = TwoStep::random().with_per_candidate(200).run(&ctx);
/// assert!(outcome.best.is_some());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TwoStep {
    /// Candidate sampling strategy.
    pub sampling: CapacitySampling,
    /// Samples granted to each inner partition-only GA.
    pub per_candidate: u64,
    /// Inner GA configuration.
    pub ga: GaConfig,
    /// Seed for candidate sampling.
    pub seed: u64,
    /// Round-robin the capacity candidates through deterministically
    /// sliced budgets, sharing each engine dispatch and migrating elites
    /// across candidates (`true`, the default) — or run them one at a
    /// time, from scratch, as the paper's baseline (`false`).
    pub interleave: bool,
}

impl TwoStep {
    /// Random-search capacity sampling (RS+GA) with the paper's 5 000
    /// samples per candidate.
    pub fn random() -> Self {
        Self {
            sampling: CapacitySampling::Random,
            per_candidate: 5_000,
            ga: GaConfig::default(),
            seed: 0xC0CC0,
            interleave: true,
        }
    }

    /// Grid-search capacity sampling (GS+GA).
    pub fn grid() -> Self {
        Self {
            sampling: CapacitySampling::Grid,
            ..Self::random()
        }
    }

    /// Sets the per-candidate inner budget.
    pub fn with_per_candidate(mut self, samples: u64) -> Self {
        self.per_candidate = samples.max(1);
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the historical sequential construction: candidates run one
    /// after another, each inner GA from scratch (the reference baseline
    /// the interleaved mode is benchmarked against).
    pub fn sequential(mut self) -> Self {
        self.interleave = false;
        self
    }

    /// The scheme as a resumable [`SearchDriver`].
    pub fn driver(&self) -> TwoStepDriver {
        TwoStepDriver {
            config: self.clone(),
            phase: TsPhase::Init,
            candidates: Vec::new(),
            next_candidate: 0,
            slots: Vec::new(),
            pending_map: Vec::new(),
            alpha: None,
            outcome: SearchOutcome::empty(),
        }
    }
}

impl Searcher for TwoStep {
    fn name(&self) -> &'static str {
        match self.sampling {
            CapacitySampling::Random => "RS+GA",
            CapacitySampling::Grid => "GS+GA",
        }
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        run_driver(&mut self.driver(), ctx)
    }
}

/// Where the two-step state machine stands.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum TsPhase {
    /// Capacity candidates not yet sampled.
    Init,
    /// Inner GAs running.
    Run,
    /// Finished.
    Done,
}

/// One serialized inner-GA slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct TsSlotState {
    ga: GaState,
    buffer: BufferConfig,
    /// Slice capacity still unconsumed at snapshot time.
    remaining: u64,
    done: bool,
    last_elite: Option<Partition>,
}

/// Serializable state of a [`TwoStepDriver`], valid between any two steps
/// (no in-flight reservations exist at step boundaries).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TwoStepState {
    phase: TsPhase,
    candidates: Vec<BufferConfig>,
    next_candidate: u64,
    slots: Vec<TsSlotState>,
    alpha: Option<f64>,
    outcome: SearchOutcome,
}

/// One live inner GA: its driver, capacity candidate, budget slice and
/// migration bookkeeping.
#[derive(Debug)]
struct InnerSlot {
    ga: GaDriver,
    buffer: BufferConfig,
    /// Remaining slice capacity until the slice is materialized (lazily,
    /// because slicing needs the context's budget handle).
    cap: u64,
    slice: Option<Arc<cocco_engine::SampleBudget>>,
    done: bool,
    /// The elite partition last injected into this slot (migration skips
    /// re-injecting an unchanged elite).
    last_elite: Option<Partition>,
}

/// The two-step scheme as a step-driven state machine. In sequential mode
/// it reproduces the historical run bit-identically; in interleaved mode
/// each step gathers one generation from every live candidate into a
/// single engine dispatch and migrates the globally best partition across
/// candidates.
#[derive(Debug)]
pub struct TwoStepDriver {
    config: TwoStep,
    phase: TsPhase,
    candidates: Vec<BufferConfig>,
    /// Next candidate to start (sequential mode).
    next_candidate: usize,
    slots: Vec<InnerSlot>,
    /// Chunk distribution of the in-flight batch: `(slot, chunk count)`.
    pending_map: Vec<(usize, usize)>,
    /// The Formula-2 preference factor, captured at init so
    /// [`outcome`](SearchDriver::outcome) can score live slots without a
    /// context.
    alpha: Option<f64>,
    /// Formula-2 bests and samples of **folded** (finished) slots; live
    /// slots are merged in on every [`outcome`](SearchDriver::outcome)
    /// call.
    outcome: SearchOutcome,
}

impl TwoStepDriver {
    /// Resumes a driver from a serialized state (slices re-materialize
    /// with their remaining capacity on the first step).
    pub fn from_state(config: TwoStep, state: TwoStepState) -> Self {
        let ga_cfg = |i: usize| -> GaConfig {
            let mut cfg = config.ga.clone();
            cfg.seed = config.seed.wrapping_add(i as u64 + 1);
            cfg
        };
        let slots = state
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| InnerSlot {
                ga: GaDriver::from_state(ga_cfg(i), s.ga),
                buffer: s.buffer,
                cap: s.remaining,
                slice: None,
                done: s.done,
                last_elite: s.last_elite,
            })
            .collect();
        Self {
            config,
            phase: state.phase,
            candidates: state.candidates,
            next_candidate: state.next_candidate as usize,
            slots,
            pending_map: Vec::new(),
            alpha: state.alpha,
            outcome: state.outcome,
        }
    }

    /// The Formula-2 preference factor; the scheme requires Formula 2.
    fn alpha(ctx: &SearchContext<'_>) -> f64 {
        ctx.objective
            .alpha
            // cocco-audit: allow(R1) the facade rejects two-step without alpha before any driver is built (Error::Config)
            .expect("two-step exploration requires a Formula-2 objective")
    }

    /// Step 1: pick capacity candidates (legacy RNG order).
    fn init(&mut self, ctx: &SearchContext<'_>) {
        self.alpha = Some(Self::alpha(ctx));
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let start_samples = ctx.budget().used();
        let candidate_count =
            (ctx.budget().limit().saturating_sub(start_samples) / self.config.per_candidate).max(1);
        self.candidates = match self.config.sampling {
            CapacitySampling::Random => (0..candidate_count)
                .map(|_| ctx.space.sample(&mut rng))
                .collect(),
            CapacitySampling::Grid => {
                let grid = ctx.space.grid();
                let count = (candidate_count as usize).min(grid.len());
                // Evenly spaced, traversed from the largest down.
                let mut picks: Vec<_> = (0..count)
                    .map(|i| grid[i * grid.len() / count.max(1)])
                    .collect();
                picks.sort_by_key(|c| std::cmp::Reverse(c.total_bytes()));
                picks
            }
        };
        self.phase = TsPhase::Run;
        if self.config.interleave {
            // Every candidate gets its slice up front; the shared pool is
            // the binding constraint, drained in round-robin chunk order.
            for (i, &buffer) in self.candidates.iter().enumerate() {
                let mut ga_cfg = self.config.ga.clone();
                ga_cfg.seed = self.config.seed.wrapping_add(i as u64 + 1);
                self.slots.push(InnerSlot {
                    ga: GaDriver::new(ga_cfg),
                    buffer,
                    cap: self.config.per_candidate,
                    slice: None,
                    done: false,
                    last_elite: None,
                });
            }
            self.next_candidate = self.candidates.len();
        }
    }

    /// Materializes slot `si`'s budget slice (needs the context handle).
    fn ensure_slice(&mut self, ctx: &SearchContext<'_>, si: usize) {
        if self.slots[si].slice.is_none() {
            self.slots[si].slice = Some(Arc::new(cocco_engine::SampleBudget::slice(
                ctx.budget_handle(),
                self.slots[si].cap,
            )));
        }
    }

    /// The derived context slot `si`'s inner GA runs under: fixed buffer,
    /// partition-only objective, the slot's slice as budget.
    fn inner_ctx<'a>(&self, ctx: &SearchContext<'a>, si: usize) -> SearchContext<'a> {
        let slot = &self.slots[si];
        ctx.derive_with_budget(
            BufferSpace::fixed(slot.buffer),
            Objective::partition_only(ctx.objective.metric),
            // cocco-audit: allow(R1) every caller runs ensure_slice(si) first
            Arc::clone(slot.slice.as_ref().expect("slice materialized")),
        )
    }

    /// Folds a finished inner GA into the Formula-2 outcome.
    fn fold(&mut self, ctx: &SearchContext<'_>, si: usize) {
        let alpha = Self::alpha(ctx);
        let slot = &mut self.slots[si];
        slot.done = true;
        let sub = slot.ga.outcome();
        self.outcome.samples += sub.samples;
        if let Some(best) = sub.best {
            let cost = slot.buffer.total_bytes() as f64 + alpha * sub.best_cost;
            self.outcome
                .consider(Genome::new(best.partition, slot.buffer), cost);
        }
    }

    /// Sequential mode: one candidate at a time, bit-identical to the
    /// historical construction.
    fn next_sequential(&mut self, ctx: &SearchContext<'_>) -> Step {
        loop {
            // Find (or start) the current live slot.
            let live = self.slots.last().is_some_and(|s| !s.done);
            if !live {
                if self.next_candidate >= self.candidates.len() || ctx.budget().is_exhausted() {
                    self.phase = TsPhase::Done;
                    return Step::Done;
                }
                let i = self.next_candidate;
                self.next_candidate += 1;
                let remaining = ctx.budget().remaining();
                let inner_budget = self.config.per_candidate.min(remaining);
                let mut ga_cfg = self.config.ga.clone();
                ga_cfg.seed = self.config.seed.wrapping_add(i as u64 + 1);
                self.slots.push(InnerSlot {
                    ga: GaDriver::new(ga_cfg),
                    buffer: self.candidates[i],
                    cap: inner_budget,
                    slice: None,
                    done: false,
                    last_elite: None,
                });
            }
            let si = self.slots.len() - 1;
            self.ensure_slice(ctx, si);
            let inner_ctx = self.inner_ctx(ctx, si);
            match self.slots[si].ga.next_batch(&inner_ctx) {
                Step::Evaluate(mut batch) => {
                    let objective = Objective::partition_only(ctx.objective.metric);
                    // cocco-audit: allow(R1) ensure_slice(ctx, si) ran two lines above
                    let slice = Arc::clone(self.slots[si].slice.as_ref().unwrap());
                    for chunk in &mut batch.chunks {
                        chunk.objective = Some(objective);
                        chunk.budget = Some(Arc::clone(&slice));
                    }
                    self.pending_map = vec![(si, batch.chunks.len())];
                    return Step::Evaluate(batch);
                }
                Step::Continue => return Step::Continue,
                Step::Done => {
                    self.fold(ctx, si);
                    // Loop: start the next candidate (or finish).
                }
            }
        }
    }

    /// Interleaved mode: gather one generation from every live candidate
    /// into a single dispatch, funding each chunk from its slot's slice by
    /// **reservation** (drawn now, in round-robin order — deterministic —
    /// and refunded to slice and pool alike if the batch is dropped).
    fn next_interleaved(&mut self, ctx: &SearchContext<'_>) -> Step {
        if self.slots.iter().all(|s| s.done) {
            self.phase = TsPhase::Done;
            return Step::Done;
        }
        let objective = Objective::partition_only(ctx.objective.metric);
        let mut batch = EvalBatch::default();
        self.pending_map.clear();
        for si in 0..self.slots.len() {
            if self.slots[si].done {
                continue;
            }
            self.ensure_slice(ctx, si);
            let inner_ctx = self.inner_ctx(ctx, si);
            match self.slots[si].ga.next_batch(&inner_ctx) {
                Step::Evaluate(inner_batch) => {
                    // cocco-audit: allow(R1) ensure_slice(ctx, si) ran two lines above
                    let slice = Arc::clone(self.slots[si].slice.as_ref().unwrap());
                    let mut count = 0usize;
                    for mut chunk in inner_batch.chunks {
                        chunk.objective = Some(objective);
                        chunk.budget = None;
                        chunk.reservation = Some(slice.reserve(chunk.candidates.len() as u64));
                        batch.chunks.push(chunk);
                        count += 1;
                    }
                    self.pending_map.push((si, count));
                }
                Step::Continue => {}
                Step::Done => self.fold(ctx, si),
            }
        }
        if batch.chunks.is_empty() {
            return Step::Continue;
        }
        Step::Evaluate(batch)
    }

    /// Cross-candidate elite migration: the globally most promising
    /// partition this round (by Formula-2 cost, so sizes are comparable)
    /// is injected into every *other* live candidate's next generation —
    /// the "information between different sizes" the sequential scheme
    /// cannot combine. Re-injection of an unchanged elite is skipped.
    fn migrate(&mut self, ctx: &SearchContext<'_>) {
        let alpha = Self::alpha(ctx);
        let mut best: Option<(f64, usize, Genome)> = None;
        for (si, slot) in self.slots.iter().enumerate() {
            let sub = slot.ga.outcome();
            if let Some(genome) = sub.best {
                let cost = slot.buffer.total_bytes() as f64 + alpha * sub.best_cost;
                if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    best = Some((cost, si, genome));
                }
            }
        }
        let Some((_, source, elite)) = best else {
            return;
        };
        for si in 0..self.slots.len() {
            if si == source || self.slots[si].done {
                continue;
            }
            if self.slots[si].last_elite.as_ref() == Some(&elite.partition) {
                continue;
            }
            self.slots[si].last_elite = Some(elite.partition.clone());
            self.slots[si].ga.inject(elite.partition.clone());
        }
    }
}

impl SearchDriver for TwoStepDriver {
    fn name(&self) -> &'static str {
        match self.config.sampling {
            CapacitySampling::Random => "RS+GA",
            CapacitySampling::Grid => "GS+GA",
        }
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Step {
        match self.phase {
            TsPhase::Init => {
                self.init(ctx);
                Step::Continue
            }
            TsPhase::Run => {
                if self.config.interleave {
                    self.next_interleaved(ctx)
                } else {
                    self.next_sequential(ctx)
                }
            }
            TsPhase::Done => Step::Done,
        }
    }

    fn absorb(&mut self, ctx: &SearchContext<'_>, batch: EvalBatch) {
        let mut chunks = batch.chunks.into_iter();
        let map = std::mem::take(&mut self.pending_map);
        for (si, count) in map {
            let inner_batch = EvalBatch {
                chunks: chunks.by_ref().take(count).collect(),
            };
            let inner_ctx = self.inner_ctx(ctx, si);
            self.slots[si].ga.absorb(&inner_ctx, inner_batch);
        }
        if self.config.interleave {
            self.migrate(ctx);
        }
    }

    fn outcome(&self) -> SearchOutcome {
        // Folded slots live in `self.outcome`; live slots are merged on
        // the fly, so a meta-driver polling mid-run (portfolio
        // first-to-target) sees every inner GA's best and samples as soon
        // as they exist, not only at slice exhaustion.
        let mut outcome = self.outcome.clone();
        if let Some(alpha) = self.alpha {
            for slot in self.slots.iter().filter(|s| !s.done) {
                let sub = slot.ga.outcome();
                outcome.samples += sub.samples;
                if let Some(best) = sub.best {
                    let cost = slot.buffer.total_bytes() as f64 + alpha * sub.best_cost;
                    outcome.consider(Genome::new(best.partition, slot.buffer), cost);
                }
            }
        }
        outcome
    }

    fn state(&self) -> DriverState {
        DriverState::TwoStep(TwoStepState {
            phase: self.phase,
            candidates: self.candidates.clone(),
            next_candidate: self.next_candidate as u64,
            slots: self
                .slots
                .iter()
                .map(|slot| TsSlotState {
                    ga: match slot.ga.state() {
                        DriverState::Ga(state) => state,
                        _ => unreachable!("GA drivers produce GA states"),
                    },
                    buffer: slot.buffer,
                    remaining: slot.slice.as_ref().map_or(slot.cap, |s| s.remaining()),
                    done: slot.done,
                    last_elite: slot.last_elite.clone(),
                })
                .collect(),
            alpha: self.alpha,
            outcome: self.outcome.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_sim::{AcceleratorConfig, CostMetric, Evaluator};

    fn ctx<'a>(
        g: &'a cocco_graph::Graph,
        eval: &'a Evaluator<'a>,
        budget: u64,
    ) -> SearchContext<'a> {
        SearchContext::new(
            g,
            eval,
            BufferSpace::paper_shared(),
            Objective::co_exploration(CostMetric::Energy, 0.002),
            budget,
        )
    }

    #[test]
    fn rs_and_gs_produce_valid_results() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        for method in [TwoStep::random(), TwoStep::grid()] {
            let method = method.with_per_candidate(150);
            let name = method.name();
            let ctx = ctx(&g, &eval, 600);
            let out = method.run(&ctx);
            let best = out.best.expect(name);
            assert!(best.partition.validate(&g).is_ok());
            assert!(out.best_cost.is_finite());
            assert!(out.samples <= 600);
        }
    }

    #[test]
    fn sequential_mode_is_available_and_valid() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let method = TwoStep::random().with_per_candidate(150).sequential();
        assert!(!method.interleave);
        let ctx = ctx(&g, &eval, 450);
        let out = method.run(&ctx);
        assert!(out.best.expect("sequential").partition.validate(&g).is_ok());
        assert_eq!(out.samples, ctx.budget().used());
    }

    #[test]
    fn grid_traverses_large_to_small() {
        let ts = TwoStep::grid();
        assert_eq!(ts.name(), "GS+GA");
        assert_eq!(TwoStep::random().name(), "RS+GA");
    }

    #[test]
    fn respects_global_budget() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        for method in [
            TwoStep::random().with_per_candidate(40),
            TwoStep::random().with_per_candidate(40).sequential(),
        ] {
            let ctx = SearchContext::new(
                &g,
                &eval,
                BufferSpace::paper_shared(),
                Objective::co_exploration(CostMetric::Ema, 0.01),
                100,
            );
            let out = method.run(&ctx);
            assert!(ctx.budget().used() <= 100);
            assert_eq!(out.samples, ctx.budget().used());
        }
    }

    #[test]
    fn interleaved_migration_shares_elites_across_candidates() {
        // The interleaved scheme's whole point: information flows between
        // capacity candidates. After a few rounds, at least one slot must
        // have received an elite injection.
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = ctx(&g, &eval, 400);
        let mut driver = TwoStep::random().with_per_candidate(100).driver();
        loop {
            match driver.next_batch(&ctx) {
                Step::Evaluate(mut batch) => {
                    ctx.evaluate_chunks(&mut batch);
                    driver.absorb(&ctx, batch);
                }
                Step::Continue => {}
                Step::Done => break,
            }
        }
        assert!(
            driver.slots.iter().any(|s| s.last_elite.is_some()),
            "no elite ever migrated between candidates"
        );
        assert!(driver.outcome().best.is_some());
    }

    #[test]
    fn dropped_interleaved_step_refunds_its_reservations() {
        // Satellite invariant: a driver dropped mid-step (its in-flight
        // batch abandoned) strands no samples — the reservations flow back
        // to the slices and the shared pool.
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = ctx(&g, &eval, 200);
        let mut driver = TwoStep::random().with_per_candidate(50).driver();
        // Step until the driver hands out an evaluation batch.
        let batch = loop {
            match driver.next_batch(&ctx) {
                Step::Evaluate(batch) => break batch,
                Step::Continue => {}
                Step::Done => panic!("driver finished before evaluating"),
            }
        };
        let reserved = ctx.budget().used();
        assert!(reserved > 0, "interleaved batches pre-reserve funding");
        // Abandon the step: drop the batch (and the driver with it).
        drop(batch);
        drop(driver);
        assert_eq!(
            ctx.budget().used(),
            0,
            "unconsumed reservations must flow back to the pool"
        );
        // Total conservation: a fresh run on the same context can still
        // consume the full limit.
        let out = TwoStep::random().with_per_candidate(50).run(&ctx);
        assert_eq!(out.samples, ctx.budget().used());
        assert_eq!(ctx.budget().used(), 200, "refunded samples were stranded");
    }
}
