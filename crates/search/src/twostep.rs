//! Two-step exploration baselines: capacity sampling followed by
//! partition-only GA (paper §5.1.3, "RS+GA" and "GS+GA").

use crate::context::SearchContext;
use crate::ga::{CoccoGa, GaConfig};
use crate::genome::Genome;
use crate::objective::{BufferSpace, Objective};
use crate::outcome::{SearchOutcome, Searcher};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How the first step picks capacity candidates.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapacitySampling {
    /// Uniform random candidates from the space ("RS").
    Random,
    /// Evenly spaced grid candidates traversed from large to small ("GS" —
    /// the paper notes the deterministic large-to-small direction makes its
    /// convergence time depend on where the optimum lies).
    Grid,
}

/// The decoupled two-step scheme: sample memory-capacity candidates, run a
/// partition-only GA for each (a fixed per-candidate sample budget, 5 000
/// in the paper), and keep the best Formula-2 cost.
///
/// The paper's criticism — "the two-step scheme fails to combine the
/// information between different sizes" — falls out of the construction:
/// each inner GA restarts from scratch. The inner GAs run on derived
/// contexts, so their generation batches use the outer context's engine —
/// same worker pool, and a shared memoization cache across capacity
/// candidates (re-proposed partitions under the same buffer score for
/// free).
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, CapacitySampling, Objective, SearchContext, Searcher, TwoStep};
/// use cocco_sim::{AcceleratorConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::diamond();
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::paper_shared(),
///     Objective::co_exploration(CostMetric::Energy, 0.002),
///     1_000,
/// );
/// let outcome = TwoStep::random().with_per_candidate(200).run(&ctx);
/// assert!(outcome.best.is_some());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TwoStep {
    /// Candidate sampling strategy.
    pub sampling: CapacitySampling,
    /// Samples granted to each inner partition-only GA.
    pub per_candidate: u64,
    /// Inner GA configuration.
    pub ga: GaConfig,
    /// Seed for candidate sampling.
    pub seed: u64,
}

impl TwoStep {
    /// Random-search capacity sampling (RS+GA) with the paper's 5 000
    /// samples per candidate.
    pub fn random() -> Self {
        Self {
            sampling: CapacitySampling::Random,
            per_candidate: 5_000,
            ga: GaConfig::default(),
            seed: 0xC0CC0,
        }
    }

    /// Grid-search capacity sampling (GS+GA).
    pub fn grid() -> Self {
        Self {
            sampling: CapacitySampling::Grid,
            ..Self::random()
        }
    }

    /// Sets the per-candidate inner budget.
    pub fn with_per_candidate(mut self, samples: u64) -> Self {
        self.per_candidate = samples.max(1);
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Searcher for TwoStep {
    fn name(&self) -> &'static str {
        match self.sampling {
            CapacitySampling::Random => "RS+GA",
            CapacitySampling::Grid => "GS+GA",
        }
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let alpha = ctx
            .objective
            .alpha
            .expect("two-step exploration requires a Formula-2 objective");
        let start_samples = ctx.budget().used();
        let candidate_count =
            (ctx.budget().limit().saturating_sub(start_samples) / self.per_candidate).max(1);

        // Step 1: pick capacity candidates.
        let candidates: Vec<_> = match self.sampling {
            CapacitySampling::Random => (0..candidate_count)
                .map(|_| ctx.space.sample(&mut rng))
                .collect(),
            CapacitySampling::Grid => {
                let grid = ctx.space.grid();
                let count = (candidate_count as usize).min(grid.len());
                // Evenly spaced, traversed from the largest down.
                let mut picks: Vec<_> = (0..count)
                    .map(|i| grid[i * grid.len() / count.max(1)])
                    .collect();
                picks.sort_by_key(|c| std::cmp::Reverse(c.total_bytes()));
                picks
            }
        };

        // Step 2: one partition-only GA per candidate, on the shared budget.
        let mut outcome = SearchOutcome::empty();
        for (i, buffer) in candidates.into_iter().enumerate() {
            if ctx.budget().is_exhausted() {
                break;
            }
            let remaining = ctx.budget().remaining();
            let inner_budget = self.per_candidate.min(remaining);
            let inner_ctx = ctx.derive(
                BufferSpace::fixed(buffer),
                Objective::partition_only(ctx.objective.metric),
            );
            // Cap the inner run by slicing its own budget view: the shared
            // budget enforces the global limit; we bound the inner run by
            // running the GA until it consumes `inner_budget` samples.
            let mut ga_cfg = self.ga.clone();
            ga_cfg.seed = self.seed.wrapping_add(i as u64 + 1);
            let inner = InnerBudgetGa {
                ga: CoccoGa::new(ga_cfg),
                cap: inner_budget,
            };
            let sub = inner.run(&inner_ctx);
            if let Some(best) = sub.best {
                let cost = buffer.total_bytes() as f64 + alpha * sub.best_cost;
                outcome.consider(Genome::new(best.partition, buffer), cost);
            }
        }
        outcome.samples = ctx.budget().used() - start_samples;
        outcome
    }
}

/// Runs a GA but stops once it has consumed `cap` samples, by handing it a
/// context whose budget is a fresh slice that also forwards consumption to
/// the parent budget.
struct InnerBudgetGa {
    ga: CoccoGa,
    cap: u64,
}

impl InnerBudgetGa {
    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        // The shared budget already bounds the global run; bound the local
        // one by tracking consumption before/after each generation via the
        // GA's own budget checks. Simplest sound approach: run the GA with
        // a population small enough that generations are cheap, and stop it
        // via a capped sub-budget context.
        let sliced = ctx.slice_budget(self.cap);
        self.ga.run(&sliced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_sim::{AcceleratorConfig, CostMetric, Evaluator};

    #[test]
    fn rs_and_gs_produce_valid_results() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        for method in [TwoStep::random(), TwoStep::grid()] {
            let method = method.with_per_candidate(150);
            let name = method.name();
            let ctx = SearchContext::new(
                &g,
                &eval,
                BufferSpace::paper_shared(),
                Objective::co_exploration(CostMetric::Energy, 0.002),
                600,
            );
            let out = method.run(&ctx);
            let best = out.best.expect(name);
            assert!(best.partition.validate(&g).is_ok());
            assert!(out.best_cost.is_finite());
            assert!(out.samples <= 600);
        }
    }

    #[test]
    fn grid_traverses_large_to_small() {
        let ts = TwoStep::grid();
        assert_eq!(ts.name(), "GS+GA");
        assert_eq!(TwoStep::random().name(), "RS+GA");
    }

    #[test]
    fn respects_global_budget() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &g,
            &eval,
            BufferSpace::paper_shared(),
            Objective::co_exploration(CostMetric::Ema, 0.01),
            100,
        );
        let out = TwoStep::random().with_per_candidate(40).run(&ctx);
        assert!(ctx.budget().used() <= 100);
        assert_eq!(out.samples, ctx.budget().used());
    }
}
