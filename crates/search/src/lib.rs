//! Search methods for graph partition and hardware-mapping co-exploration
//! (paper §4.2-§4.4).
//!
//! All methods optimize the same two objectives over the same evaluator:
//!
//! * **Formula 1** (partition-only): `Σ_i Cost_M(subgraph_i)` under a fixed
//!   buffer configuration;
//! * **Formula 2** (co-exploration): `BUF_SIZE + α·Σ_i Cost_M(subgraph_i)`
//!   over a buffer search space.
//!
//! Implemented searchers:
//!
//! | method | paper | type |
//! |---|---|---|
//! | [`CoccoGa`] | §4.3-4.4 | genetic co-exploration (the contribution) |
//! | [`SimulatedAnnealing`] | §4.2.4 | co-exploration baseline |
//! | [`GreedyFusion`] | §4.2.2 | Halide-style merge baseline |
//! | [`DepthDp`] | §4.2.3 | Irregular-NN depth-ordered DP baseline |
//! | [`Exhaustive`] | §4.2.1 | downset state-compression enumeration |
//! | [`TwoStep`] | §5.1.3 | RS+GA / GS+GA capacity-then-partition |
//!
//! Every searcher draws evaluations from a shared [`SampleBudget`] so
//! "samples" are comparable across methods, and records a [`Trace`] for the
//! convergence and distribution studies (paper Figures 12-13). All genome
//! scoring funnels through the `cocco-engine` evaluation engine: batches
//! run on a worker pool and repeat evaluations hit a shared memoization
//! cache, with results bit-identical at any thread count (see
//! [`SearchContext::evaluate_batch`]).
//!
//! [`SearchMethod`] is the method registry: one serializable, seedable
//! selector carrying each method's typed configuration, itself a
//! [`Searcher`], so callers (notably the `cocco` facade) stay
//! method-agnostic.
//!
//! Under every method sits a **step-driven state machine**
//! ([`SearchDriver`]): `next_batch` yields a batch of [`EvalCandidate`]s
//! (with per-chunk objective/budget overrides), the harness evaluates it
//! as one engine dispatch, `absorb` advances the method's internal state,
//! and a serde-serializable [`DriverState`] snapshot makes any run
//! checkpoint/resumable mid-run — bit-identically. `Searcher::run` is the
//! thin default loop ([`run_driver`]); on top of the same surface sit the
//! interleaved [`TwoStep`] scheme and the [`Portfolio`] meta-driver.
//!
//! # Examples
//!
//! ```
//! use cocco_search::{CoccoGa, SearchContext, BufferSpace, Objective, Searcher};
//! use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
//!
//! let graph = cocco_graph::models::diamond();
//! let eval = Evaluator::new(&graph, AcceleratorConfig::default());
//! let ctx = SearchContext::new(
//!     &graph,
//!     &eval,
//!     BufferSpace::fixed(BufferConfig::shared(1 << 20)),
//!     Objective::partition_only(CostMetric::Ema),
//!     2_000,
//! );
//! let outcome = CoccoGa::default().with_seed(1).run(&ctx);
//! assert!(outcome.best_cost.is_finite());
//! ```

mod context;
mod dp;
mod driver;
mod exhaustive;
mod ga;
mod genome;
mod greedy;
mod method;
mod objective;
mod outcome;
mod portfolio;
mod sa;
mod twostep;

// Budget and trace primitives live in the engine crate; re-exported here so
// existing `cocco_search::{SampleBudget, Trace, TracePoint}` paths keep
// working.
pub use cocco_engine::EvalMemo;
pub use cocco_engine::{
    Engine, EngineConfig, EngineStats, PoolMode, SampleBudget, SampleReservation, ThreadCount,
};
pub use cocco_engine::{Trace, TracePoint};
pub use cocco_partition::PartitionDelta;
pub use context::{EvalCandidate, EvalHint, SearchContext};
pub use dp::{DepthDp, DpDriver, DpState};
pub use driver::{
    drive_step, run_driver, DriverState, EvalBatch, EvalChunk, SearchDriver, SearchSnapshot, Step,
    CHECKPOINT_VERSION,
};
pub use exhaustive::{Exhaustive, ExhaustiveDriver, ExhaustiveLimits, ExhaustiveState};
pub use ga::{CoccoGa, GaConfig, GaDriver, GaState, MutationRates};
pub use genome::Genome;
pub use greedy::{GreedyDriver, GreedyFusion, GreedyState};
pub use method::SearchMethod;
pub use objective::{BufferSpace, Objective};
pub use outcome::{SearchOutcome, Searcher};
pub use portfolio::{Portfolio, PortfolioDriver, PortfolioPolicy, PortfolioState};
pub use sa::{SaConfig, SaDriver, SaState, SimulatedAnnealing};
pub use twostep::{CapacitySampling, TwoStep, TwoStepDriver, TwoStepState};
