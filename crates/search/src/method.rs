//! The method registry: every searcher of the crate behind one
//! serializable, seedable selector.
//!
//! [`SearchMethod`] is the method-agnostic entry point of the exploration
//! API: each variant carries the typed configuration of one search method,
//! and the enum itself implements [`Searcher`], so any method runs through
//! the exact same trait path — same [`SearchContext`], same budget, same
//! trace — as invoking the underlying searcher directly.
//!
//! # Examples
//!
//! ```
//! use cocco_search::{BufferSpace, Objective, SearchContext, SearchMethod, Searcher};
//! use cocco_sim::{AcceleratorConfig, Evaluator};
//!
//! let graph = cocco_graph::models::diamond();
//! let eval = Evaluator::new(&graph, AcceleratorConfig::default());
//! for method in SearchMethod::all() {
//!     let ctx = SearchContext::new(
//!         &graph,
//!         &eval,
//!         BufferSpace::paper_shared(),
//!         Objective::paper_energy_capacity(),
//!         300,
//!     );
//!     let name = method.name();
//!     let outcome = method.with_seed(7).run(&ctx);
//!     assert!(outcome.best.is_some(), "{name} found nothing");
//! }
//! ```

use crate::context::SearchContext;
use crate::dp::DepthDp;
use crate::driver::{run_driver, DriverState, SearchDriver};
use crate::exhaustive::{Exhaustive, ExhaustiveLimits};
use crate::ga::{CoccoGa, GaConfig, GaDriver};
use crate::greedy::{GreedyDriver, GreedyFusion};
use crate::outcome::{SearchOutcome, Searcher};
use crate::portfolio::{Portfolio, PortfolioDriver};
use crate::sa::{SaConfig, SimulatedAnnealing};
use crate::twostep::{CapacitySampling, TwoStep, TwoStepDriver};
use serde::{Deserialize, Serialize};

/// Selects a search method together with its typed configuration.
///
/// Construct with the default-config constructors ([`ga`](SearchMethod::ga),
/// [`sa`](SearchMethod::sa), ...), by wrapping an explicit configuration in
/// the matching variant, or from a CLI key via
/// [`parse`](SearchMethod::parse).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SearchMethod {
    /// Genetic co-exploration — the paper's contribution (§4.3-§4.4).
    Ga(GaConfig),
    /// Simulated-annealing co-exploration baseline (§4.2.4).
    Sa(SaConfig),
    /// Halide-style greedy fusion baseline (§4.2.2). Deterministic,
    /// fixed hardware.
    Greedy,
    /// Depth-ordered DP baseline, Irregular-NN (§4.2.3). Deterministic,
    /// fixed hardware.
    DepthDp(DepthDp),
    /// Exact downset enumeration (§4.2.1). Deterministic, fixed hardware;
    /// may report `completed = false` on large irregular graphs.
    Exhaustive(ExhaustiveLimits),
    /// Two-step capacity-then-partition scheme, RS+GA / GS+GA (§5.1.3).
    TwoStep(TwoStep),
    /// A portfolio of methods racing round-robin on one budget/engine
    /// (built on the step-driven [`SearchDriver`] surface).
    Portfolio(Portfolio),
}

impl SearchMethod {
    /// Genetic co-exploration with the default configuration.
    pub fn ga() -> Self {
        SearchMethod::Ga(GaConfig::default())
    }

    /// Simulated annealing with the default configuration.
    pub fn sa() -> Self {
        SearchMethod::Sa(SaConfig::default())
    }

    /// Greedy fusion.
    pub fn greedy() -> Self {
        SearchMethod::Greedy
    }

    /// Depth-ordered DP with the default run cap.
    pub fn depth_dp() -> Self {
        SearchMethod::DepthDp(DepthDp::default())
    }

    /// Exact enumeration with the default state/expansion limits.
    pub fn exhaustive() -> Self {
        SearchMethod::Exhaustive(ExhaustiveLimits::default())
    }

    /// Two-step scheme with random capacity sampling (RS+GA).
    pub fn two_step() -> Self {
        SearchMethod::TwoStep(TwoStep::random())
    }

    /// A default portfolio: the stochastic methods (GA, SA, two-step)
    /// racing best-at-exhaustion on one budget.
    pub fn portfolio() -> Self {
        SearchMethod::Portfolio(Portfolio::new(vec![
            Self::ga(),
            Self::sa(),
            Self::two_step(),
        ]))
    }

    /// One instance of every method, under default configurations
    /// (the order of the paper's method tables).
    pub fn all() -> Vec<SearchMethod> {
        vec![
            Self::greedy(),
            Self::depth_dp(),
            Self::exhaustive(),
            Self::sa(),
            Self::two_step(),
            Self::ga(),
        ]
    }

    /// The stable machine-readable key (`ga`, `sa`, `greedy`, `dp`,
    /// `exhaustive`, `twostep`) — what [`parse`](SearchMethod::parse)
    /// accepts and the CLI prints.
    pub fn key(&self) -> &'static str {
        match self {
            SearchMethod::Ga(_) => "ga",
            SearchMethod::Sa(_) => "sa",
            SearchMethod::Greedy => "greedy",
            SearchMethod::DepthDp(_) => "dp",
            SearchMethod::Exhaustive(_) => "exhaustive",
            SearchMethod::TwoStep(_) => "twostep",
            SearchMethod::Portfolio(_) => "portfolio",
        }
    }

    /// Builds a method (with default configuration) from its
    /// [`key`](SearchMethod::key). Returns `None` for unknown keys.
    pub fn parse(key: &str) -> Option<Self> {
        match key {
            "ga" => Some(Self::ga()),
            "sa" => Some(Self::sa()),
            "greedy" => Some(Self::greedy()),
            "dp" => Some(Self::depth_dp()),
            "exhaustive" => Some(Self::exhaustive()),
            "twostep" => Some(Self::two_step()),
            "portfolio" => Some(Self::portfolio()),
            _ => None,
        }
    }

    /// Re-seeds the method's RNG. A no-op for the deterministic methods
    /// (greedy, DP, enumeration).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        match &mut self {
            SearchMethod::Ga(cfg) => cfg.seed = seed,
            SearchMethod::Sa(cfg) => cfg.seed = seed,
            SearchMethod::TwoStep(cfg) => cfg.seed = seed,
            SearchMethod::Portfolio(cfg) => cfg.seed = seed,
            SearchMethod::Greedy | SearchMethod::DepthDp(_) | SearchMethod::Exhaustive(_) => {}
        }
        self
    }

    /// `true` when the method only works under a Formula-2 objective
    /// (currently the two-step scheme, whose first step scores capacity
    /// candidates by `BUF_SIZE + α·cost` — and any portfolio containing
    /// it).
    pub fn requires_formula2(&self) -> bool {
        match self {
            SearchMethod::TwoStep(_) => true,
            SearchMethod::Portfolio(cfg) => cfg.members.iter().any(Self::requires_formula2),
            _ => false,
        }
    }

    /// `true` when the method can explore a non-fixed buffer space. The
    /// deterministic baselines run on one fixed configuration (the paper's
    /// "cannot co-explore with DSE") — under a non-fixed space they pick
    /// the largest grid point.
    pub fn co_explores(&self) -> bool {
        match self {
            SearchMethod::Greedy | SearchMethod::DepthDp(_) | SearchMethod::Exhaustive(_) => false,
            SearchMethod::Portfolio(cfg) => cfg.members.iter().any(Self::co_explores),
            _ => true,
        }
    }

    /// Instantiates the underlying searcher — the registry lookup.
    pub fn build(&self) -> Box<dyn Searcher + Send + Sync> {
        match self {
            SearchMethod::Ga(cfg) => Box::new(CoccoGa::new(cfg.clone())),
            SearchMethod::Sa(cfg) => Box::new(SimulatedAnnealing::new(*cfg)),
            SearchMethod::Greedy => Box::new(GreedyFusion::new()),
            SearchMethod::DepthDp(cfg) => Box::new(cfg.clone()),
            SearchMethod::Exhaustive(limits) => Box::new(Exhaustive::new(*limits)),
            SearchMethod::TwoStep(cfg) => Box::new(cfg.clone()),
            SearchMethod::Portfolio(cfg) => Box::new(cfg.clone()),
        }
    }

    /// Instantiates the method's resumable [`SearchDriver`] — the stepped
    /// registry lookup (`Searcher::run` is a thin loop over this).
    pub fn driver(&self) -> Box<dyn SearchDriver> {
        match self {
            SearchMethod::Ga(cfg) => Box::new(CoccoGa::new(cfg.clone()).driver()),
            SearchMethod::Sa(cfg) => Box::new(SimulatedAnnealing::new(*cfg).driver()),
            SearchMethod::Greedy => Box::new(GreedyFusion::new().driver()),
            SearchMethod::DepthDp(cfg) => Box::new(cfg.driver()),
            SearchMethod::Exhaustive(limits) => Box::new(Exhaustive::new(*limits).driver()),
            SearchMethod::TwoStep(cfg) => Box::new(cfg.driver()),
            SearchMethod::Portfolio(cfg) => Box::new(cfg.driver()),
        }
    }

    /// Resumes a driver from a serialized [`DriverState`]. Returns `None`
    /// when the state does not belong to this method (e.g. a checkpoint
    /// written by a different method or portfolio shape).
    pub fn driver_from_state(&self, state: &DriverState) -> Option<Box<dyn SearchDriver>> {
        match (self, state) {
            (SearchMethod::Ga(cfg), DriverState::Ga(s)) => {
                Some(Box::new(GaDriver::from_state(cfg.clone(), s.clone())))
            }
            (SearchMethod::Sa(cfg), DriverState::Sa(s)) => {
                Some(Box::new(crate::sa::SaDriver::from_state(*cfg, s.clone())))
            }
            (SearchMethod::Greedy, DriverState::Greedy(s)) => {
                Some(Box::new(GreedyDriver::from_state(s.clone())))
            }
            (SearchMethod::DepthDp(cfg), DriverState::DepthDp(s)) => Some(Box::new(
                crate::dp::DpDriver::from_state(cfg.clone(), s.clone()),
            )),
            (SearchMethod::Exhaustive(limits), DriverState::Exhaustive(s)) => Some(Box::new(
                crate::exhaustive::ExhaustiveDriver::from_state(*limits, s.clone()),
            )),
            (SearchMethod::TwoStep(cfg), DriverState::TwoStep(s)) => {
                Some(Box::new(TwoStepDriver::from_state(cfg.clone(), s.clone())))
            }
            (SearchMethod::Portfolio(cfg), DriverState::Portfolio(s)) => {
                PortfolioDriver::from_state(cfg.clone(), s.clone())
                    .map(|d| Box::new(d) as Box<dyn SearchDriver>)
            }
            _ => None,
        }
    }
}

impl Default for SearchMethod {
    /// The paper's default engine: the genetic algorithm.
    fn default() -> Self {
        Self::ga()
    }
}

impl Searcher for SearchMethod {
    fn name(&self) -> &'static str {
        match self {
            SearchMethod::Ga(_) => "Cocco (GA)",
            SearchMethod::Sa(_) => "SA",
            SearchMethod::Greedy => "Halide (greedy)",
            SearchMethod::DepthDp(_) => "Irregular-NN (DP)",
            SearchMethod::Exhaustive(_) => "Enumeration",
            SearchMethod::TwoStep(cfg) => match cfg.sampling {
                CapacitySampling::Random => "RS+GA",
                CapacitySampling::Grid => "GS+GA",
            },
            SearchMethod::Portfolio(_) => "Portfolio",
        }
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        run_driver(&mut *self.driver(), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};

    #[test]
    fn keys_round_trip() {
        for method in SearchMethod::all() {
            let parsed = SearchMethod::parse(method.key()).unwrap();
            assert_eq!(parsed.key(), method.key());
            assert_eq!(parsed, method, "parse must yield the default config");
        }
        assert!(SearchMethod::parse("annealing").is_none());
    }

    #[test]
    fn names_match_underlying_searchers() {
        for method in SearchMethod::all() {
            assert_eq!(method.name(), method.build().name());
        }
    }

    #[test]
    fn with_seed_reaches_the_inner_config() {
        let SearchMethod::Ga(cfg) = SearchMethod::ga().with_seed(99) else {
            panic!("variant changed");
        };
        assert_eq!(cfg.seed, 99);
        let SearchMethod::TwoStep(ts) = SearchMethod::two_step().with_seed(5) else {
            panic!("variant changed");
        };
        assert_eq!(ts.seed, 5);
        // No-op on deterministic methods, but still returns the method.
        assert_eq!(SearchMethod::greedy().with_seed(1), SearchMethod::greedy());
    }

    #[test]
    fn enum_matches_direct_invocation() {
        let graph = cocco_graph::models::diamond();
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        let make_ctx = || {
            SearchContext::new(
                &graph,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                250,
            )
        };
        let direct = CoccoGa::default().with_seed(3).run(&make_ctx());
        let cfg = GaConfig {
            seed: 3,
            ..GaConfig::default()
        };
        let via_enum = SearchMethod::Ga(cfg).run(&make_ctx());
        assert_eq!(direct.best_cost, via_enum.best_cost);
        assert_eq!(direct.best, via_enum.best);
        assert_eq!(direct.samples, via_enum.samples);
    }

    #[test]
    fn serde_round_trip_preserves_configs() {
        use serde::{Deserialize, Serialize};
        let ga = GaConfig {
            population: 37,
            ..GaConfig::default()
        };
        let methods = vec![
            SearchMethod::Ga(ga),
            SearchMethod::sa().with_seed(11),
            SearchMethod::greedy(),
            SearchMethod::depth_dp(),
            SearchMethod::exhaustive(),
            SearchMethod::two_step(),
        ];
        for method in methods {
            let value = method.to_value();
            let back = SearchMethod::from_value(&value).unwrap();
            assert_eq!(back, method);
        }
    }

    #[test]
    fn fixed_space_methods_still_run_on_fixed_spaces() {
        let graph = cocco_graph::models::chain(4);
        let eval = Evaluator::new(&graph, AcceleratorConfig::default());
        for method in [
            SearchMethod::greedy(),
            SearchMethod::depth_dp(),
            SearchMethod::exhaustive(),
        ] {
            assert!(!method.co_explores());
            let ctx = SearchContext::new(
                &graph,
                &eval,
                BufferSpace::fixed(BufferConfig::shared(8 << 20)),
                Objective::partition_only(CostMetric::Ema),
                0,
            );
            let outcome = method.run(&ctx);
            assert!(outcome.best.is_some(), "{}", method.name());
        }
    }
}
