//! Halide-style greedy fusion baseline (paper §4.2.2).

use crate::context::SearchContext;
use crate::driver::{run_driver, DriverState, EvalBatch, SearchDriver, Step};
use crate::genome::Genome;
use crate::outcome::{SearchOutcome, Searcher};
use cocco_partition::{Partition, Quotient};
use cocco_sim::BufferConfig;
use serde::{Deserialize, Serialize};

/// Greedy grouping as in Halide's auto-scheduler: start from one subgraph
/// per layer, then repeatedly apply the feasible merge (across a quotient
/// edge) with the greatest cost benefit until every remaining benefit is
/// negative.
///
/// The method is deterministic, runs on a fixed hardware configuration
/// (paper: "the greedy method cannot co-explore with DSE") and tends to be
/// trapped in local minima — exactly the behaviours the paper compares
/// Cocco against.
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, GreedyFusion, Objective, SearchContext, Searcher};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::chain(4);
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::fixed(BufferConfig::shared(4 << 20)),
///     Objective::partition_only(CostMetric::Ema),
///     0, // greedy is analytic: it consumes no samples
/// );
/// let outcome = GreedyFusion::default().run(&ctx);
/// assert_eq!(outcome.best.unwrap().partition.num_subgraphs(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GreedyFusion {
    _private: (),
}

impl GreedyFusion {
    /// Creates the searcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fixed buffer the greedy run uses: the space's single
    /// configuration, or the largest grid point of a non-fixed space.
    fn buffer(ctx: &SearchContext<'_>) -> BufferConfig {
        match ctx.space {
            crate::objective::BufferSpace::Fixed(c) => c,
            _ => *ctx
                .space
                .grid()
                .last()
                // cocco-audit: allow(R1) CapacityRange is non-empty by construction, so every grid() has entries
                .expect("buffer space has at least one configuration"),
        }
    }
}

impl GreedyFusion {
    /// The greedy merger as a resumable [`SearchDriver`] (one merge round
    /// per step).
    pub fn driver(&self) -> GreedyDriver {
        GreedyDriver {
            partition: None,
            outcome: SearchOutcome::empty(),
            done: false,
        }
    }
}

impl Searcher for GreedyFusion {
    fn name(&self) -> &'static str {
        "Halide (greedy)"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        run_driver(&mut self.driver(), ctx)
    }
}

/// Serializable state of a [`GreedyDriver`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GreedyState {
    /// Current assignment (`None` until the first step ran).
    assignment: Option<Vec<u32>>,
    done: bool,
    outcome: SearchOutcome,
}

/// Greedy fusion as a step-driven state machine: each step applies the one
/// feasible merge with the greatest benefit (a full scan, as before —
/// shared with the engine's term cache, so re-scans are cheap); the final
/// step scores the converged partition. Analytic: no step consumes budget.
#[derive(Debug)]
pub struct GreedyDriver {
    partition: Option<Partition>,
    outcome: SearchOutcome,
    done: bool,
}

impl GreedyDriver {
    /// Resumes a driver from a serialized state.
    pub fn from_state(state: GreedyState) -> Self {
        Self {
            partition: state.assignment.map(Partition::from_assignment),
            outcome: state.outcome,
            done: state.done,
        }
    }
}

impl SearchDriver for GreedyDriver {
    fn name(&self) -> &'static str {
        "Halide (greedy)"
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Step {
        if self.done {
            return Step::Done;
        }
        let graph = ctx.graph();
        let buffer = GreedyFusion::buffer(ctx);
        let mut partition = self
            .partition
            .take()
            .unwrap_or_else(|| Partition::singletons(graph.len()));
        // Per-subgraph additive cost; infinity when a subgraph cannot fit.
        let cost_of = |members: &[cocco_graph::NodeId]| -> f64 {
            ctx.subgraph_cost(members, &buffer).unwrap_or(f64::INFINITY)
        };
        let groups = partition.subgraphs();
        let group_cost: Vec<f64> = groups.iter().map(|m| cost_of(m)).collect();
        let quotient = Quotient::build(graph, &partition);
        let mut best: Option<(f64, u32, u32)> = None; // (benefit, a, b)
        for a in 0..quotient.num_subgraphs() as u32 {
            for &b in quotient.succs(a) {
                // Merging across edge a->b is legal iff no alternative
                // path a ⇝ b exists (it would close a cycle).
                if has_indirect_path(&quotient, a, b) {
                    continue;
                }
                let mut merged: Vec<cocco_graph::NodeId> = groups[a as usize]
                    .iter()
                    .chain(groups[b as usize].iter())
                    .copied()
                    .collect();
                merged.sort_unstable();
                let Some(merged_cost) = ctx.subgraph_cost(&merged, &buffer) else {
                    continue; // does not fit
                };
                let benefit = group_cost[a as usize] + group_cost[b as usize] - merged_cost;
                if benefit > 0.0 && best.is_none_or(|(bb, _, _)| benefit > bb) {
                    best = Some((benefit, a, b));
                }
            }
        }
        match best {
            Some((_, a, b)) => {
                // Relabel b's members into a's subgraph; another round next
                // step.
                let groups = partition.subgraphs();
                let target = partition.subgraph_of(groups[a as usize][0]);
                for &m in &groups[b as usize] {
                    partition.assign(m, target);
                }
                self.partition = Some(partition);
                Step::Continue
            }
            None => {
                // Converged: score the result.
                partition.canonicalize(graph);
                let cost = ctx.partition_cost(&partition, &buffer);
                self.outcome.consider(Genome::new(partition, buffer), cost);
                self.done = true;
                Step::Done
            }
        }
    }

    fn absorb(&mut self, _ctx: &SearchContext<'_>, _batch: EvalBatch) {}

    fn outcome(&self) -> SearchOutcome {
        self.outcome.clone()
    }

    fn state(&self) -> DriverState {
        DriverState::Greedy(GreedyState {
            assignment: self.partition.as_ref().map(|p| p.assignment().to_vec()),
            done: self.done,
            outcome: self.outcome.clone(),
        })
    }
}

/// Is there a path `a ⇝ b` in the quotient other than the direct edge?
fn has_indirect_path(quotient: &Quotient, a: u32, b: u32) -> bool {
    let mut seen = vec![false; quotient.num_subgraphs()];
    let mut stack: Vec<u32> = quotient
        .succs(a)
        .iter()
        .copied()
        .filter(|&s| s != b)
        .collect();
    for &s in &stack {
        seen[s as usize] = true;
    }
    while let Some(v) = stack.pop() {
        if v == b {
            return true;
        }
        for &s in quotient.succs(v) {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, CostMetric, Evaluator};

    fn run_on(graph: &cocco_graph::Graph, buffer: BufferConfig) -> (SearchOutcome, f64) {
        let eval = Evaluator::new(graph, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            graph,
            &eval,
            BufferSpace::fixed(buffer),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        let out = GreedyFusion::default().run(&ctx);
        let singles_cost = {
            let p = Partition::singletons(graph.len());
            ctx.partition_cost(&p, &buffer)
        };
        (out, singles_cost)
    }

    #[test]
    fn never_worse_than_singletons() {
        for model in ["resnet50", "googlenet", "randwire-a"] {
            let g = cocco_graph::models::by_name(model).unwrap();
            let (out, singles) = run_on(&g, BufferConfig::separate(1 << 20, 1152 << 10));
            assert!(
                out.best_cost <= singles,
                "{model}: greedy {} > singletons {singles}",
                out.best_cost
            );
        }
    }

    #[test]
    fn result_is_valid() {
        let g = cocco_graph::models::googlenet();
        let (out, _) = run_on(&g, BufferConfig::separate(1 << 20, 1152 << 10));
        let best = out.best.unwrap();
        assert!(best.partition.validate(&g).is_ok());
    }

    #[test]
    fn merges_whole_chain_when_buffer_allows() {
        let g = cocco_graph::models::chain(6);
        let (out, _) = run_on(&g, BufferConfig::shared(8 << 20));
        assert_eq!(out.best.unwrap().partition.num_subgraphs(), 1);
    }

    #[test]
    fn respects_capacity() {
        let g = cocco_graph::models::chain(6);
        // Buffer large enough for ~2 layers' tiles only.
        let (out, _) = run_on(&g, BufferConfig::shared(4 << 10));
        let best = out.best.unwrap();
        for members in best.partition.subgraphs() {
            let eval = Evaluator::new(&g, AcceleratorConfig::default());
            let stats = eval.subgraph_stats(&members).unwrap();
            assert!(stats.act_footprint_bytes + stats.wgt_resident_bytes <= 4 << 10);
        }
    }

    #[test]
    fn indirect_path_detection() {
        // diamond quotient: a -> {l, r} -> add as 4 subgraphs.
        let g = cocco_graph::models::diamond();
        let p = Partition::from_assignment(vec![0, 0, 1, 2, 3]);
        let q = Quotient::build(&g, &p);
        // 0 -> 1 -> 3 and 0 -> 2 -> 3: merging 0 with 3 would close a
        // cycle; but that's not an edge. Check edge 0 -> 1: no indirect
        // path 0 ⇝ 1.
        assert!(!has_indirect_path(&q, 0, 1));
        // Edge 1 -> 3: no indirect path 1 ⇝ 3 (paths via 2 start at 0).
        assert!(!has_indirect_path(&q, 1, 3));
    }
}
