//! Depth-ordered dynamic-programming baseline (Irregular-NN, paper §4.2.3).

use crate::context::SearchContext;
use crate::genome::Genome;
use crate::outcome::{SearchOutcome, Searcher};
use cocco_graph::NodeId;
use cocco_partition::Partition;
use serde::{Deserialize, Serialize};

/// The DP baseline of Zheng et al.: layers are arranged by depth and a
/// classic chain DP assigns *contiguous runs of that order* to subgraphs.
///
/// The contiguity restriction is what the paper criticizes: the search space
/// is constrained, so non-plain structures rarely reach the global optimum,
/// and the state transition depends on a fixed buffer size, so the method
/// cannot co-explore hardware.
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, DepthDp, Objective, SearchContext, Searcher};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::chain(5);
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::fixed(BufferConfig::shared(8 << 20)),
///     Objective::partition_only(CostMetric::Ema),
///     0,
/// );
/// let outcome = DepthDp::default().run(&ctx);
/// // On a plain chain with a large buffer the DP is optimal: one subgraph.
/// assert_eq!(outcome.best.unwrap().partition.num_subgraphs(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthDp {
    /// Longest run of the depth order considered as one subgraph (bounds
    /// the O(N·K) transition count; the region manager caps useful sizes
    /// anyway).
    pub max_run: usize,
}

impl Default for DepthDp {
    fn default() -> Self {
        Self { max_run: 128 }
    }
}

impl DepthDp {
    /// Creates the searcher with a custom run cap.
    pub fn new(max_run: usize) -> Self {
        Self {
            max_run: max_run.max(1),
        }
    }
}

impl Searcher for DepthDp {
    fn name(&self) -> &'static str {
        "Irregular-NN (DP)"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        let graph = ctx.graph();
        let buffer = match ctx.space {
            crate::objective::BufferSpace::Fixed(c) => c,
            _ => *ctx
                .space
                .grid()
                .last()
                .expect("buffer space has at least one configuration"),
        };
        let n = graph.len();

        // Depth order (ties by id) — the "arrange the layers based on their
        // depth" step.
        let depths = graph.depths();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (depths[i], i));

        // dp[i]: best cost covering the first i nodes of the order.
        let mut dp = vec![f64::INFINITY; n + 1];
        let mut back = vec![usize::MAX; n + 1];
        dp[0] = 0.0;
        for i in 1..=n {
            let lo = i.saturating_sub(self.max_run);
            for j in (lo..i).rev() {
                if !dp[j].is_finite() {
                    continue;
                }
                let members: Vec<NodeId> =
                    order[j..i].iter().map(|&k| NodeId::from_index(k)).collect();
                if !graph.is_connected_subset(&members) {
                    continue;
                }
                let Some(cost) = ctx.subgraph_cost(&members, &buffer) else {
                    // Weights grow monotonically with the run: once a run
                    // stops fitting, longer runs cannot fit either.
                    break;
                };
                if dp[j] + cost < dp[i] {
                    dp[i] = dp[j] + cost;
                    back[i] = j;
                }
            }
        }

        let mut outcome = SearchOutcome::empty();
        if !dp[n].is_finite() {
            return outcome;
        }
        // Reconstruct the run boundaries.
        let mut assignment = vec![0u32; n];
        let mut i = n;
        let mut sg = 0u32;
        let mut cuts = Vec::new();
        while i > 0 {
            let j = back[i];
            cuts.push((j, i));
            i = j;
        }
        cuts.reverse();
        for (j, i) in cuts {
            for &k in &order[j..i] {
                assignment[k] = sg;
            }
            sg += 1;
        }
        let mut partition = Partition::from_assignment(assignment);
        partition.canonicalize(graph);
        let cost = ctx.partition_cost(&partition, &buffer);
        outcome.consider(Genome::new(partition, buffer), cost);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};

    fn run_on(graph: &cocco_graph::Graph, buffer: BufferConfig) -> SearchOutcome {
        let eval = Evaluator::new(graph, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            graph,
            &eval,
            BufferSpace::fixed(buffer),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        DepthDp::default().run(&ctx)
    }

    #[test]
    fn optimal_on_chains() {
        // For plain chains the contiguity restriction is harmless: DP
        // should find the unfused-weights floor with a big buffer.
        let g = cocco_graph::models::chain(8);
        let out = run_on(&g, BufferConfig::shared(8 << 20));
        let floor = g.total_weight_elements()
            + g.out_elements(g.input_ids()[0])
            + g.out_elements(g.output_ids()[0]);
        assert_eq!(out.best_cost, floor as f64);
    }

    #[test]
    fn result_is_valid_on_branchy_models() {
        for model in ["resnet50", "googlenet", "randwire-a"] {
            let g = cocco_graph::models::by_name(model).unwrap();
            let out = run_on(&g, BufferConfig::separate(1 << 20, 1152 << 10));
            let best = out.best.expect(model);
            assert!(best.partition.validate(&g).is_ok(), "{model}");
        }
    }

    #[test]
    fn subgraphs_are_contiguous_depth_runs() {
        let g = cocco_graph::models::resnet50();
        let out = run_on(&g, BufferConfig::separate(1 << 20, 1152 << 10));
        let best = out.best.unwrap();
        // Depth rank per node.
        let depths = g.depths();
        let mut order: Vec<usize> = (0..g.len()).collect();
        order.sort_by_key(|&i| (depths[i], i));
        let mut rank = vec![0usize; g.len()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        for members in best.partition.subgraphs() {
            let mut ranks: Vec<usize> = members.iter().map(|m| rank[m.index()]).collect();
            ranks.sort_unstable();
            assert!(
                ranks.windows(2).all(|w| w[1] == w[0] + 1),
                "non-contiguous run {ranks:?}"
            );
        }
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        let g = cocco_graph::models::chain(3);
        let out = run_on(&g, BufferConfig::shared(16));
        assert!(out.best.is_none());
        assert!(out.best_cost.is_infinite());
    }
}
