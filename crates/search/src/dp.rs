//! Depth-ordered dynamic-programming baseline (Irregular-NN, paper §4.2.3).

use crate::context::SearchContext;
use crate::driver::{run_driver, DriverState, EvalBatch, SearchDriver, Step};
use crate::genome::Genome;
use crate::outcome::{SearchOutcome, Searcher};
use cocco_graph::NodeId;
use cocco_partition::Partition;
use cocco_sim::BufferConfig;
use serde::{Deserialize, Serialize};

/// The DP baseline of Zheng et al.: layers are arranged by depth and a
/// classic chain DP assigns *contiguous runs of that order* to subgraphs.
///
/// The contiguity restriction is what the paper criticizes: the search space
/// is constrained, so non-plain structures rarely reach the global optimum,
/// and the state transition depends on a fixed buffer size, so the method
/// cannot co-explore hardware.
///
/// # Examples
///
/// ```
/// use cocco_search::{BufferSpace, DepthDp, Objective, SearchContext, Searcher};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::chain(5);
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let ctx = SearchContext::new(
///     &g,
///     &eval,
///     BufferSpace::fixed(BufferConfig::shared(8 << 20)),
///     Objective::partition_only(CostMetric::Ema),
///     0,
/// );
/// let outcome = DepthDp::default().run(&ctx);
/// // On a plain chain with a large buffer the DP is optimal: one subgraph.
/// assert_eq!(outcome.best.unwrap().partition.num_subgraphs(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthDp {
    /// Longest run of the depth order considered as one subgraph (bounds
    /// the O(N·K) transition count; the region manager caps useful sizes
    /// anyway).
    pub max_run: usize,
}

impl Default for DepthDp {
    fn default() -> Self {
        Self { max_run: 128 }
    }
}

impl DepthDp {
    /// Creates the searcher with a custom run cap.
    pub fn new(max_run: usize) -> Self {
        Self {
            max_run: max_run.max(1),
        }
    }
}

impl DepthDp {
    /// The DP as a resumable [`SearchDriver`] (one table row per step).
    pub fn driver(&self) -> DpDriver {
        DpDriver {
            config: self.clone(),
            dp: Vec::new(),
            back: Vec::new(),
            row: 0,
            order: Vec::new(),
            done: false,
            outcome: SearchOutcome::empty(),
        }
    }

    /// The depth order (ties by id) — the "arrange the layers based on
    /// their depth" step. Recomputed deterministically from the graph, so
    /// it never travels in a snapshot.
    fn depth_order(graph: &cocco_graph::Graph) -> Vec<usize> {
        let depths = graph.depths();
        let mut order: Vec<usize> = (0..graph.len()).collect();
        order.sort_by_key(|&i| (depths[i], i));
        order
    }

    /// The fixed buffer the DP runs under.
    fn buffer(ctx: &SearchContext<'_>) -> BufferConfig {
        match ctx.space {
            crate::objective::BufferSpace::Fixed(c) => c,
            _ => *ctx
                .space
                .grid()
                .last()
                // cocco-audit: allow(R1) CapacityRange is non-empty by construction, so every grid() has entries
                .expect("buffer space has at least one configuration"),
        }
    }
}

impl Searcher for DepthDp {
    fn name(&self) -> &'static str {
        "Irregular-NN (DP)"
    }

    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        run_driver(&mut self.driver(), ctx)
    }
}

/// Serializable state of a [`DpDriver`]: the DP table so far (infinite
/// costs round-trip exactly), back-pointers, and the next row to fill.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DpState {
    dp: Vec<f64>,
    back: Vec<u64>,
    row: u64,
    done: bool,
    outcome: SearchOutcome,
}

/// The depth-ordered chain DP as a step-driven state machine: each step
/// fills one row of the table (`dp[i]` = best cost covering the first `i`
/// nodes of the depth order); the final step reconstructs and scores the
/// run boundaries. Analytic: no step consumes budget.
#[derive(Debug)]
pub struct DpDriver {
    config: DepthDp,
    dp: Vec<f64>,
    back: Vec<usize>,
    /// Next row to fill (`0` = table not yet initialized).
    row: usize,
    /// The depth order, derived once per driver (deterministic from the
    /// graph, so it never travels in a snapshot; rebuilt lazily on
    /// resume).
    order: Vec<usize>,
    done: bool,
    outcome: SearchOutcome,
}

impl DpDriver {
    /// Resumes a driver from a serialized state.
    pub fn from_state(config: DepthDp, state: DpState) -> Self {
        Self {
            config,
            dp: state.dp,
            back: state
                .back
                .into_iter()
                .map(|b| usize::try_from(b).unwrap_or(usize::MAX))
                .collect(),
            row: state.row as usize,
            order: Vec::new(),
            done: state.done,
            outcome: state.outcome,
        }
    }
}

impl SearchDriver for DpDriver {
    fn name(&self) -> &'static str {
        "Irregular-NN (DP)"
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Step {
        if self.done {
            return Step::Done;
        }
        let graph = ctx.graph();
        let buffer = DepthDp::buffer(ctx);
        let n = graph.len();
        if self.row == 0 {
            // dp[i]: best cost covering the first i nodes of the order.
            self.dp = vec![f64::INFINITY; n + 1];
            self.back = vec![usize::MAX; n + 1];
            self.dp[0] = 0.0;
            self.row = 1;
            return Step::Continue;
        }
        if self.order.is_empty() {
            self.order = DepthDp::depth_order(graph);
        }
        let order = &self.order;
        if self.row <= n {
            let i = self.row;
            let lo = i.saturating_sub(self.config.max_run);
            for j in (lo..i).rev() {
                if !self.dp[j].is_finite() {
                    continue;
                }
                let members: Vec<NodeId> =
                    order[j..i].iter().map(|&k| NodeId::from_index(k)).collect();
                if !graph.is_connected_subset(&members) {
                    continue;
                }
                let Some(cost) = ctx.subgraph_cost(&members, &buffer) else {
                    // Weights grow monotonically with the run: once a run
                    // stops fitting, longer runs cannot fit either.
                    break;
                };
                if self.dp[j] + cost < self.dp[i] {
                    self.dp[i] = self.dp[j] + cost;
                    self.back[i] = j;
                }
            }
            self.row += 1;
            return Step::Continue;
        }
        // Table complete: reconstruct the run boundaries and score.
        self.done = true;
        if !self.dp[n].is_finite() {
            return Step::Done;
        }
        let mut assignment = vec![0u32; n];
        let mut i = n;
        let mut sg = 0u32;
        let mut cuts = Vec::new();
        while i > 0 {
            let j = self.back[i];
            cuts.push((j, i));
            i = j;
        }
        cuts.reverse();
        for (j, i) in cuts {
            for &k in &order[j..i] {
                assignment[k] = sg;
            }
            sg += 1;
        }
        let mut partition = Partition::from_assignment(assignment);
        partition.canonicalize(graph);
        let cost = ctx.partition_cost(&partition, &buffer);
        self.outcome.consider(Genome::new(partition, buffer), cost);
        Step::Done
    }

    fn absorb(&mut self, _ctx: &SearchContext<'_>, _batch: EvalBatch) {}

    fn outcome(&self) -> SearchOutcome {
        self.outcome.clone()
    }

    fn state(&self) -> DriverState {
        DriverState::DepthDp(DpState {
            dp: self.dp.clone(),
            back: self.back.iter().map(|&b| b as u64).collect(),
            row: self.row as u64,
            done: self.done,
            outcome: self.outcome.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BufferSpace, Objective};
    use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};

    fn run_on(graph: &cocco_graph::Graph, buffer: BufferConfig) -> SearchOutcome {
        let eval = Evaluator::new(graph, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            graph,
            &eval,
            BufferSpace::fixed(buffer),
            Objective::partition_only(CostMetric::Ema),
            0,
        );
        DepthDp::default().run(&ctx)
    }

    #[test]
    fn optimal_on_chains() {
        // For plain chains the contiguity restriction is harmless: DP
        // should find the unfused-weights floor with a big buffer.
        let g = cocco_graph::models::chain(8);
        let out = run_on(&g, BufferConfig::shared(8 << 20));
        let floor = g.total_weight_elements()
            + g.out_elements(g.input_ids()[0])
            + g.out_elements(g.output_ids()[0]);
        assert_eq!(out.best_cost, floor as f64);
    }

    #[test]
    fn result_is_valid_on_branchy_models() {
        for model in ["resnet50", "googlenet", "randwire-a"] {
            let g = cocco_graph::models::by_name(model).unwrap();
            let out = run_on(&g, BufferConfig::separate(1 << 20, 1152 << 10));
            let best = out.best.expect(model);
            assert!(best.partition.validate(&g).is_ok(), "{model}");
        }
    }

    #[test]
    fn subgraphs_are_contiguous_depth_runs() {
        let g = cocco_graph::models::resnet50();
        let out = run_on(&g, BufferConfig::separate(1 << 20, 1152 << 10));
        let best = out.best.unwrap();
        // Depth rank per node.
        let depths = g.depths();
        let mut order: Vec<usize> = (0..g.len()).collect();
        order.sort_by_key(|&i| (depths[i], i));
        let mut rank = vec![0usize; g.len()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        for members in best.partition.subgraphs() {
            let mut ranks: Vec<usize> = members.iter().map(|m| rank[m.index()]).collect();
            ranks.sort_unstable();
            assert!(
                ranks.windows(2).all(|w| w[1] == w[0] + 1),
                "non-contiguous run {ranks:?}"
            );
        }
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        let g = cocco_graph::models::chain(3);
        let out = run_on(&g, BufferConfig::shared(16));
        assert!(out.best.is_none());
        assert!(out.best_cost.is_infinite());
    }
}
