//! Candidate solutions: a partition plus a buffer configuration.

use crate::objective::BufferSpace;
use cocco_graph::Graph;
use cocco_partition::Partition;
use cocco_sim::BufferConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One candidate solution of the co-exploration problem: a graph partition
/// and the memory configuration it runs under (paper §4.3: "we encode each
/// candidate solution ... as a genome").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    /// The partition scheme `P`.
    pub partition: Partition,
    /// The buffer configuration.
    pub buffer: BufferConfig,
}

impl Genome {
    /// Creates a genome from parts.
    pub fn new(partition: Partition, buffer: BufferConfig) -> Self {
        Self { partition, buffer }
    }

    /// Random initialization (paper §4.4.1): the buffer is drawn uniformly
    /// from `space`, and `P(v)` is chosen for each layer in topological
    /// order uniformly within its valid range `[max_u P(u), current_max+1]`
    /// (producers' subgraphs up to a brand-new subgraph). Run the repair
    /// pipeline before evaluating — random choices may still break
    /// connectivity.
    pub fn random<R: Rng + ?Sized>(graph: &Graph, space: &BufferSpace, rng: &mut R) -> Self {
        let n = graph.len();
        let mut assignment = vec![0u32; n];
        let mut current_max: i64 = -1;
        for (id, node) in graph.iter() {
            let low = node
                .inputs()
                .iter()
                .map(|p| assignment[p.index()])
                .max()
                .map_or(0, |m| m as i64);
            let high = current_max + 1; // a fresh subgraph
            let pick = rng.gen_range(low.max(0)..=high.max(low.max(0)));
            assignment[id.index()] = pick as u32;
            current_max = current_max.max(pick);
        }
        Self {
            partition: Partition::from_assignment(assignment),
            buffer: space.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_sim::CapacityRange;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_genomes_are_diverse() {
        let g = cocco_graph::models::googlenet();
        let space = BufferSpace::Shared(CapacityRange::paper_shared());
        let mut rng = StdRng::seed_from_u64(3);
        let a = Genome::random(&g, &space, &mut rng);
        let b = Genome::random(&g, &space, &mut rng);
        assert_ne!(a.partition, b.partition);
    }

    #[test]
    fn random_assignment_respects_precedence_ranges() {
        // P(v) >= max P(producers): no producer is assigned to a later
        // subgraph than its consumer at initialization time.
        let g = cocco_graph::models::resnet50();
        let space = BufferSpace::fixed(BufferConfig::shared(1 << 20));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let genome = Genome::random(&g, &space, &mut rng);
            for id in g.node_ids() {
                for &p in g.producers(id) {
                    assert!(genome.partition.subgraph_of(p) <= genome.partition.subgraph_of(id));
                }
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = cocco_graph::models::diamond();
        let space = BufferSpace::paper_shared();
        let a = Genome::random(&g, &space, &mut StdRng::seed_from_u64(5));
        let b = Genome::random(&g, &space, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
