//! The shared search context: evaluator access, budget accounting, repair
//! and trace recording.

use crate::budget::SampleBudget;
use crate::genome::Genome;
use crate::objective::{BufferSpace, Objective};
use crate::trace::{Trace, TracePoint};
use cocco_graph::{Graph, NodeId};
use cocco_partition::{repair, Partition};
use cocco_sim::{BufferConfig, EvalOptions, Evaluator};
use std::sync::Arc;

/// Everything a [`Searcher`](crate::Searcher) needs: the graph, the shared
/// evaluator, the buffer space, the objective, evaluation options, a sample
/// budget and a trace.
///
/// Genome-level evaluations ([`evaluate`](SearchContext::evaluate)) consume
/// budget and are traced; the analytic helpers used inside deterministic
/// baselines ([`subgraph_cost`](SearchContext::subgraph_cost),
/// [`fits`](SearchContext::fits)) do not.
#[derive(Debug)]
pub struct SearchContext<'a> {
    graph: &'a Graph,
    evaluator: &'a Evaluator<'a>,
    /// The buffer design space.
    pub space: BufferSpace,
    /// The objective (Formula 1 or 2).
    pub objective: Objective,
    /// Core/batch options applied to every evaluation.
    pub options: EvalOptions,
    budget: Arc<SampleBudget>,
    trace: Arc<Trace>,
}

impl<'a> SearchContext<'a> {
    /// Creates a context with a fresh budget of `budget_limit` samples.
    pub fn new(
        graph: &'a Graph,
        evaluator: &'a Evaluator<'a>,
        space: BufferSpace,
        objective: Objective,
        budget_limit: u64,
    ) -> Self {
        Self {
            graph,
            evaluator,
            space,
            objective,
            options: EvalOptions::default(),
            budget: Arc::new(SampleBudget::new(budget_limit)),
            trace: Arc::new(Trace::new()),
        }
    }

    /// Sets multi-core / batch evaluation options.
    pub fn with_options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Derives a context with a different space/objective that shares this
    /// context's budget, trace, options and evaluator — used by the
    /// two-step scheme to run partition-only inner searches against the
    /// common sample pool.
    pub fn derive(&self, space: BufferSpace, objective: Objective) -> SearchContext<'a> {
        SearchContext {
            graph: self.graph,
            evaluator: self.evaluator,
            space,
            objective,
            options: self.options,
            budget: Arc::clone(&self.budget),
            trace: Arc::clone(&self.trace),
        }
    }

    /// Derives a context whose budget is capped at `cap` additional samples
    /// while still drawing from (and counting against) this context's pool.
    pub fn slice_budget(&self, cap: u64) -> SearchContext<'a> {
        SearchContext {
            graph: self.graph,
            evaluator: self.evaluator,
            space: self.space,
            objective: self.objective,
            options: self.options,
            budget: Arc::new(SampleBudget::slice(Arc::clone(&self.budget), cap)),
            trace: Arc::clone(&self.trace),
        }
    }

    /// The searched graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The shared evaluator.
    pub fn evaluator(&self) -> &'a Evaluator<'a> {
        self.evaluator
    }

    /// The shared sample budget.
    pub fn budget(&self) -> &SampleBudget {
        &self.budget
    }

    /// The evaluation trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Whether subgraph `members` fits `buffer` under the context's options
    /// (activation footprint, per-core weight shard, region count).
    pub fn fits(&self, members: &[NodeId], buffer: &BufferConfig) -> bool {
        match self.evaluator.subgraph_stats(members) {
            Ok(stats) => {
                let wgt = stats
                    .wgt_resident_bytes
                    .div_ceil(u64::from(self.options.cores.max(1)));
                buffer.fits(stats.act_footprint_bytes, wgt)
                    && stats.regions <= self.evaluator.config().max_regions
            }
            Err(_) => false,
        }
    }

    /// Runs the full repair pipeline on `partition` for `buffer`
    /// (connectivity, acyclicity, in-situ capacity splits).
    pub fn repair(&self, partition: Partition, buffer: &BufferConfig) -> Partition {
        repair(self.graph, partition, &|members| self.fits(members, buffer))
    }

    /// Repairs and evaluates `genome` in place, consuming one budget
    /// sample. Returns the objective cost, or `None` when the budget is
    /// exhausted (the genome is then left unmodified).
    pub fn evaluate(&self, genome: &mut Genome) -> Option<f64> {
        let sample = self.budget.try_consume()?;
        genome.partition = self.repair(
            std::mem::replace(&mut genome.partition, Partition::singletons(0)),
            &genome.buffer,
        );
        Some(self.score(sample, genome))
    }

    /// Evaluates an already-valid genome (no repair), consuming one budget
    /// sample.
    pub fn evaluate_valid(&self, genome: &Genome) -> Option<f64> {
        let sample = self.budget.try_consume()?;
        Some(self.score(sample, genome))
    }

    fn score(&self, sample: u64, genome: &Genome) -> f64 {
        let subgraphs = genome.partition.subgraphs();
        let (cost, metric_value) =
            match self
                .evaluator
                .eval_partition(&subgraphs, &genome.buffer, self.options)
            {
                Ok(report) => {
                    let metric = report.metric(self.objective.metric);
                    let cost = match self.objective.alpha {
                        None => report.cost_formula1(self.objective.metric),
                        Some(alpha) => report.cost_formula2(self.objective.metric, alpha),
                    };
                    (cost, metric)
                }
                Err(_) => (f64::INFINITY, f64::INFINITY),
            };
        self.trace.record(TracePoint {
            sample,
            cost,
            buffer_bytes: genome.buffer.total_bytes(),
            metric_value,
        });
        cost
    }

    /// The additive Formula-1 term of a single subgraph under `buffer`
    /// (`None` when it does not fit). Used by the greedy, DP and
    /// enumeration baselines; does not consume budget.
    pub fn subgraph_cost(&self, members: &[NodeId], buffer: &BufferConfig) -> Option<f64> {
        if !self.fits(members, buffer) {
            return None;
        }
        let report = self
            .evaluator
            .eval_partition(
                std::slice::from_ref(&members.to_vec()),
                buffer,
                self.options,
            )
            .ok()?;
        Some(report.metric(self.objective.metric))
    }

    /// The full objective cost of a valid partition under `buffer`, without
    /// consuming budget (used to score deterministic baseline outputs).
    pub fn partition_cost(&self, partition: &Partition, buffer: &BufferConfig) -> f64 {
        match self
            .evaluator
            .eval_partition(&partition.subgraphs(), buffer, self.options)
        {
            Ok(report) => match self.objective.alpha {
                None => report.cost_formula1(self.objective.metric),
                Some(alpha) => report.cost_formula2(self.objective.metric, alpha),
            },
            Err(_) => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_sim::{AcceleratorConfig, CostMetric};

    fn context<'a>(
        graph: &'a Graph,
        evaluator: &'a Evaluator<'a>,
        budget: u64,
    ) -> SearchContext<'a> {
        SearchContext::new(
            graph,
            evaluator,
            BufferSpace::fixed(BufferConfig::shared(1 << 20)),
            Objective::partition_only(CostMetric::Ema),
            budget,
        )
    }

    #[test]
    fn evaluate_consumes_budget_and_traces() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 2);
        let mut genome = Genome::new(
            Partition::singletons(g.len()),
            BufferConfig::shared(1 << 20),
        );
        assert!(ctx.evaluate(&mut genome).is_some());
        assert!(ctx.evaluate(&mut genome).is_some());
        assert!(ctx.evaluate(&mut genome).is_none());
        assert_eq!(ctx.trace().len(), 2);
        assert_eq!(ctx.budget().used(), 2);
    }

    #[test]
    fn evaluate_repairs_invalid_genomes() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 10);
        // Cyclic quotient assignment.
        let mut genome = Genome::new(
            Partition::from_assignment(vec![0, 0, 0, 1, 0]),
            BufferConfig::shared(1 << 20),
        );
        let cost = ctx.evaluate(&mut genome).unwrap();
        assert!(cost.is_finite());
        assert!(genome.partition.validate(&g).is_ok());
    }

    #[test]
    fn subgraph_cost_matches_metric() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 10);
        let members: Vec<NodeId> = g.node_ids().collect();
        let cost = ctx
            .subgraph_cost(&members, &BufferConfig::shared(1 << 20))
            .unwrap();
        let stats = eval.subgraph_stats(&members).unwrap();
        assert_eq!(cost, stats.ema_bytes() as f64);
        assert_eq!(ctx.budget().used(), 0, "analytic helper must be free");
    }

    #[test]
    fn subgraph_cost_rejects_oversized() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 10);
        let members: Vec<NodeId> = g.node_ids().collect();
        assert!(ctx
            .subgraph_cost(&members, &BufferConfig::shared(64))
            .is_none());
    }
}
