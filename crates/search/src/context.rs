//! The shared search context: engine access, budget accounting, repair
//! and trace recording.

use crate::driver::EvalBatch;
use crate::genome::Genome;
use crate::objective::{BufferSpace, Objective};
use cocco_engine::{
    Engine, EngineConfig, EvalMemo, PartitionProbe, PreparedEval, SampleBudget, SampleReservation,
    ScoredEval, Trace, TracePoint,
};
use cocco_faults::{FaultPlan, FaultSite};
use cocco_graph::{Graph, NodeId};
use cocco_partition::{repair, repair_with_delta, Partition, PartitionDelta};
use cocco_sim::{BufferConfig, EvalOptions, Evaluator};
use cocco_telemetry::{Stopwatch, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a mutation operator knows about the genome it produced: the
/// scored parent's per-subgraph breakdown ([`EvalMemo`]) plus the
/// [`PartitionDelta`] naming which nodes the operator moved. The
/// evaluation path extends the delta with repair-induced changes,
/// re-fingerprints only the dirty subgraphs (clean ones copy the memo's
/// incrementally maintained fingerprint) and re-scores only dirty terms
/// (plus `next_wgt` predecessors, which the engine re-checks itself).
///
/// The delta **must** satisfy the member-set invariant documented on
/// [`PartitionDelta`] relative to the memo's partition — the
/// fingerprint-keyed cache derives key identity from it. Operators of
/// unknown extent derive an honest delta by diffing fingerprints
/// (`PartitionFingerprints::delta_against`) instead of guessing.
#[derive(Debug)]
pub struct EvalHint {
    /// Per-subgraph terms of the parent genome's evaluation.
    pub memo: Arc<EvalMemo>,
    /// Nodes whose subgraph membership the mutation changed.
    pub delta: PartitionDelta,
}

/// One genome queued for (incremental) batch evaluation.
///
/// Inputs: the genome and an optional [`EvalHint`]. Outputs, filled in by
/// [`SearchContext::evaluate_candidates`]: the repaired genome, its
/// objective `cost` (`None` iff the budget ran out first) and the fresh
/// `memo` to hand to this genome's own offspring (`None` when the score
/// came straight from the roll-up cache).
#[derive(Debug)]
pub struct EvalCandidate {
    /// The genome; repaired in place by evaluation.
    pub genome: Genome,
    /// Incremental-evaluation hint, consumed by evaluation.
    pub hint: Option<EvalHint>,
    /// The evaluation's per-subgraph breakdown (output).
    pub memo: Option<Arc<EvalMemo>>,
    /// The objective cost (output).
    pub cost: Option<f64>,
}

impl EvalCandidate {
    /// A candidate with no incremental hint (scored through the cache
    /// composition path).
    pub fn new(genome: Genome) -> Self {
        Self {
            genome,
            hint: None,
            memo: None,
            cost: None,
        }
    }

    /// A candidate carrying its parent's breakdown and the mutation's
    /// delta.
    pub fn with_hint(genome: Genome, hint: Option<EvalHint>) -> Self {
        Self {
            genome,
            hint,
            memo: None,
            cost: None,
        }
    }
}

/// Where a group's funding comes from (see `evaluate_groups`).
enum Funding<'f> {
    /// The context's own budget.
    Context,
    /// An explicit budget (a sub-search's slice).
    Budget(&'f SampleBudget),
    /// Funding drawn ahead of dispatch.
    Reservation(&'f mut SampleReservation),
}

/// One contiguous group of candidates sharing an objective and a funding
/// source inside a single engine dispatch.
struct EvalGroup<'g> {
    candidates: &'g mut [EvalCandidate],
    objective: Objective,
    funding: Funding<'g>,
}

/// Everything a [`Searcher`](crate::Searcher) needs: the graph, the shared
/// evaluator, the buffer space, the objective, evaluation options, a sample
/// budget, a trace and the evaluation [`Engine`].
///
/// Genome-level evaluations ([`evaluate`](SearchContext::evaluate),
/// [`evaluate_batch`](SearchContext::evaluate_batch)) consume budget and
/// are traced; the analytic helpers used inside deterministic baselines
/// ([`subgraph_cost`](SearchContext::subgraph_cost),
/// [`fits`](SearchContext::fits)) do not consume budget but still share the
/// engine's memoization cache.
///
/// # Parallelism and determinism
///
/// [`evaluate_batch`](SearchContext::evaluate_batch) spreads a batch over
/// the engine's worker pool. Budget samples are drawn and trace points
/// recorded in **input order** before/after the parallel section, and each
/// genome's repair + scoring is a pure function of the genome — so a
/// seeded search produces bit-identical results at any thread count.
#[derive(Debug)]
pub struct SearchContext<'a> {
    graph: &'a Graph,
    evaluator: &'a Evaluator<'a>,
    /// The buffer design space.
    pub space: BufferSpace,
    /// The objective (Formula 1 or 2).
    pub objective: Objective,
    /// Core/batch options applied to every evaluation.
    pub options: EvalOptions,
    budget: Arc<SampleBudget>,
    trace: Arc<Trace>,
    engine: Arc<Engine>,
    /// Best cost any evaluation of this context family has produced, as
    /// `f64` bits — telemetry only (`search.improvement` events), never
    /// consulted by a search decision. Shared by [`derive`](Self::derive)d
    /// contexts so an improvement is "new best of the whole run".
    best_seen: Arc<AtomicU64>,
    /// Seeded fault-injection plan (disabled by default). Draws happen in
    /// the serial funding-order sections only, so an enabled plan is
    /// bit-identical at any thread count.
    faults: FaultPlan,
    /// Set when a worker panic quarantined a batch: the panic message.
    /// Shared by derived contexts so one abort stops the whole step
    /// family; the driver loop checks it via
    /// [`fault_abort`](Self::fault_abort) and unwinds with best-so-far.
    abort: Arc<Mutex<Option<String>>>,
}

impl<'a> SearchContext<'a> {
    /// Creates a context with a fresh budget of `budget_limit` samples and
    /// a default ([`EngineConfig::auto`]) evaluation engine.
    pub fn new(
        graph: &'a Graph,
        evaluator: &'a Evaluator<'a>,
        space: BufferSpace,
        objective: Objective,
        budget_limit: u64,
    ) -> Self {
        Self {
            graph,
            evaluator,
            space,
            objective,
            options: EvalOptions::default(),
            budget: Arc::new(SampleBudget::new(budget_limit)),
            trace: Arc::new(Trace::new()),
            engine: Arc::new(Engine::new(EngineConfig::default())),
            best_seen: Arc::new(AtomicU64::new(f64::INFINITY.to_bits())),
            faults: FaultPlan::disabled(),
            abort: Arc::new(Mutex::new(None)),
        }
    }

    /// Sets multi-core / batch evaluation options.
    pub fn with_options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a fault-injection plan. Evaluation then draws from the
    /// plan's seeded RNG at the instrumented seams (evaluator errors,
    /// worker panics, budget revocation); a [`FaultPlan::disabled`] plan —
    /// the default — never draws and perturbs nothing.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The fault-injection plan this context draws from.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The panic message of a quarantined batch, if a worker panic aborted
    /// this context family. Once set, further evaluation requests return
    /// without funding, so the caller can unwind with budget accounting
    /// and trace still consistent.
    pub fn fault_abort(&self) -> Option<String> {
        self.abort
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Replaces the evaluation engine (thread policy; results are
    /// unaffected, only wall-clock). The replacement starts with an empty
    /// cache, so call this before searching.
    pub fn with_engine(mut self, config: EngineConfig) -> Self {
        self.engine = Arc::new(Engine::new(config));
        self
    }

    /// [`with_engine`](Self::with_engine) with a telemetry sink attached
    /// to the replacement engine — the context's own instrumentation
    /// (step spans, improvement events, budget gauge) reports through the
    /// engine's handle, so this is how a harness turns search telemetry
    /// on. Observation only: results are bit-identical with telemetry
    /// enabled, disabled, or shared with other components.
    pub fn with_engine_telemetry(mut self, config: EngineConfig, telemetry: &Telemetry) -> Self {
        self.engine = Arc::new(Engine::with_telemetry(config, telemetry.clone()));
        self
    }

    /// The telemetry handle this context reports through (the engine's;
    /// disabled unless [`with_engine_telemetry`](Self::with_engine_telemetry)
    /// attached a sink).
    pub fn telemetry(&self) -> &Telemetry {
        self.engine.telemetry()
    }

    /// Derives a context with a different space/objective that shares this
    /// context's budget, trace, options, evaluator and engine — used by the
    /// two-step scheme to run partition-only inner searches against the
    /// common sample pool (and the common memoization cache).
    pub fn derive(&self, space: BufferSpace, objective: Objective) -> SearchContext<'a> {
        SearchContext {
            graph: self.graph,
            evaluator: self.evaluator,
            space,
            objective,
            options: self.options,
            budget: Arc::clone(&self.budget),
            trace: Arc::clone(&self.trace),
            engine: Arc::clone(&self.engine),
            best_seen: Arc::clone(&self.best_seen),
            faults: self.faults.clone(),
            abort: Arc::clone(&self.abort),
        }
    }

    /// Derives a context whose budget is capped at `cap` additional samples
    /// while still drawing from (and counting against) this context's pool.
    pub fn slice_budget(&self, cap: u64) -> SearchContext<'a> {
        self.derive_with_budget(
            self.space,
            self.objective,
            Arc::new(SampleBudget::slice(Arc::clone(&self.budget), cap)),
        )
    }

    /// [`derive`](Self::derive) with an explicit budget handle — how a
    /// stepped sub-search (a two-step inner GA, a portfolio member) keeps
    /// drawing from **its own persistent slice** across driver steps while
    /// sharing this context's trace, engine and evaluator.
    pub fn derive_with_budget(
        &self,
        space: BufferSpace,
        objective: Objective,
        budget: Arc<SampleBudget>,
    ) -> SearchContext<'a> {
        SearchContext {
            graph: self.graph,
            evaluator: self.evaluator,
            space,
            objective,
            options: self.options,
            budget,
            trace: Arc::clone(&self.trace),
            engine: Arc::clone(&self.engine),
            best_seen: Arc::clone(&self.best_seen),
            faults: self.faults.clone(),
            abort: Arc::clone(&self.abort),
        }
    }

    /// The shared budget as a cloneable handle (for slicing by stepped
    /// sub-searches).
    pub fn budget_handle(&self) -> Arc<SampleBudget> {
        Arc::clone(&self.budget)
    }

    /// The searched graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The shared evaluator.
    pub fn evaluator(&self) -> &'a Evaluator<'a> {
        self.evaluator
    }

    /// The shared sample budget.
    pub fn budget(&self) -> &SampleBudget {
        &self.budget
    }

    /// The evaluation trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The shared evaluation engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Whether subgraph `members` fits `buffer` under the context's options
    /// (activation footprint, per-core weight shard, region count).
    ///
    /// Evaluator errors count as "does not fit" **and** increment the
    /// trace's `infeasible_errors` counter, so configuration bugs stay
    /// visible in the outcome.
    pub fn fits(&self, members: &[NodeId], buffer: &BufferConfig) -> bool {
        match self.evaluator.subgraph_stats(members) {
            Ok(stats) => {
                let wgt = stats
                    .wgt_resident_bytes
                    .div_ceil(u64::from(self.options.cores()));
                buffer.fits(stats.act_footprint_bytes, wgt)
                    && stats.regions <= self.evaluator.config().max_regions
            }
            Err(_) => {
                self.trace.record_infeasible_error();
                false
            }
        }
    }

    /// Runs the full repair pipeline on `partition` for `buffer`
    /// (connectivity, acyclicity, in-situ capacity splits).
    pub fn repair(&self, partition: Partition, buffer: &BufferConfig) -> Partition {
        repair(self.graph, partition, &|members| self.fits(members, buffer))
    }

    /// [`repair`](Self::repair), recording every membership change the
    /// pipeline makes into `delta` (on top of whatever the caller already
    /// marked).
    pub fn repair_with_delta(
        &self,
        partition: Partition,
        buffer: &BufferConfig,
        delta: &mut PartitionDelta,
    ) -> Partition {
        repair_with_delta(
            self.graph,
            partition,
            &|members| self.fits(members, buffer),
            delta,
        )
    }

    /// Repairs and evaluates `genome` in place, consuming one budget
    /// sample. Returns the objective cost, or `None` when the budget is
    /// exhausted (the genome is then left unmodified).
    pub fn evaluate(&self, genome: &mut Genome) -> Option<f64> {
        self.evaluate_batch(std::slice::from_mut(genome))
            .pop()
            .flatten()
    }

    /// Repairs and evaluates a batch of genomes in place on the engine's
    /// worker pool, consuming one budget sample per evaluated genome.
    ///
    /// The result vector preserves input order; entry `i` is `None` iff the
    /// budget ran out before genome `i` (un-funded genomes are left
    /// unmodified). Sample indices and trace points follow input order
    /// regardless of the thread count, so seeded searches are bit-identical
    /// serial and parallel.
    pub fn evaluate_batch(&self, genomes: &mut [Genome]) -> Vec<Option<f64>> {
        let mut candidates: Vec<EvalCandidate> = genomes
            .iter_mut()
            .map(|g| {
                let buffer = g.buffer;
                EvalCandidate::new(std::mem::replace(
                    g,
                    Genome::new(Partition::singletons(0), buffer),
                ))
            })
            .collect();
        let costs = self.evaluate_candidates(&mut candidates);
        for (g, candidate) in genomes.iter_mut().zip(candidates) {
            *g = candidate.genome;
        }
        costs
    }

    /// Repairs and evaluates a batch of [`EvalCandidate`]s in place on the
    /// engine's worker pool — the incremental-evaluation entry point used
    /// by the GA and SA.
    ///
    /// A candidate carrying an [`EvalHint`] is scored through the engine's
    /// delta path: the hint's [`PartitionDelta`] (extended with whatever
    /// the repair pipeline touches) names the dirty subgraphs, everything
    /// else reuses the parent memo's terms. Candidates without a hint go
    /// through the cache-composition path. Either way each candidate's
    /// `memo` output is its own breakdown, ready to seed its offspring's
    /// hints. Results are bit-identical across paths and thread counts
    /// (sample indices and trace points follow input order, and every
    /// scoring path computes the exact same pure per-subgraph terms).
    pub fn evaluate_candidates(&self, candidates: &mut [EvalCandidate]) -> Vec<Option<f64>> {
        let mut groups = [EvalGroup {
            candidates,
            objective: self.objective,
            funding: Funding::Context,
        }];
        self.evaluate_groups(&mut groups);
        groups[0].candidates.iter().map(|c| c.cost).collect()
    }

    /// Evaluates a driver's [`EvalBatch`] — every chunk of every candidate
    /// — as **one** engine dispatch, honoring each chunk's objective and
    /// funding overrides.
    ///
    /// Funding is drawn in chunk order, candidate order (a chunk whose
    /// budget runs dry leaves its remaining candidates unfunded and moves
    /// on to the next chunk, whose own budget may still have capacity).
    /// Trace points follow that same funding order, so interleaved
    /// sub-searches sharing one dispatch stay bit-identical at any thread
    /// count.
    pub fn evaluate_chunks(&self, batch: &mut EvalBatch) {
        let mut groups: Vec<EvalGroup<'_>> = batch
            .chunks
            .iter_mut()
            .map(|chunk| {
                let crate::driver::EvalChunk {
                    candidates,
                    objective,
                    budget,
                    reservation,
                } = chunk;
                EvalGroup {
                    candidates,
                    objective: objective.unwrap_or(self.objective),
                    funding: match (reservation, budget) {
                        (Some(reservation), _) => Funding::Reservation(reservation),
                        (None, Some(budget)) => Funding::Budget(budget),
                        (None, None) => Funding::Context,
                    },
                }
            })
            .collect();
        self.evaluate_groups(&mut groups);
    }

    /// The shared grouped evaluation core: fund in group/input order, run
    /// every funded candidate in one pool dispatch, record trace points in
    /// funding order.
    fn evaluate_groups(&self, groups: &mut [EvalGroup<'_>]) {
        // A quarantined batch aborts the step family: once a worker panic
        // was caught, refuse further funding so the caller unwinds with
        // budget accounting and trace still consistent.
        if self.fault_abort().is_some() {
            return;
        }
        // Injected budget exhaustion: revoke the pool *before* funding,
        // so this batch degrades exactly like a naturally dry budget
        // (unfunded candidates, no trace points, no stranded samples).
        if self.faults.should_inject(FaultSite::BudgetRevoke) {
            self.budget.revoke();
            self.faults.log().note_budget_revocation();
        }
        // Pin sample indices to input order before any worker runs.
        let mut funded_per_group = Vec::with_capacity(groups.len());
        let mut samples = Vec::new();
        for group in groups.iter_mut() {
            let mut funded = 0usize;
            for _ in 0..group.candidates.len() {
                let sample = match &mut group.funding {
                    Funding::Context => self.budget.try_consume(),
                    Funding::Budget(budget) => budget.try_consume(),
                    Funding::Reservation(reservation) => reservation.take(),
                };
                match sample {
                    Some(sample) => {
                        samples.push(sample);
                        funded += 1;
                    }
                    None => break,
                }
            }
            funded_per_group.push(funded);
        }
        if samples.is_empty() {
            return;
        }
        // Budget consumption gauge: the root pool's position after this
        // batch's funding (slices/reservations all draw from it).
        if let Some(gauge) = self.engine.telemetry().gauge("search.budget.used") {
            gauge.set(self.budget.used());
        }
        let mut jobs: Vec<(Mutex<&mut EvalCandidate>, Objective, u64)> =
            Vec::with_capacity(samples.len());
        {
            let mut sample_iter = samples.iter();
            for (group, &funded) in groups.iter_mut().zip(&funded_per_group) {
                let objective = group.objective;
                for candidate in group.candidates.iter_mut().take(funded) {
                    jobs.push((
                        Mutex::new(candidate),
                        objective,
                        // cocco-audit: allow(R1) samples holds exactly sum(funded_per_group) entries by construction above
                        *sample_iter.next().unwrap(),
                    ));
                }
            }
        }
        // Per-job fault draws happen here, in the serial funding-order
        // section, so injection points are a pure function of the plan's
        // seed and the funding sequence — bit-identical at any thread
        // count. The disabled-plan hot path allocates nothing.
        let injections: Option<Vec<(bool, bool)>> = if self.faults.is_enabled() {
            Some(
                (0..jobs.len())
                    .map(|_| {
                        (
                            self.faults.should_inject(FaultSite::EvalError),
                            self.faults.should_inject(FaultSite::WorkerPanic),
                        )
                    })
                    .collect(),
            )
        } else {
            None
        };
        let results: Vec<Mutex<Option<TracePoint>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        let dispatched = if let Some(injections) = injections {
            // Fault-injection arm: the one-phase dispatch shape the fault
            // matrix was validated against — every funded job (repair,
            // optional injected failure, scoring with immediate cache
            // publication) runs on the pool.
            self.engine.try_dispatch(jobs.len(), |i| {
                let (eval_error, worker_panic) = injections[i];
                if worker_panic {
                    panic!("cocco-faults: injected worker panic");
                }
                let (slot, objective, sample) = &jobs[i];
                let candidate: &mut EvalCandidate = &mut slot.lock().unwrap();
                let (parent_memo, delta, buffer) = self.take_hint_and_repair(candidate);
                if eval_error {
                    // Injected transient evaluator failure: the first
                    // attempt's result is discarded and the job re-scores.
                    // Scoring is a pure function of its inputs, so the retry
                    // below is bit-identical to the fault-free run.
                    let _ = self.engine.score_partition(
                        self.evaluator,
                        &candidate.genome.partition,
                        &buffer,
                        self.options,
                        parent_memo.as_deref().map(|memo| (memo, &delta)),
                    );
                    self.faults.log().note_eval_rescore();
                }
                // score_partition materializes the member lists into the
                // worker's scratch slot (a flat layout arena on the default
                // arm) — no per-candidate `subgraphs()` allocation — and
                // takes the delta path itself whenever the hint is usable.
                let (scored, memo) = self.engine.score_partition(
                    self.evaluator,
                    &candidate.genome.partition,
                    &buffer,
                    self.options,
                    parent_memo.as_deref().map(|memo| (memo, &delta)),
                );
                self.finish_scored(&results, i, *objective, *sample, candidate, scored, memo);
            })
        } else if self.engine.config().prefilter {
            // Hit prefilter, phase A — serial, in funding order: repair
            // and probe the L0/shared cache hierarchy before any pool
            // hand-off, so cache hits never pay dispatch. Timed into the
            // engine's batch wall clock: this is work that used to run
            // inside `dispatch`.
            struct PendingJob {
                idx: usize,
                prepared: PreparedEval,
                memo: Option<Arc<EvalMemo>>,
            }
            let sw = Stopwatch::start();
            let mut misses: Vec<Mutex<Option<PendingJob>>> = Vec::new();
            for (i, (slot, objective, sample)) in jobs.iter().enumerate() {
                let candidate: &mut EvalCandidate = &mut slot.lock().unwrap();
                let (parent_memo, delta, buffer) = self.take_hint_and_repair(candidate);
                match self.engine.prepare_partition(
                    self.evaluator,
                    &candidate.genome.partition,
                    &buffer,
                    self.options,
                    parent_memo.as_deref().map(|memo| (memo, &delta)),
                ) {
                    PartitionProbe::Hit(scored, memo) => {
                        self.finish_scored(
                            &results, i, *objective, *sample, candidate, scored, memo,
                        );
                    }
                    PartitionProbe::Miss(prepared) => misses.push(Mutex::new(Some(PendingJob {
                        idx: i,
                        prepared,
                        memo: parent_memo,
                    }))),
                }
            }
            self.engine.record_wall(sw.elapsed());
            if misses.is_empty() {
                Ok(())
            } else {
                // Phase B: only genuine misses reach the pool (chunked
                // and adaptively scheduled by the engine). Results and
                // staged cache entries key on the funding-order index
                // `idx`, so worker scheduling stays invisible.
                self.engine.try_dispatch(misses.len(), |j| {
                    let pending = misses[j]
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .take();
                    // cocco-audit: allow(R1) each pending job is taken exactly once, by its own dispatch index
                    let pending = pending.expect("each miss dispatched once");
                    let PendingJob {
                        idx,
                        prepared,
                        memo,
                    } = pending;
                    let (slot, objective, sample) = &jobs[idx];
                    let candidate: &mut EvalCandidate = &mut slot.lock().unwrap();
                    let buffer = candidate.genome.buffer;
                    let (scored, memo_out) = self.engine.score_prepared(
                        idx as u64,
                        self.evaluator,
                        &candidate.genome.partition,
                        &buffer,
                        self.options,
                        memo.as_deref(),
                        prepared,
                    );
                    self.finish_scored(
                        &results, idx, *objective, *sample, candidate, scored, memo_out,
                    );
                })
            }
        } else {
            // Prefilter disabled (reference arm): one-phase dispatch like
            // the fault arm, but with funding-order deferred publication,
            // so the shared cache's insertion history still matches the
            // prefiltered pipeline's.
            self.engine.try_dispatch(jobs.len(), |i| {
                let (slot, objective, sample) = &jobs[i];
                let candidate: &mut EvalCandidate = &mut slot.lock().unwrap();
                let (parent_memo, delta, buffer) = self.take_hint_and_repair(candidate);
                let (scored, memo) = self.engine.score_partition_deferred(
                    i as u64,
                    self.evaluator,
                    &candidate.genome.partition,
                    &buffer,
                    self.options,
                    parent_memo.as_deref().map(|memo| (memo, &delta)),
                );
                self.finish_scored(&results, i, *objective, *sample, candidate, scored, memo);
            })
        };
        if let Err(panic) = dispatched {
            // Discard every funded candidate uniformly (some may have
            // finished scoring, but keeping them would make results
            // depend on worker scheduling). Consuming `jobs` here also
            // releases its borrows so the refund pass can walk `groups`.
            for (slot, _, _) in jobs {
                let candidate = slot
                    .into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                candidate.cost = None;
                candidate.memo = None;
                candidate.hint = None;
            }
            self.quarantine_batch(panic.message, groups, &funded_per_group);
            return;
        }
        // Record trace points in funding (= sample) order.
        for slot in &results {
            // cocco-audit: allow(R1) the engine ran one job per slot; an empty slot means the dispatch itself is broken
            let point = slot.lock().unwrap().take().expect("every funded job ran");
            self.record_traced(point);
        }
    }

    /// The per-candidate evaluation prologue: consume the incremental
    /// hint, extend its delta with repair-induced changes, and repair the
    /// genome in place. Pure per candidate — safe both in the serial
    /// prefilter section and inside pool workers.
    fn take_hint_and_repair(
        &self,
        candidate: &mut EvalCandidate,
    ) -> (Option<Arc<EvalMemo>>, PartitionDelta, BufferConfig) {
        let buffer = candidate.genome.buffer;
        let (parent_memo, mut delta) = match candidate.hint.take() {
            Some(hint) => (Some(hint.memo), hint.delta),
            None => (None, PartitionDelta::all(self.graph.len())),
        };
        candidate.genome.partition = self.repair_with_delta(
            std::mem::replace(&mut candidate.genome.partition, Partition::singletons(0)),
            &buffer,
            &mut delta,
        );
        (parent_memo, delta, buffer)
    }

    /// The per-candidate evaluation epilogue: store the memo and cost on
    /// the candidate and park its trace point in `results[i]` (recorded
    /// in funding order after the batch completes).
    #[allow(clippy::too_many_arguments)]
    fn finish_scored(
        &self,
        results: &[Mutex<Option<TracePoint>>],
        i: usize,
        objective: Objective,
        sample: u64,
        candidate: &mut EvalCandidate,
        scored: ScoredEval,
        memo: Option<Arc<EvalMemo>>,
    ) {
        candidate.memo = memo;
        if scored.error {
            self.trace.record_infeasible_error();
        }
        let cost = scored.cost(objective.metric, objective.alpha);
        candidate.cost = Some(cost);
        *results[i].lock().unwrap() = Some(TracePoint {
            sample,
            cost,
            buffer_bytes: candidate.genome.buffer.total_bytes(),
            metric_value: scored.metric(objective.metric),
        });
    }

    /// Recovery path for a worker panic caught mid-dispatch (candidates
    /// already uniformly discarded by the caller): refund every funded
    /// sample to its funding source so no budget is stranded, record no
    /// trace points, and latch the abort so the driver loop unwinds with
    /// best-so-far. Runs serially after the pool delivered the panic, so
    /// the recovery itself is deterministic.
    fn quarantine_batch(
        &self,
        message: String,
        groups: &mut [EvalGroup<'_>],
        funded_per_group: &[usize],
    ) {
        let mut refunded = 0u64;
        for (group, &funded) in groups.iter_mut().zip(funded_per_group) {
            let n = funded as u64;
            if n == 0 {
                continue;
            }
            match &mut group.funding {
                Funding::Context => self.budget.refund(n),
                Funding::Budget(budget) => budget.refund(n),
                Funding::Reservation(reservation) => reservation.refund(n),
            }
            refunded += n;
        }
        let log = self.faults.log();
        log.note_quarantined_batch();
        log.note_refunded_samples(refunded);
        self.engine.telemetry().emit("recovery", || {
            vec![
                ("kind", "quarantined_batch".into()),
                ("refunded_samples", refunded.into()),
            ]
        });
        *self
            .abort
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(message);
    }

    /// Records a trace point, emitting a `search.improvement` event when
    /// its cost beats the best this context family has seen. Runs in the
    /// serial funding-order sections only, so the event order is
    /// deterministic; with telemetry disabled it is exactly
    /// `trace.record`.
    fn record_traced(&self, point: TracePoint) {
        let telemetry = self.engine.telemetry();
        if telemetry.is_enabled()
            && point.cost < f64::from_bits(self.best_seen.load(Ordering::Relaxed))
        {
            self.best_seen
                .store(point.cost.to_bits(), Ordering::Relaxed);
            telemetry.emit("search.improvement", || {
                vec![
                    ("sample", point.sample.into()),
                    ("cost", point.cost.into()),
                    ("buffer_bytes", point.buffer_bytes.into()),
                ]
            });
        }
        self.trace.record(point);
    }

    /// Evaluates an already-valid genome (no repair), consuming one budget
    /// sample.
    pub fn evaluate_valid(&self, genome: &Genome) -> Option<f64> {
        let sample = self.budget.try_consume()?;
        let (scored, _) = self.engine.score_partition(
            self.evaluator,
            &genome.partition,
            &genome.buffer,
            self.options,
            None,
        );
        if scored.error {
            self.trace.record_infeasible_error();
        }
        let cost = scored.cost(self.objective.metric, self.objective.alpha);
        self.record_traced(TracePoint {
            sample,
            cost,
            buffer_bytes: genome.buffer.total_bytes(),
            metric_value: scored.metric(self.objective.metric),
        });
        Some(cost)
    }

    /// The additive Formula-1 term of a single subgraph under `buffer`
    /// (`None` when it does not fit). Used by the greedy, DP and
    /// enumeration baselines; does not consume budget, but shares the
    /// engine's memoization cache.
    pub fn subgraph_cost(&self, members: &[NodeId], buffer: &BufferConfig) -> Option<f64> {
        if !self.fits(members, buffer) {
            return None;
        }
        // score_single borrows `members` directly — no owned partition is
        // allocated in this (greedy/DP/enumeration) hot loop.
        let scored = self
            .engine
            .score_single(self.evaluator, members, buffer, self.options);
        if scored.error {
            self.trace.record_infeasible_error();
            return None;
        }
        Some(scored.metric(self.objective.metric))
    }

    /// The full objective cost of a valid partition under `buffer`, without
    /// consuming budget (used to score deterministic baseline outputs).
    pub fn partition_cost(&self, partition: &Partition, buffer: &BufferConfig) -> f64 {
        let (scored, _) =
            self.engine
                .score_partition(self.evaluator, partition, buffer, self.options, None);
        if scored.error {
            self.trace.record_infeasible_error();
        }
        scored.cost(self.objective.metric, self.objective.alpha)
    }
}

// Batch evaluation shares the context across the engine's workers.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<SearchContext<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_sim::{AcceleratorConfig, CostMetric};

    fn context<'a>(
        graph: &'a Graph,
        evaluator: &'a Evaluator<'a>,
        budget: u64,
    ) -> SearchContext<'a> {
        SearchContext::new(
            graph,
            evaluator,
            BufferSpace::fixed(BufferConfig::shared(1 << 20)),
            Objective::partition_only(CostMetric::Ema),
            budget,
        )
    }

    #[test]
    fn evaluate_consumes_budget_and_traces() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 2);
        let mut genome = Genome::new(
            Partition::singletons(g.len()),
            BufferConfig::shared(1 << 20),
        );
        assert!(ctx.evaluate(&mut genome).is_some());
        assert!(ctx.evaluate(&mut genome).is_some());
        assert!(ctx.evaluate(&mut genome).is_none());
        assert_eq!(ctx.trace().len(), 2);
        assert_eq!(ctx.budget().used(), 2);
        // The repeated evaluation hit the engine cache.
        assert!(ctx.engine().stats().cache_hits >= 1);
    }

    #[test]
    fn evaluate_repairs_invalid_genomes() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 10);
        // Cyclic quotient assignment.
        let mut genome = Genome::new(
            Partition::from_assignment(vec![0, 0, 0, 1, 0]),
            BufferConfig::shared(1 << 20),
        );
        let cost = ctx.evaluate(&mut genome).unwrap();
        assert!(cost.is_finite());
        assert!(genome.partition.validate(&g).is_ok());
    }

    #[test]
    fn batch_preserves_order_and_funds_prefix() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 3);
        let mut genomes: Vec<Genome> = (0..5)
            .map(|_| {
                Genome::new(
                    Partition::singletons(g.len()),
                    BufferConfig::shared(1 << 20),
                )
            })
            .collect();
        let costs = ctx.evaluate_batch(&mut genomes);
        assert_eq!(costs.len(), 5);
        assert!(costs[..3].iter().all(Option::is_some));
        assert!(costs[3..].iter().all(Option::is_none));
        assert_eq!(ctx.budget().used(), 3);
        assert_eq!(ctx.trace().len(), 3);
        // Trace points carry consecutive input-order samples.
        let samples: Vec<u64> = ctx.trace().points().iter().map(|p| p.sample).collect();
        assert_eq!(samples, vec![0, 1, 2]);
    }

    #[test]
    fn batch_matches_serial_at_any_thread_count() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let run = |threads: u32| {
            let ctx = context(&g, &eval, 64).with_engine(EngineConfig::with_threads(threads));
            let mut genomes: Vec<Genome> = (0..64)
                .map(|i| {
                    Genome::new(
                        Partition::connected_groups(&g, 2 + i % 7),
                        BufferConfig::shared(1 << 20),
                    )
                })
                .collect();
            let costs = ctx.evaluate_batch(&mut genomes);
            (costs, genomes, ctx.trace().points())
        };
        let serial = run(1);
        for threads in [2, 4] {
            let parallel = run(threads);
            assert_eq!(serial.0, parallel.0, "costs differ at {threads} threads");
            assert_eq!(serial.1, parallel.1, "genomes differ at {threads} threads");
            assert_eq!(serial.2, parallel.2, "traces differ at {threads} threads");
        }
    }

    #[test]
    fn telemetry_observes_searches_without_perturbing_them() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let run = |telemetry: Option<&Telemetry>| {
            let ctx = context(&g, &eval, 32);
            let ctx = match telemetry {
                Some(t) => ctx.with_engine_telemetry(EngineConfig::with_threads(2), t),
                None => ctx.with_engine(EngineConfig::with_threads(2)),
            };
            let mut genomes: Vec<Genome> = (0..32)
                .map(|i| {
                    Genome::new(
                        Partition::connected_groups(&g, 2 + i % 5),
                        BufferConfig::shared(1 << 20),
                    )
                })
                .collect();
            let costs = ctx.evaluate_batch(&mut genomes);
            (costs, ctx.trace().points())
        };
        let telemetry = cocco_telemetry::Telemetry::enabled();
        let observed = run(Some(&telemetry));
        let plain = run(None);
        assert_eq!(observed, plain, "telemetry must not change results");

        // Improvement events carry strictly decreasing costs.
        let improvements: Vec<f64> = telemetry
            .events()
            .iter()
            .filter(|e| e.name == "search.improvement")
            .map(|e| match &e.fields[1].1 {
                cocco_telemetry::EventValue::F64(c) => *c,
                other => panic!("cost field holds {other:?}"),
            })
            .collect();
        assert!(!improvements.is_empty());
        assert!(improvements.windows(2).all(|w| w[1] < w[0]));

        // Budget gauge tracked the pool; dispatch fed the batch histogram.
        let snap = telemetry.snapshot();
        assert_eq!(snap.gauge("search.budget.used"), 32);
        let batches = snap.histogram("engine.batch.latency_ns").unwrap();
        assert!(batches.count >= 1);
    }

    #[test]
    fn subgraph_cost_matches_metric() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 10);
        let members: Vec<NodeId> = g.node_ids().collect();
        let cost = ctx
            .subgraph_cost(&members, &BufferConfig::shared(1 << 20))
            .unwrap();
        let stats = eval.subgraph_stats(&members).unwrap();
        assert_eq!(cost, stats.ema_bytes() as f64);
        assert_eq!(ctx.budget().used(), 0, "analytic helper must be free");
    }

    #[test]
    fn injected_eval_errors_rescore_bit_identically() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let genomes = || -> Vec<Genome> {
            (0..24)
                .map(|i| {
                    Genome::new(
                        Partition::connected_groups(&g, 2 + i % 5),
                        BufferConfig::shared(1 << 20),
                    )
                })
                .collect()
        };
        let plain_ctx = context(&g, &eval, 24);
        let mut plain_genomes = genomes();
        let plain = (
            plain_ctx.evaluate_batch(&mut plain_genomes),
            plain_ctx.trace().points(),
        );
        let rates = cocco_faults::FaultRates::none().with(FaultSite::EvalError, 0.5);
        let faulty_ctx = context(&g, &eval, 24).with_faults(FaultPlan::seeded(7, rates));
        let mut faulty_genomes = genomes();
        let faulty = (
            faulty_ctx.evaluate_batch(&mut faulty_genomes),
            faulty_ctx.trace().points(),
        );
        assert_eq!(
            plain, faulty,
            "transient eval errors must not change results"
        );
        assert_eq!(plain_genomes, faulty_genomes);
        assert!(faulty_ctx.faults().log().eval_rescores() > 0);
        assert!(faulty_ctx.fault_abort().is_none());
    }

    #[test]
    fn worker_panic_quarantines_batch_and_refunds_budget() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        for threads in [1, 2] {
            let rates = cocco_faults::FaultRates::none().with(FaultSite::WorkerPanic, 1.0);
            let ctx = context(&g, &eval, 16)
                .with_engine(EngineConfig::with_threads(threads))
                .with_faults(FaultPlan::seeded(3, rates));
            let mut genomes: Vec<Genome> = (0..4)
                .map(|_| {
                    Genome::new(
                        Partition::singletons(g.len()),
                        BufferConfig::shared(1 << 20),
                    )
                })
                .collect();
            let costs = ctx.evaluate_batch(&mut genomes);
            assert!(
                costs.iter().all(Option::is_none),
                "quarantine discards uniformly"
            );
            // Every funded sample was refunded — nothing stranded, and the
            // trace-length invariant holds.
            assert_eq!(ctx.budget().used(), 0);
            assert_eq!(ctx.trace().len(), 0);
            let log = ctx.faults().log();
            assert_eq!(log.quarantined_batches(), 1);
            assert_eq!(log.refunded_samples(), 4);
            let message = ctx.fault_abort().expect("abort latched");
            assert!(message.contains("injected worker panic"), "{message}");
            // Aborted contexts refuse further funding instead of running.
            let mut more = genomes.clone();
            assert!(ctx.evaluate_batch(&mut more).iter().all(Option::is_none));
            assert_eq!(ctx.budget().used(), 0);
        }
    }

    #[test]
    fn injected_budget_revocation_degrades_like_exhaustion() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let rates = cocco_faults::FaultRates::none().with(FaultSite::BudgetRevoke, 1.0);
        let ctx = context(&g, &eval, 100).with_faults(FaultPlan::seeded(5, rates));
        let mut genomes: Vec<Genome> = (0..3)
            .map(|_| {
                Genome::new(
                    Partition::singletons(g.len()),
                    BufferConfig::shared(1 << 20),
                )
            })
            .collect();
        let costs = ctx.evaluate_batch(&mut genomes);
        assert!(
            costs.iter().all(Option::is_none),
            "revoked budget funds nothing"
        );
        assert!(ctx.budget().is_revoked());
        assert_eq!(ctx.budget().remaining(), 0);
        assert_eq!(ctx.trace().len() as u64, ctx.budget().used());
        assert_eq!(ctx.faults().log().budget_revocations(), 1);
        assert!(ctx.fault_abort().is_none(), "revocation is not an abort");
    }

    #[test]
    fn subgraph_cost_rejects_oversized() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let ctx = context(&g, &eval, 10);
        let members: Vec<NodeId> = g.node_ids().collect();
        assert!(ctx
            .subgraph_cost(&members, &BufferConfig::shared(64))
            .is_none());
    }
}
