//! Search results and the common searcher interface.

use crate::context::SearchContext;
use crate::genome::Genome;
use serde::{Deserialize, Serialize};

/// Result of one search run.
///
/// Serializes (infinite costs included — they round-trip exactly), so a
/// best-so-far outcome can travel inside a
/// [`DriverState`](crate::DriverState) checkpoint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The best genome found (repaired, canonical), if any evaluation
    /// produced a finite cost.
    pub best: Option<Genome>,
    /// Cost of the best genome (infinite when nothing fit).
    pub best_cost: f64,
    /// Budget samples consumed by this run.
    pub samples: u64,
    /// `false` when the method gave up before exploring its whole space
    /// (e.g. enumeration hitting its state budget — the paper's "cannot
    /// complete within a reasonable time").
    pub completed: bool,
}

impl SearchOutcome {
    /// An outcome carrying no solution.
    pub fn empty() -> Self {
        Self {
            best: None,
            best_cost: f64::INFINITY,
            samples: 0,
            completed: true,
        }
    }

    /// Folds another candidate into this outcome, keeping the lower cost.
    pub fn consider(&mut self, genome: Genome, cost: f64) {
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best = Some(genome);
        }
    }
}

/// Common interface of every search method.
pub trait Searcher {
    /// A short display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Runs the search against `ctx`, drawing from its budget and
    /// recording its trace.
    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_partition::Partition;
    use cocco_sim::BufferConfig;

    #[test]
    fn consider_keeps_minimum() {
        let mut o = SearchOutcome::empty();
        let g = |c| Genome::new(Partition::singletons(3), BufferConfig::shared(c));
        o.consider(g(1), 5.0);
        o.consider(g(2), 9.0);
        assert_eq!(o.best_cost, 5.0);
        assert_eq!(o.best.as_ref().unwrap().buffer.total_bytes(), 1);
        o.consider(g(3), 2.0);
        assert_eq!(o.best_cost, 2.0);
    }
}
