//! Arena-path parity property test.
//!
//! Drives seeded random mutation / repair / crossover walks through
//! `SearchContext::evaluate_candidates` — the same operator shapes the GA
//! uses, including incremental [`EvalHint`]s — and asserts the flat-arena
//! hot path ([`EngineConfig::auto`]) is **bit-identical** to the reference
//! `Vec<Vec<NodeId>>` path ([`EngineConfig::without_arena`]) on every
//! observable output: the full cost stream, the final (repaired) genomes,
//! the recorded trace and the persisted cache snapshot — at 1 and 4
//! worker threads, on `resnet50` and `randwire-a`.

use cocco_engine::{CacheSnapshot, ChunkSize, EngineConfig, EvalMemo, PoolMode, TracePoint};
use cocco_graph::{Graph, NodeId};
use cocco_partition::{Partition, PartitionDelta};
use cocco_search::{BufferSpace, EvalCandidate, EvalHint, Genome, Objective, SearchContext};
use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const POP: usize = 6;
const ROUNDS: usize = 5;
const GROUPS: u32 = 10;
const BUFFER: BufferConfig = BufferConfig::Shared { total: 2 << 20 };

/// Everything a walk observes; two walks are "bit-identical" iff these
/// compare equal.
struct WalkResult {
    costs: Vec<Option<f64>>,
    genomes: Vec<Genome>,
    trace: Vec<TracePoint>,
    snapshot: CacheSnapshot,
}

/// One seeded mutation/repair/crossover walk under an explicit engine
/// arm. The RNG drives genome construction only — it is consumed
/// identically on every arm, so any divergence comes from evaluation.
fn walk(model: &Graph, config: EngineConfig) -> WalkResult {
    let evaluator = Evaluator::new(model, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        model,
        &evaluator,
        BufferSpace::fixed(BUFFER),
        Objective::partition_only(CostMetric::Ema),
        100_000,
    )
    .with_engine(config);
    let ids: Vec<NodeId> = model.node_ids().collect();
    let mut rng = StdRng::seed_from_u64(0xC0CC0);
    let mut genomes: Vec<Genome> = (0..POP)
        .map(|_| {
            let assignment: Vec<u32> = (0..model.len()).map(|_| rng.gen_range(0..GROUPS)).collect();
            Genome::new(Partition::from_assignment(assignment), BUFFER)
        })
        .collect();
    let mut memos: Vec<Option<Arc<EvalMemo>>> = vec![None; POP];
    let mut costs = Vec::new();
    for _ in 0..ROUNDS {
        let mut candidates: Vec<EvalCandidate> = (0..POP)
            .map(|i| match rng.gen_range(0..3u32) {
                0 => {
                    // Move-node mutation with the GA's member-set delta
                    // discipline: donor and receiver subgraphs are fully
                    // touched, so unmarked terms are reusable.
                    let mut child = genomes[i].clone();
                    let mut delta = PartitionDelta::clean(model.len());
                    for _ in 0..rng.gen_range(1..4u32) {
                        let node = ids[rng.gen_range(0..ids.len())];
                        let target = child
                            .partition
                            .subgraph_of(ids[rng.gen_range(0..ids.len())]);
                        delta.touch_subgraph(&child.partition, child.partition.subgraph_of(node));
                        delta.touch_subgraph(&child.partition, target);
                        delta.touch(node);
                        child.partition.assign(node, target);
                    }
                    let hint = memos[i].clone().map(|memo| EvalHint { memo, delta });
                    EvalCandidate::with_hint(child, hint)
                }
                1 => {
                    // Single-point assignment crossover; the delta is the
                    // honest fingerprint diff against the parent memo.
                    let j = rng.gen_range(0..POP);
                    let cut = rng.gen_range(0..=model.len());
                    let a = genomes[i].partition.assignment();
                    let b = genomes[j].partition.assignment();
                    let mut assignment = a[..cut].to_vec();
                    assignment.extend_from_slice(&b[cut..]);
                    let child = Genome::new(Partition::from_assignment(assignment), BUFFER);
                    let hint = memos[i].clone().map(|memo| {
                        let delta = memo.fingerprints().delta_against(&child.partition);
                        EvalHint { memo, delta }
                    });
                    EvalCandidate::with_hint(child, hint)
                }
                // Re-evaluation without a hint: the cache-composition
                // path (an exact roll-up hit after round one).
                _ => EvalCandidate::new(genomes[i].clone()),
            })
            .collect();
        costs.extend(ctx.evaluate_candidates(&mut candidates));
        for (i, candidate) in candidates.into_iter().enumerate() {
            genomes[i] = candidate.genome;
            memos[i] = candidate.memo;
        }
    }
    let stats = ctx.engine().stats();
    if config.arena {
        assert_eq!(
            stats.hot_allocs,
            0,
            "arena arm recorded hot-path allocations at {} threads",
            config.resolved_threads()
        );
    }
    assert_eq!(
        stats.key_allocs, 0,
        "cache probes must build zero per-probe keys"
    );
    assert_eq!(
        stats.stats_canonicalize_fallbacks, 0,
        "engine-fed member lists must already be sorted"
    );
    WalkResult {
        costs,
        genomes,
        trace: ctx.trace().points(),
        snapshot: ctx.engine().cache().snapshot(),
    }
}

/// The scale-out arm grid at one thread count: every layer of the
/// contention-free pipeline — hit prefilter, worker-local L0 caches,
/// adaptive inline scheduling, chunked dispatch — toggled off one at a
/// time (and all at once), plus both pool lifecycles and the
/// reference-view arm. Seeded walks must be bit-identical across all of
/// them.
fn arm_grid(threads: u32) -> Vec<(&'static str, EngineConfig)> {
    let base = EngineConfig::with_threads(threads);
    vec![
        ("default", base),
        ("reference-view", base.without_arena()),
        ("no-prefilter", base.without_prefilter()),
        ("no-l0", base.without_l0()),
        ("no-adaptive", base.with_parallel_threshold(0)),
        ("chunk-1", base.with_chunk(ChunkSize::Fixed(1))),
        ("scoped-pool", base.with_pool(PoolMode::Scoped)),
        (
            "all-off",
            base.without_prefilter()
                .without_l0()
                .with_parallel_threshold(0)
                .with_chunk(ChunkSize::Fixed(1))
                .with_pool(PoolMode::Scoped),
        ),
    ]
}

fn assert_walks_identical(model: &Graph) {
    // The reference arm: serial, nested-view, every scale-out layer off —
    // the plainest possible evaluation pipeline.
    let reference = walk(
        model,
        EngineConfig::serial()
            .without_arena()
            .without_prefilter()
            .without_l0()
            .with_parallel_threshold(0)
            .with_chunk(ChunkSize::Fixed(1)),
    );
    assert_eq!(
        reference.costs.len(),
        POP * ROUNDS,
        "budget must never run out in this walk"
    );
    for threads in [1u32, 4] {
        for (arm, config) in arm_grid(threads) {
            let other = walk(model, config);
            assert_eq!(
                reference.costs,
                other.costs,
                "{}: cost stream diverged ({arm}, {threads} threads)",
                model.name()
            );
            assert_eq!(
                reference.genomes,
                other.genomes,
                "{}: repaired genomes diverged ({arm}, {threads} threads)",
                model.name()
            );
            assert_eq!(
                reference.trace,
                other.trace,
                "{}: traces diverged ({arm}, {threads} threads)",
                model.name()
            );
            assert_eq!(
                reference.snapshot,
                other.snapshot,
                "{}: persisted cache snapshots diverged ({arm}, {threads} threads)",
                model.name()
            );
        }
    }
}

#[test]
fn arena_walks_are_bit_identical_on_resnet50() {
    assert_walks_identical(&cocco_graph::models::resnet50());
}

#[test]
fn arena_walks_are_bit_identical_on_randwire_a() {
    assert_walks_identical(&cocco_graph::models::randwire_a());
}
