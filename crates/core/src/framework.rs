//! The end-to-end framework driver (paper Figure 10).

use crate::error::{Error, SalvagedBest};
use cocco_engine::{CacheSnapshot, EngineConfig, EngineStats};
use cocco_faults::{FaultPlan, FaultSite, HealthReport};
use cocco_graph::Graph;
use cocco_search::{
    drive_step, BufferSpace, GaConfig, Objective, SearchContext, SearchMethod, SearchOutcome,
    SearchSnapshot, Searcher, Trace, CHECKPOINT_VERSION,
};
use cocco_sim::{AcceleratorConfig, EvalOptions, Evaluator, PartitionReport};
use cocco_telemetry::{Phase, Stopwatch, Telemetry};
use serde::{Deserialize, Serialize};

pub use cocco_search::Genome;

/// Result of one co-exploration run: the recommended memory configuration,
/// the graph-execution strategy (partition), its performance evaluation and
/// the full evaluation trace.
///
/// Serializes to JSON (and back) via `serde_json`, so explorations can be
/// archived, diffed and post-processed outside the process that ran them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Exploration {
    /// The best genome: partition + buffer configuration.
    pub genome: Genome,
    /// Full performance report of the best genome.
    pub report: PartitionReport,
    /// Objective cost of the best genome.
    pub cost: f64,
    /// Evaluations spent.
    pub samples: u64,
    /// `false` when the method gave up before exploring its whole space
    /// (e.g. enumeration hitting its state budget — the paper's "cannot
    /// complete within a reasonable time").
    pub completed: bool,
    /// Evaluator errors the search pipeline folded into "does not
    /// fit"/infinite cost. Non-zero on a well-formed run means a
    /// configuration bug, not a genuinely infeasible design point.
    pub infeasible_errors: u64,
    /// Evaluation-engine statistics: scoring requests, cache hits,
    /// batch wall time and worker-thread count.
    pub stats: EngineStats,
    /// Every recorded evaluation, for convergence (Fig. 12) and
    /// distribution (Fig. 13) studies.
    pub trace: Trace,
    /// Set when writing the [`Cocco::with_cache_file`] snapshot failed
    /// after the exploration itself succeeded. Persistence is a warm-start
    /// optimization, so a save failure never discards the result — it is
    /// reported here instead. (A *load* failure, i.e. an unusable existing
    /// cache file, still fails [`Cocco::explore`] up front.)
    pub cache_save_error: Option<String>,
    /// Set when writing a [`Cocco::with_checkpoint_file`] snapshot failed
    /// mid-run. Checkpointing is resilience, not correctness: a save
    /// failure never aborts the exploration — the last failure is
    /// reported here. (An unusable *existing* checkpoint still fails
    /// [`Cocco::explore`] up front with [`Error::Checkpoint`].)
    pub checkpoint_save_error: Option<String>,
    /// Fault and recovery accounting for the run: injected faults (all
    /// zero unless a [`Cocco::with_faults`] plan was armed) next to the
    /// recovery work the pipeline actually performed — eval re-scores,
    /// quarantines, refunds, save retries, snapshot salvage.
    pub health: HealthReport,
}

impl Exploration {
    /// `true` when the run completed but carries visible scar tissue: a
    /// revoked budget, a quarantined batch, an exhausted save retry, or a
    /// failed cache/checkpoint save. Transparent recoveries (successful
    /// save retries, eval re-scores, snapshot salvage) do not count —
    /// they changed nothing the caller can observe besides counters.
    pub fn is_degraded(&self) -> bool {
        self.health.is_degraded()
            || self.cache_save_error.is_some()
            || self.checkpoint_save_error.is_some()
    }
}

/// High-level driver: model + hardware description + memory design space +
/// search method in, recommended configuration + schedule + evaluation out.
///
/// Any search method of the registry runs through the same [`Searcher`]
/// path ([`with_method`](Cocco::with_method)); the defaults reproduce the
/// paper's headline setup (genetic co-exploration, shared-buffer space,
/// energy-capacity objective). Drop down to [`SearchContext`] and the
/// individual searchers for custom experiment harnesses.
///
/// # Examples
///
/// ```
/// use cocco::prelude::*;
///
/// # fn main() -> Result<(), cocco::Error> {
/// let model = cocco::graph::models::chain(4);
/// // Default method: the paper's genetic co-exploration.
/// let result = Cocco::new().with_budget(500).explore(&model)?;
/// assert!(result.genome.partition.validate(&model).is_ok());
///
/// // Any registered method runs through the same path.
/// let sa = Cocco::new()
///     .with_method(SearchMethod::sa())
///     .with_budget(500)
///     .explore(&model)?;
/// assert!(sa.cost.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Cocco {
    accel: AcceleratorConfig,
    space: BufferSpace,
    objective: Objective,
    options: EvalOptions,
    budget: u64,
    method: SearchMethod,
    seed: Option<u64>,
    engine: EngineConfig,
    cache_file: Option<std::path::PathBuf>,
    checkpoint_file: Option<std::path::PathBuf>,
    checkpoint_every: u64,
    telemetry: Telemetry,
    faults: FaultPlan,
}

impl Cocco {
    /// Creates a driver with the paper's defaults: the 2 TOPS SIMBA-like
    /// core, the shared-buffer space, the energy-capacity objective
    /// (α = 0.002), a 50 000-sample budget and the genetic co-exploration
    /// engine.
    pub fn new() -> Self {
        Self {
            accel: AcceleratorConfig::default(),
            space: BufferSpace::paper_shared(),
            objective: Objective::paper_energy_capacity(),
            options: EvalOptions::default(),
            budget: 50_000,
            method: SearchMethod::default(),
            seed: None,
            engine: EngineConfig::default(),
            cache_file: None,
            checkpoint_file: None,
            checkpoint_every: 16,
            telemetry: Telemetry::disabled(),
            faults: FaultPlan::disabled(),
        }
    }

    /// Sets the accelerator configuration.
    pub fn with_accelerator(mut self, accel: AcceleratorConfig) -> Self {
        self.accel = accel;
        self
    }

    /// Sets the memory design space.
    pub fn with_space(mut self, space: BufferSpace) -> Self {
        self.space = space;
        self
    }

    /// Sets the objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets multi-core / batch evaluation options.
    pub fn with_options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the sample budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Configures the evaluation engine (worker threads). Results are
    /// identical at any thread count; this is a wall-clock knob.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the search method (with its typed configuration).
    pub fn with_method(mut self, method: SearchMethod) -> Self {
        self.method = method;
        self
    }

    /// Attaches a telemetry sink: the engine, evaluator and search loop
    /// report spans, metrics and per-phase wall time through it, and the
    /// caller reads them back off its own clone of the handle after
    /// [`explore`](Cocco::explore). **Observation only** — a seeded run
    /// is bit-identical with telemetry enabled, disabled, or shared, at
    /// any thread count.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Arms a seeded fault-injection plan: evaluation, checkpoint and
    /// cache-snapshot seams then draw from the plan's RNG and exercise
    /// the recovery paths ([`Error::WorkerPanic`] quarantine, bounded
    /// save retries, snapshot salvage, budget revocation). The default
    /// disabled plan never draws and perturbs nothing; keep a clone of
    /// the handle to read [`FaultPlan::health`] after the run — the same
    /// report lands on [`Exploration::health`].
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Persists the evaluation cache across runs: before exploring, the
    /// engine warm-starts from `path` (if it exists); afterwards the
    /// merged cache is written back.
    ///
    /// Entries are keyed by the evaluator's `(model, accelerator config)`
    /// fingerprint, so changing the accelerator configuration — or the
    /// model — invalidates previous entries instead of reusing them;
    /// entries of *other* fingerprints in the file are preserved on save,
    /// so one file can serve a whole experiment sweep (saves are atomic:
    /// temp file + rename). Warm-starting never changes results (cached
    /// values are exact), only which evaluations are recomputed. An
    /// unusable *existing* file fails [`explore`](Cocco::explore) with
    /// [`Error::CacheFile`]; a failed *save* is reported non-fatally on
    /// [`Exploration::cache_save_error`].
    pub fn with_cache_file(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.cache_file = Some(path.into());
        self
    }

    /// Makes the exploration checkpointable/resumable: the search runs
    /// step-driven (the method's [`SearchDriver`](cocco_search::SearchDriver)),
    /// a [`SearchSnapshot`] is written to `path` every
    /// [`with_checkpoint_every`](Cocco::with_checkpoint_every) steps
    /// (atomically: temp file + rename), and an existing snapshot at
    /// `path` resumes the interrupted run — **bit-identically**: the
    /// resumed exploration's best cost, genome and trace equal the
    /// uninterrupted run's, at any thread count.
    ///
    /// A snapshot is only accepted when its method (full configuration),
    /// budget and evaluator fingerprint — the same `(model, accelerator)`
    /// identity the engine's cache keys embed — match this session;
    /// anything else fails with [`Error::Checkpoint`]. On successful
    /// completion the checkpoint file is removed (it has served its
    /// purpose; the returned [`Exploration`] carries the results).
    pub fn with_checkpoint_file(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_file = Some(path.into());
        self
    }

    /// Sets how many driver steps elapse between checkpoint saves
    /// (default 16; clamped to at least 1). A GA step is one generation,
    /// so the default saves every ~16 generations. Saves are additionally
    /// floored by a small wall-clock interval, so fast analytic steps
    /// (greedy merges, DP rows, enumeration levels) never spend a
    /// meaningful fraction of the run serializing snapshots.
    pub fn with_checkpoint_every(mut self, steps: u64) -> Self {
        self.checkpoint_every = steps.max(1);
        self
    }

    /// The currently selected method.
    pub fn method(&self) -> &SearchMethod {
        &self.method
    }

    /// Re-seeds the search RNG (a no-op for the deterministic baselines).
    ///
    /// The seed is applied when [`explore`](Cocco::explore) runs, so it
    /// survives a later [`with_method`](Cocco::with_method) /
    /// [`with_ga`](Cocco::with_ga) call and overrides any seed already in
    /// the method's configuration.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Selects the genetic engine with an explicit configuration
    /// (shorthand for `with_method(SearchMethod::Ga(ga))`).
    pub fn with_ga(mut self, ga: GaConfig) -> Self {
        self.method = SearchMethod::Ga(ga);
        self
    }

    /// Runs the co-exploration on `model`.
    ///
    /// # Errors
    ///
    /// * [`Error::IncompatibleObjective`] when the selected method cannot
    ///   run under the configured objective (two-step needs Formula 2);
    /// * [`Error::NoFeasibleSolution`] when no candidate buffer can execute
    ///   the model at all;
    /// * [`Error::SearchIncomplete`] when the method gave up before
    ///   exploring its space (e.g. enumeration over its state limits)
    ///   without finding any solution;
    /// * [`Error::Sim`] when the final evaluation of the best genome fails
    ///   (internal error — the wrapped [`SimError`](cocco_sim::SimError)
    ///   is preserved as the source).
    pub fn explore(&self, model: &Graph) -> Result<Exploration, Error> {
        let setup_phase = self.telemetry.phase(Phase::Setup);
        let method = match self.seed {
            Some(seed) => self.method.clone().with_seed(seed),
            None => self.method.clone(),
        };
        if method.requires_formula2() && self.objective.alpha.is_none() {
            return Err(Error::IncompatibleObjective {
                method: method.name(),
                requirement: "a Formula-2 objective (co-exploration with an α)",
            });
        }
        let evaluator = Evaluator::new(model, self.accel.clone()).with_telemetry(&self.telemetry);
        let ctx = SearchContext::new(model, &evaluator, self.space, self.objective, self.budget)
            .with_options(self.options)
            .with_engine_telemetry(self.engine, &self.telemetry)
            .with_faults(self.faults.clone());
        drop(setup_phase);
        // Warm-start from the cache file: restore this evaluator's entries,
        // carry everyone else's through to the save below.
        let mut foreign = CacheSnapshot::default();
        if let Some(path) = &self.cache_file {
            if path.exists() {
                let _cache_phase = self.telemetry.phase(Phase::Cache);
                let snapshot =
                    CacheSnapshot::load_with(path, &self.faults).map_err(|e| Error::CacheFile {
                        path: path.display().to_string(),
                        reason: e.to_string(),
                    })?;
                let (mine, rest) = snapshot.split_fingerprint(evaluator.fingerprint());
                ctx.engine().cache().restore(&mine);
                foreign = rest;
            }
        }
        let mut checkpoint_save_error = None;
        let search_phase = self.telemetry.phase(Phase::Search);
        let outcome = match &self.checkpoint_file {
            Some(path) => self.run_checkpointed(
                &method,
                &ctx,
                evaluator.fingerprint(),
                path,
                &mut checkpoint_save_error,
            )?,
            None => method.run(&ctx),
        };
        drop(search_phase);
        // Publish the engine's absorbed counters/gauges into the shared
        // sink (the engine dies with this call frame, the caller's
        // telemetry handle lives on), and credit the accumulated dispatch
        // wall time to the Eval phase (a subset of Search; the difference
        // is driver time). Raising counters to the engine's absolute value
        // keeps already-registered sink counters untouched.
        if let Some(registry) = self.telemetry.registry() {
            let metrics = ctx.engine().metrics();
            for counter in &metrics.counters {
                let handle = registry.counter(&counter.name);
                let current = handle.get();
                if counter.value > current {
                    handle.add(counter.value - current);
                }
            }
            for gauge in &metrics.gauges {
                registry.gauge(&gauge.name).set(gauge.value);
            }
            self.telemetry
                .add_phase_time(Phase::Eval, metrics.gauge("engine.batch.wall_ns"));
        }
        // Publish fault/recovery accounting as `engine.faults.*` counters.
        // Raise-to-absolute, like the engine counters above, so repeated
        // explorations against one telemetry sink and one plan handle
        // never double-count.
        if let (Some(registry), true) = (self.telemetry.registry(), self.faults.is_enabled()) {
            let log = self.faults.log();
            let publish = |name: String, value: u64| {
                let handle = registry.counter(&name);
                let current = handle.get();
                if value > current {
                    handle.add(value - current);
                }
            };
            for site in FaultSite::ALL {
                publish(
                    format!("engine.faults.injected.{}", site.name()),
                    self.faults.injected(site),
                );
            }
            publish("engine.faults.eval_rescores".into(), log.eval_rescores());
            publish(
                "engine.faults.quarantined_batches".into(),
                log.quarantined_batches(),
            );
            publish(
                "engine.faults.refunded_samples".into(),
                log.refunded_samples(),
            );
            publish(
                "engine.faults.budget_revocations".into(),
                log.budget_revocations(),
            );
            publish("engine.faults.save_retries".into(), log.save_retries());
            publish("engine.faults.save_failures".into(), log.save_failures());
            publish(
                "engine.faults.salvaged_entries".into(),
                log.salvaged_entries(),
            );
            publish(
                "engine.faults.dropped_entries".into(),
                log.dropped_entries(),
            );
        }
        // Persistence is an optimization: a failed save must not discard a
        // completed exploration, so it is reported on the result instead.
        let mut cache_save_error = None;
        if let Some(path) = &self.cache_file {
            let _cache_phase = self.telemetry.phase(Phase::Cache);
            let mut snapshot = ctx.engine().cache().snapshot();
            snapshot.merge(foreign);
            // Concurrent explorations can share one sweep-wide file; fold
            // in whatever landed on disk since our load so the last rename
            // doesn't drop another run's entries (best effort — merging of
            // identical keys is value-identical, so order cannot corrupt).
            if let Ok(on_disk) = CacheSnapshot::load_with(path, &self.faults) {
                snapshot.merge(on_disk);
            }
            if let Err(e) = snapshot.save_with(path, &self.faults) {
                cache_save_error = Some(format!("{}: {e}", path.display()));
            }
        }
        // A worker panic quarantined a batch and latched the abort. The
        // cache file above was still written (warm-start survives), the
        // engine/budget/trace are consistent (quarantined samples were
        // refunded), and whatever the run had already found is salvaged
        // onto the structured error.
        if let Some(message) = ctx.fault_abort() {
            let salvage = outcome.best.map(|genome| {
                Box::new(SalvagedBest {
                    genome,
                    cost: outcome.best_cost,
                    samples: outcome.samples,
                })
            });
            return Err(Error::WorkerPanic { message, salvage });
        }
        let genome = outcome.best.ok_or(if outcome.completed {
            Error::NoFeasibleSolution
        } else {
            // The paper's "cannot complete within a reasonable time":
            // distinguish giving up from proving infeasibility.
            Error::SearchIncomplete {
                method: method.name(),
            }
        })?;
        let report = evaluator.eval_partition(
            &genome.partition.subgraphs(),
            &genome.buffer,
            self.options,
        )?;
        Ok(Exploration {
            genome,
            report,
            cost: outcome.best_cost,
            samples: outcome.samples,
            completed: outcome.completed,
            infeasible_errors: ctx.trace().infeasible_errors(),
            stats: ctx.engine().stats(),
            trace: ctx.trace().clone(),
            cache_save_error,
            checkpoint_save_error,
            health: self.faults.health(),
        })
    }

    /// The step-driven, checkpointed search loop: resume from an existing
    /// snapshot (after verifying its coordinates), then step the driver,
    /// saving a snapshot every `checkpoint_every` steps. Save failures are
    /// non-fatal (reported via `save_error`); the checkpoint is removed on
    /// successful completion.
    fn run_checkpointed(
        &self,
        method: &SearchMethod,
        ctx: &SearchContext<'_>,
        fingerprint: u64,
        path: &std::path::Path,
        save_error: &mut Option<String>,
    ) -> Result<SearchOutcome, Error> {
        let checkpoint_error = |reason: String| Error::Checkpoint {
            path: path.display().to_string(),
            reason,
        };
        let mut driver = if path.exists() {
            let text =
                std::fs::read_to_string(path).map_err(|e| checkpoint_error(e.to_string()))?;
            let snapshot: SearchSnapshot =
                serde_json::from_str(&text).map_err(|e| checkpoint_error(e.to_string()))?;
            if snapshot.version != CHECKPOINT_VERSION {
                return Err(checkpoint_error(format!(
                    "snapshot version {} (this build reads {})",
                    snapshot.version, CHECKPOINT_VERSION
                )));
            }
            if snapshot.fingerprint != fingerprint {
                return Err(checkpoint_error(
                    "evaluator fingerprint mismatch (the model or accelerator configuration \
                     changed since the checkpoint was written)"
                        .to_string(),
                ));
            }
            if snapshot.method != *method {
                return Err(checkpoint_error(
                    "method/configuration mismatch (the checkpoint was written by a different \
                     search setup)"
                        .to_string(),
                ));
            }
            if snapshot.budget_limit != self.budget {
                return Err(checkpoint_error(format!(
                    "budget mismatch (checkpoint ran under {} samples, this session under {})",
                    snapshot.budget_limit, self.budget
                )));
            }
            snapshot.replay_into(ctx);
            method
                .driver_from_state(&snapshot.driver)
                .ok_or_else(|| checkpoint_error("driver state does not match the method".into()))?
        } else {
            method.driver()
        };
        let mut steps = 0u64;
        // Snapshot serialization can be expensive for state-heavy drivers
        // (the enumeration's downset tables), and analytic methods step
        // very fast — so the step cadence is additionally floored by a
        // wall-clock interval, bounding checkpoint overhead to a small
        // fraction of the run regardless of step granularity.
        const MIN_SAVE_INTERVAL: std::time::Duration = std::time::Duration::from_millis(100);
        // The throttle gates how often snapshots hit disk, never what the
        // search does; `Stopwatch` is the sanctioned timing authority.
        let mut last_save = Stopwatch::start();
        while drive_step(&mut *driver, ctx) {
            steps += 1;
            if steps.is_multiple_of(self.checkpoint_every)
                && last_save.elapsed() >= MIN_SAVE_INTERVAL
            {
                let serialize_phase = self.telemetry.phase(Phase::Serialize);
                let snapshot = SearchSnapshot::capture(method, &*driver, ctx);
                if let Err(e) = save_checkpoint(&snapshot, path, &self.faults) {
                    *save_error = Some(format!("{}: {e}", path.display()));
                }
                drop(serialize_phase);
                last_save = Stopwatch::start();
            }
        }
        if ctx.fault_abort().is_some() {
            // A worker panic stopped the run mid-step. The last periodic
            // snapshot — captured between steps, the only place a
            // snapshot is valid — stays on disk so the interrupted
            // search can resume; the caller gets the structured
            // `Error::WorkerPanic` from `explore`.
            return Ok(driver.outcome());
        }
        // Completed: the checkpoint has served its purpose.
        // cocco-audit: allow(R2) checkpoint cleanup is best-effort; a leftover file only re-resumes an already-finished run
        std::fs::remove_file(path).ok();
        Ok(driver.outcome())
    }
}

/// Writes a checkpoint atomically with bounded retry (unique temp file +
/// rename via [`cocco_faults::atomic_save`]), so an interrupted save
/// never leaves a torn snapshot — or a stale temp file — behind.
fn save_checkpoint(
    snapshot: &SearchSnapshot,
    path: &std::path::Path,
    faults: &FaultPlan,
) -> std::io::Result<()> {
    let text = serde_json::to_string(snapshot)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    cocco_faults::atomic_save(path, &text, faults)
}

impl Default for Cocco {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoccoError;
    use cocco_sim::BufferConfig;

    #[test]
    fn explore_produces_consistent_result() {
        let model = cocco_graph::models::diamond();
        let result = Cocco::new()
            .with_budget(800)
            .with_seed(3)
            .explore(&model)
            .unwrap();
        assert!(result.cost.is_finite());
        assert!(result.report.fits);
        assert!(result.samples <= 800);
        assert!(result.genome.partition.validate(&model).is_ok());
        assert_eq!(result.trace.len() as u64, result.samples);
    }

    #[test]
    fn infeasible_space_is_an_error() {
        let model = cocco_graph::models::chain(3);
        let err = Cocco::new()
            .with_space(BufferSpace::fixed(BufferConfig::shared(8)))
            .with_budget(50)
            .explore(&model)
            .unwrap_err();
        assert_eq!(err, CoccoError::NoFeasibleSolution);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = cocco_graph::models::diamond();
        let a = Cocco::new()
            .with_budget(300)
            .with_seed(9)
            .explore(&model)
            .unwrap();
        let b = Cocco::new()
            .with_budget(300)
            .with_seed(9)
            .explore(&model)
            .unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.genome.buffer, b.genome.buffer);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn seed_survives_later_method_selection() {
        let model = cocco_graph::models::diamond();
        let seed_first = Cocco::new()
            .with_seed(42)
            .with_method(SearchMethod::sa())
            .with_budget(200)
            .explore(&model)
            .unwrap();
        let seed_last = Cocco::new()
            .with_method(SearchMethod::sa())
            .with_seed(42)
            .with_budget(200)
            .explore(&model)
            .unwrap();
        assert_eq!(seed_first.cost, seed_last.cost);
        assert_eq!(seed_first.genome, seed_last.genome);
        // And the explicit seed differs from the default-seed run.
        let default_seed = Cocco::new()
            .with_method(SearchMethod::sa())
            .with_budget(200)
            .explore(&model)
            .unwrap();
        assert_ne!(seed_first.trace, default_seed.trace);
    }

    #[test]
    fn identical_results_at_any_thread_count() {
        let model = cocco_graph::models::googlenet();
        let run = |threads: u32| {
            Cocco::new()
                .with_budget(600)
                .with_seed(13)
                .with_engine(EngineConfig::with_threads(threads))
                .explore(&model)
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.cost, parallel.cost);
        assert_eq!(serial.genome, parallel.genome);
        assert_eq!(serial.trace, parallel.trace);
        assert_eq!(serial.stats.evals, parallel.stats.evals);
        assert_eq!(parallel.stats.threads, 4);
    }

    #[test]
    fn standard_ga_run_reports_engine_stats() {
        let model = cocco_graph::models::diamond();
        let result = Cocco::new()
            .with_budget(800)
            .with_seed(3)
            .explore(&model)
            .unwrap();
        assert!(
            result.stats.cache_hits > 0,
            "a GA population re-proposes genomes; some evaluations must hit the cache"
        );
        assert!(result.stats.evals >= result.samples);
        assert_eq!(
            result.infeasible_errors, 0,
            "a well-formed run must not hide evaluator errors"
        );
    }

    #[test]
    fn cache_file_warm_starts_and_is_invalidated_by_config_change() {
        let dir = std::env::temp_dir().join(format!("cocco-facade-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("explore-cache.json");
        let model = cocco_graph::models::googlenet();
        let session = || {
            Cocco::new()
                .with_budget(300)
                .with_seed(5)
                .with_cache_file(&path)
        };
        let cold = session().explore(&model).unwrap();
        assert!(path.exists(), "explore must write the cache file");
        let warm = session().explore(&model).unwrap();
        // Warm-starting changes hit counts, never results.
        assert_eq!(cold.cost, warm.cost);
        assert_eq!(cold.genome, warm.genome);
        assert_eq!(cold.trace, warm.trace);
        assert!(
            warm.stats.hit_rate() > cold.stats.hit_rate(),
            "second run must answer more requests from the persisted cache \
             (cold {:.3} vs warm {:.3})",
            cold.stats.hit_rate(),
            warm.stats.hit_rate()
        );
        assert_eq!(
            warm.stats.subgraph_scorings, 0,
            "a fully warm-started run must not re-score any subgraph"
        );

        // A different accelerator config has a different fingerprint: no
        // entry of the warm file may be reused (hits can only come from the
        // run's own evaluations), and both fingerprints' entries coexist in
        // the file afterwards.
        let mut accel = AcceleratorConfig::default();
        accel.mac_cols *= 2;
        let other = session().with_accelerator(accel).explore(&model).unwrap();
        assert!(
            other.stats.subgraph_scorings > 0,
            "a different accelerator fingerprint must force fresh scorings \
             instead of reusing the stale file"
        );
        let snapshot = cocco_engine::CacheSnapshot::load(&path).unwrap();
        let fingerprints: std::collections::HashSet<u64> = snapshot
            .partition
            .iter()
            .map(|(k, _)| k.fingerprint)
            .collect();
        assert_eq!(fingerprints.len(), 2, "both configs' entries persist");

        // A corrupt cache file is a reported error, not silent garbage.
        std::fs::write(&path, "{broken").unwrap();
        let err = session().explore(&model).unwrap_err();
        assert!(matches!(err, Error::CacheFile { .. }));

        // An unwritable save path does not discard a completed run: the
        // exploration succeeds and the failure is reported on the result.
        let unwritable = dir.join("no-such-dir").join("cache.json");
        let result = Cocco::new()
            .with_budget(200)
            .with_seed(5)
            .with_cache_file(&unwritable)
            .explore(&model)
            .unwrap();
        assert!(
            result.cache_save_error.is_some(),
            "a failed save must be reported"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("cocco-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt.json");
        let model = cocco_graph::models::googlenet();
        let plain = Cocco::new()
            .with_budget(400)
            .with_seed(5)
            .explore(&model)
            .unwrap();
        let checkpointed = Cocco::new()
            .with_budget(400)
            .with_seed(5)
            .with_checkpoint_file(&path)
            .with_checkpoint_every(1)
            .explore(&model)
            .unwrap();
        assert_eq!(plain.cost, checkpointed.cost);
        assert_eq!(plain.genome, checkpointed.genome);
        assert_eq!(plain.trace, checkpointed.trace);
        assert_eq!(plain.samples, checkpointed.samples);
        assert!(!path.exists(), "a completed run must remove its checkpoint");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_interrupted_checkpoint_is_bit_identical() {
        use cocco_search::{SearchSnapshot, Step};
        let dir = std::env::temp_dir().join(format!("cocco-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("interrupted.ckpt.json");
        let model = cocco_graph::models::googlenet();
        let method = SearchMethod::ga().with_seed(9);
        let budget = 500;

        // Simulate an interruption: drive the same search the facade
        // would run for a few steps, then snapshot and abandon it.
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &model,
            &evaluator,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            budget,
        );
        let mut driver = method.driver();
        for _ in 0..2 {
            match driver.next_batch(&ctx) {
                Step::Evaluate(mut batch) => {
                    ctx.evaluate_chunks(&mut batch);
                    driver.absorb(&ctx, batch);
                }
                Step::Continue => {}
                Step::Done => break,
            }
        }
        let snapshot = SearchSnapshot::capture(&method, &*driver, &ctx);
        std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
        drop(driver);

        // The facade resumes the interrupted run; the result must equal
        // the uninterrupted exploration bit for bit.
        let session = || Cocco::new().with_budget(budget).with_seed(9);
        let resumed = session()
            .with_checkpoint_file(&path)
            .explore(&model)
            .unwrap();
        let uninterrupted = session().explore(&model).unwrap();
        assert_eq!(resumed.cost, uninterrupted.cost);
        assert_eq!(resumed.genome, uninterrupted.genome);
        assert_eq!(resumed.trace, uninterrupted.trace);
        assert_eq!(resumed.samples, uninterrupted.samples);

        // Mismatched coordinates are rejected, not silently restarted.
        std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
        let err = session()
            .with_method(SearchMethod::sa())
            .with_checkpoint_file(&path)
            .explore(&model)
            .unwrap_err();
        assert!(matches!(err, Error::Checkpoint { .. }), "{err}");
        let err = session()
            .with_budget(budget + 1)
            .with_checkpoint_file(&path)
            .explore(&model)
            .unwrap_err();
        assert!(matches!(err, Error::Checkpoint { .. }), "{err}");
        let err = session()
            .with_accelerator({
                let mut accel = AcceleratorConfig::default();
                accel.mac_cols *= 2;
                accel
            })
            .with_checkpoint_file(&path)
            .explore(&model)
            .unwrap_err();
        assert!(
            matches!(err, Error::Checkpoint { .. }),
            "fingerprint mismatch must be rejected: {err}"
        );
        // A corrupt checkpoint is a reported error.
        std::fs::write(&path, "{torn").unwrap();
        let err = session()
            .with_checkpoint_file(&path)
            .explore(&model)
            .unwrap_err();
        assert!(matches!(err, Error::Checkpoint { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_enabled_run_is_bit_identical_and_profiled() {
        let model = cocco_graph::models::googlenet();
        let telemetry = Telemetry::enabled();
        let session = || Cocco::new().with_budget(400).with_seed(11);
        let observed = session()
            .with_telemetry(telemetry.clone())
            .explore(&model)
            .unwrap();
        let plain = session().explore(&model).unwrap();
        assert_eq!(observed.cost, plain.cost);
        assert_eq!(observed.genome, plain.genome);
        assert_eq!(observed.trace, plain.trace);

        // The phase profile covers the lifecycle, with Eval ⊆ Search.
        let phases = telemetry.phases();
        assert!(phases.search_ms > 0.0);
        assert!(phases.eval_ms > 0.0);
        assert!(phases.eval_ms <= phases.search_ms);

        // Engine counters, step spans and improvement events all landed
        // in the one shared sink.
        let snap = telemetry.snapshot();
        assert!(snap.counter("engine.evals") > 0);
        assert!(snap.histogram("search.step_ns").unwrap().count > 0);
        assert!(snap.histogram("engine.batch.latency_ns").unwrap().count > 0);
        assert!(telemetry
            .events()
            .iter()
            .any(|e| e.name == "search.improvement"));
    }

    #[test]
    fn portfolio_explores_through_the_facade() {
        let model = cocco_graph::models::diamond();
        let result = Cocco::new()
            .with_method(SearchMethod::portfolio())
            .with_budget(600)
            .with_seed(4)
            .explore(&model)
            .unwrap();
        assert!(result.genome.partition.validate(&model).is_ok());
        assert!(result.cost.is_finite());
        assert!(result.samples <= 600);
    }

    #[test]
    fn two_step_without_alpha_is_rejected() {
        let model = cocco_graph::models::diamond();
        let err = Cocco::new()
            .with_method(SearchMethod::two_step())
            .with_objective(Objective::partition_only(cocco_sim::CostMetric::Ema))
            .with_budget(50)
            .explore(&model)
            .unwrap_err();
        assert!(matches!(err, Error::IncompatibleObjective { .. }));
    }

    #[test]
    fn every_method_explores_through_the_facade() {
        let model = cocco_graph::models::diamond();
        for method in SearchMethod::all() {
            let name = method.name();
            let result = Cocco::new()
                .with_method(method)
                .with_seed(5)
                .with_budget(400)
                .explore(&model)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                result.genome.partition.validate(&model).is_ok(),
                "{name} produced an invalid partition"
            );
            assert!(result.cost.is_finite(), "{name} found nothing finite");
        }
    }
}
