//! The end-to-end framework driver (paper Figure 10).

use cocco_graph::Graph;
use cocco_search::{
    BufferSpace, CoccoGa, GaConfig, Genome, Objective, SearchContext, Searcher,
};
use cocco_sim::{AcceleratorConfig, EvalOptions, Evaluator, PartitionReport};
use std::error::Error;
use std::fmt;

/// Error returned by [`Cocco::explore`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoccoError {
    /// No buffer configuration in the space could execute the model (some
    /// layer exceeds every candidate capacity).
    NoFeasibleSolution,
    /// The final evaluation of the best genome failed (internal error).
    Evaluation(String),
}

impl fmt::Display for CoccoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoccoError::NoFeasibleSolution => {
                write!(f, "no buffer configuration in the space can execute the model")
            }
            CoccoError::Evaluation(e) => write!(f, "final evaluation failed: {e}"),
        }
    }
}

impl Error for CoccoError {}

/// Result of one co-exploration run: the recommended memory configuration,
/// the graph-execution strategy (partition) and its performance evaluation.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The best genome: partition + buffer configuration.
    pub genome: Genome,
    /// Full performance report of the best genome.
    pub report: PartitionReport,
    /// Objective cost of the best genome.
    pub cost: f64,
    /// Evaluations spent.
    pub samples: u64,
}

/// High-level driver: model + hardware description + memory design space in,
/// recommended configuration + schedule + evaluation out.
///
/// Wraps [`Evaluator`], [`SearchContext`] and [`CoccoGa`]; drop down to
/// those types for baselines, traces or custom budgets.
///
/// # Examples
///
/// ```
/// use cocco::prelude::*;
///
/// # fn main() -> Result<(), cocco::CoccoError> {
/// let model = cocco::graph::models::chain(4);
/// let result = Cocco::new().with_budget(500).explore(&model)?;
/// assert!(result.genome.partition.validate(&model).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Cocco {
    accel: AcceleratorConfig,
    space: BufferSpace,
    objective: Objective,
    options: EvalOptions,
    budget: u64,
    ga: GaConfig,
}

impl Cocco {
    /// Creates a driver with the paper's defaults: the 2 TOPS SIMBA-like
    /// core, the shared-buffer space, the energy-capacity objective
    /// (α = 0.002) and a 50 000-sample budget.
    pub fn new() -> Self {
        Self {
            accel: AcceleratorConfig::default(),
            space: BufferSpace::paper_shared(),
            objective: Objective::paper_energy_capacity(),
            options: EvalOptions::default(),
            budget: 50_000,
            ga: GaConfig::default(),
        }
    }

    /// Sets the accelerator configuration.
    pub fn with_accelerator(mut self, accel: AcceleratorConfig) -> Self {
        self.accel = accel;
        self
    }

    /// Sets the memory design space.
    pub fn with_space(mut self, space: BufferSpace) -> Self {
        self.space = space;
        self
    }

    /// Sets the objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets multi-core / batch evaluation options.
    pub fn with_options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the sample budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the GA seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.ga.seed = seed;
        self
    }

    /// Overrides the full GA configuration.
    pub fn with_ga(mut self, ga: GaConfig) -> Self {
        self.ga = ga;
        self
    }

    /// Runs the co-exploration on `model`.
    ///
    /// # Errors
    ///
    /// Returns [`CoccoError::NoFeasibleSolution`] when no candidate buffer
    /// can execute the model at all.
    pub fn explore(&self, model: &Graph) -> Result<Exploration, CoccoError> {
        let evaluator = Evaluator::new(model, self.accel.clone());
        let ctx = SearchContext::new(model, &evaluator, self.space, self.objective, self.budget)
            .with_options(self.options);
        let outcome = CoccoGa::new(self.ga.clone()).run(&ctx);
        let genome = outcome.best.ok_or(CoccoError::NoFeasibleSolution)?;
        let report = evaluator
            .eval_partition(&genome.partition.subgraphs(), &genome.buffer, self.options)
            .map_err(|e| CoccoError::Evaluation(e.to_string()))?;
        Ok(Exploration {
            genome,
            report,
            cost: outcome.best_cost,
            samples: outcome.samples,
        })
    }
}

impl Default for Cocco {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_sim::BufferConfig;

    #[test]
    fn explore_produces_consistent_result() {
        let model = cocco_graph::models::diamond();
        let result = Cocco::new()
            .with_budget(800)
            .with_seed(3)
            .explore(&model)
            .unwrap();
        assert!(result.cost.is_finite());
        assert!(result.report.fits);
        assert!(result.samples <= 800);
        assert!(result.genome.partition.validate(&model).is_ok());
    }

    #[test]
    fn infeasible_space_is_an_error() {
        let model = cocco_graph::models::chain(3);
        let err = Cocco::new()
            .with_space(BufferSpace::fixed(BufferConfig::shared(8)))
            .with_budget(50)
            .explore(&model)
            .unwrap_err();
        assert_eq!(err, CoccoError::NoFeasibleSolution);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = cocco_graph::models::diamond();
        let a = Cocco::new().with_budget(300).with_seed(9).explore(&model).unwrap();
        let b = Cocco::new().with_budget(300).with_seed(9).explore(&model).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.genome.buffer, b.genome.buffer);
    }
}
