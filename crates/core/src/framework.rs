//! The end-to-end framework driver (paper Figure 10).

use crate::error::Error;
use cocco_engine::{EngineConfig, EngineStats};
use cocco_graph::Graph;
use cocco_search::{
    BufferSpace, GaConfig, Objective, SearchContext, SearchMethod, Searcher, Trace,
};
use cocco_sim::{AcceleratorConfig, EvalOptions, Evaluator, PartitionReport};
use serde::{Deserialize, Serialize};

pub use cocco_search::Genome;

/// Result of one co-exploration run: the recommended memory configuration,
/// the graph-execution strategy (partition), its performance evaluation and
/// the full evaluation trace.
///
/// Serializes to JSON (and back) via `serde_json`, so explorations can be
/// archived, diffed and post-processed outside the process that ran them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Exploration {
    /// The best genome: partition + buffer configuration.
    pub genome: Genome,
    /// Full performance report of the best genome.
    pub report: PartitionReport,
    /// Objective cost of the best genome.
    pub cost: f64,
    /// Evaluations spent.
    pub samples: u64,
    /// `false` when the method gave up before exploring its whole space
    /// (e.g. enumeration hitting its state budget — the paper's "cannot
    /// complete within a reasonable time").
    pub completed: bool,
    /// Evaluator errors the search pipeline folded into "does not
    /// fit"/infinite cost. Non-zero on a well-formed run means a
    /// configuration bug, not a genuinely infeasible design point.
    pub infeasible_errors: u64,
    /// Evaluation-engine statistics: scoring requests, cache hits,
    /// batch wall time and worker-thread count.
    pub stats: EngineStats,
    /// Every recorded evaluation, for convergence (Fig. 12) and
    /// distribution (Fig. 13) studies.
    pub trace: Trace,
}

/// High-level driver: model + hardware description + memory design space +
/// search method in, recommended configuration + schedule + evaluation out.
///
/// Any search method of the registry runs through the same [`Searcher`]
/// path ([`with_method`](Cocco::with_method)); the defaults reproduce the
/// paper's headline setup (genetic co-exploration, shared-buffer space,
/// energy-capacity objective). Drop down to [`SearchContext`] and the
/// individual searchers for custom experiment harnesses.
///
/// # Examples
///
/// ```
/// use cocco::prelude::*;
///
/// # fn main() -> Result<(), cocco::Error> {
/// let model = cocco::graph::models::chain(4);
/// // Default method: the paper's genetic co-exploration.
/// let result = Cocco::new().with_budget(500).explore(&model)?;
/// assert!(result.genome.partition.validate(&model).is_ok());
///
/// // Any registered method runs through the same path.
/// let sa = Cocco::new()
///     .with_method(SearchMethod::sa())
///     .with_budget(500)
///     .explore(&model)?;
/// assert!(sa.cost.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Cocco {
    accel: AcceleratorConfig,
    space: BufferSpace,
    objective: Objective,
    options: EvalOptions,
    budget: u64,
    method: SearchMethod,
    seed: Option<u64>,
    engine: EngineConfig,
}

impl Cocco {
    /// Creates a driver with the paper's defaults: the 2 TOPS SIMBA-like
    /// core, the shared-buffer space, the energy-capacity objective
    /// (α = 0.002), a 50 000-sample budget and the genetic co-exploration
    /// engine.
    pub fn new() -> Self {
        Self {
            accel: AcceleratorConfig::default(),
            space: BufferSpace::paper_shared(),
            objective: Objective::paper_energy_capacity(),
            options: EvalOptions::default(),
            budget: 50_000,
            method: SearchMethod::default(),
            seed: None,
            engine: EngineConfig::default(),
        }
    }

    /// Sets the accelerator configuration.
    pub fn with_accelerator(mut self, accel: AcceleratorConfig) -> Self {
        self.accel = accel;
        self
    }

    /// Sets the memory design space.
    pub fn with_space(mut self, space: BufferSpace) -> Self {
        self.space = space;
        self
    }

    /// Sets the objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets multi-core / batch evaluation options.
    pub fn with_options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the sample budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Configures the evaluation engine (worker threads). Results are
    /// identical at any thread count; this is a wall-clock knob.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the search method (with its typed configuration).
    pub fn with_method(mut self, method: SearchMethod) -> Self {
        self.method = method;
        self
    }

    /// The currently selected method.
    pub fn method(&self) -> &SearchMethod {
        &self.method
    }

    /// Re-seeds the search RNG (a no-op for the deterministic baselines).
    ///
    /// The seed is applied when [`explore`](Cocco::explore) runs, so it
    /// survives a later [`with_method`](Cocco::with_method) /
    /// [`with_ga`](Cocco::with_ga) call and overrides any seed already in
    /// the method's configuration.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Selects the genetic engine with an explicit configuration
    /// (shorthand for `with_method(SearchMethod::Ga(ga))`).
    pub fn with_ga(mut self, ga: GaConfig) -> Self {
        self.method = SearchMethod::Ga(ga);
        self
    }

    /// Runs the co-exploration on `model`.
    ///
    /// # Errors
    ///
    /// * [`Error::IncompatibleObjective`] when the selected method cannot
    ///   run under the configured objective (two-step needs Formula 2);
    /// * [`Error::NoFeasibleSolution`] when no candidate buffer can execute
    ///   the model at all;
    /// * [`Error::SearchIncomplete`] when the method gave up before
    ///   exploring its space (e.g. enumeration over its state limits)
    ///   without finding any solution;
    /// * [`Error::Sim`] when the final evaluation of the best genome fails
    ///   (internal error — the wrapped [`SimError`](cocco_sim::SimError)
    ///   is preserved as the source).
    pub fn explore(&self, model: &Graph) -> Result<Exploration, Error> {
        let method = match self.seed {
            Some(seed) => self.method.clone().with_seed(seed),
            None => self.method.clone(),
        };
        if method.requires_formula2() && self.objective.alpha.is_none() {
            return Err(Error::IncompatibleObjective {
                method: method.name(),
                requirement: "a Formula-2 objective (co-exploration with an α)",
            });
        }
        let evaluator = Evaluator::new(model, self.accel.clone());
        let ctx = SearchContext::new(model, &evaluator, self.space, self.objective, self.budget)
            .with_options(self.options)
            .with_engine(self.engine);
        let outcome = method.run(&ctx);
        let genome = outcome.best.ok_or(if outcome.completed {
            Error::NoFeasibleSolution
        } else {
            // The paper's "cannot complete within a reasonable time":
            // distinguish giving up from proving infeasibility.
            Error::SearchIncomplete {
                method: method.name(),
            }
        })?;
        let report = evaluator.eval_partition(
            &genome.partition.subgraphs(),
            &genome.buffer,
            self.options,
        )?;
        Ok(Exploration {
            genome,
            report,
            cost: outcome.best_cost,
            samples: outcome.samples,
            completed: outcome.completed,
            infeasible_errors: ctx.trace().infeasible_errors(),
            stats: ctx.engine().stats(),
            trace: ctx.trace().clone(),
        })
    }
}

impl Default for Cocco {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoccoError;
    use cocco_sim::BufferConfig;

    #[test]
    fn explore_produces_consistent_result() {
        let model = cocco_graph::models::diamond();
        let result = Cocco::new()
            .with_budget(800)
            .with_seed(3)
            .explore(&model)
            .unwrap();
        assert!(result.cost.is_finite());
        assert!(result.report.fits);
        assert!(result.samples <= 800);
        assert!(result.genome.partition.validate(&model).is_ok());
        assert_eq!(result.trace.len() as u64, result.samples);
    }

    #[test]
    fn infeasible_space_is_an_error() {
        let model = cocco_graph::models::chain(3);
        let err = Cocco::new()
            .with_space(BufferSpace::fixed(BufferConfig::shared(8)))
            .with_budget(50)
            .explore(&model)
            .unwrap_err();
        assert_eq!(err, CoccoError::NoFeasibleSolution);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = cocco_graph::models::diamond();
        let a = Cocco::new()
            .with_budget(300)
            .with_seed(9)
            .explore(&model)
            .unwrap();
        let b = Cocco::new()
            .with_budget(300)
            .with_seed(9)
            .explore(&model)
            .unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.genome.buffer, b.genome.buffer);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn seed_survives_later_method_selection() {
        let model = cocco_graph::models::diamond();
        let seed_first = Cocco::new()
            .with_seed(42)
            .with_method(SearchMethod::sa())
            .with_budget(200)
            .explore(&model)
            .unwrap();
        let seed_last = Cocco::new()
            .with_method(SearchMethod::sa())
            .with_seed(42)
            .with_budget(200)
            .explore(&model)
            .unwrap();
        assert_eq!(seed_first.cost, seed_last.cost);
        assert_eq!(seed_first.genome, seed_last.genome);
        // And the explicit seed differs from the default-seed run.
        let default_seed = Cocco::new()
            .with_method(SearchMethod::sa())
            .with_budget(200)
            .explore(&model)
            .unwrap();
        assert_ne!(seed_first.trace, default_seed.trace);
    }

    #[test]
    fn identical_results_at_any_thread_count() {
        let model = cocco_graph::models::googlenet();
        let run = |threads: u32| {
            Cocco::new()
                .with_budget(600)
                .with_seed(13)
                .with_engine(EngineConfig::with_threads(threads))
                .explore(&model)
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.cost, parallel.cost);
        assert_eq!(serial.genome, parallel.genome);
        assert_eq!(serial.trace, parallel.trace);
        assert_eq!(serial.stats.evals, parallel.stats.evals);
        assert_eq!(parallel.stats.threads, 4);
    }

    #[test]
    fn standard_ga_run_reports_engine_stats() {
        let model = cocco_graph::models::diamond();
        let result = Cocco::new()
            .with_budget(800)
            .with_seed(3)
            .explore(&model)
            .unwrap();
        assert!(
            result.stats.cache_hits > 0,
            "a GA population re-proposes genomes; some evaluations must hit the cache"
        );
        assert!(result.stats.evals >= result.samples);
        assert_eq!(
            result.infeasible_errors, 0,
            "a well-formed run must not hide evaluator errors"
        );
    }

    #[test]
    fn two_step_without_alpha_is_rejected() {
        let model = cocco_graph::models::diamond();
        let err = Cocco::new()
            .with_method(SearchMethod::two_step())
            .with_objective(Objective::partition_only(cocco_sim::CostMetric::Ema))
            .with_budget(50)
            .explore(&model)
            .unwrap_err();
        assert!(matches!(err, Error::IncompatibleObjective { .. }));
    }

    #[test]
    fn every_method_explores_through_the_facade() {
        let model = cocco_graph::models::diamond();
        for method in SearchMethod::all() {
            let name = method.name();
            let result = Cocco::new()
                .with_method(method)
                .with_seed(5)
                .with_budget(400)
                .explore(&model)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                result.genome.partition.validate(&model).is_ok(),
                "{name} produced an invalid partition"
            );
            assert!(result.cost.is_finite(), "{name} found nothing finite");
        }
    }
}
