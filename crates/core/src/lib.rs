//! **Cocco** — hardware-mapping co-exploration towards memory
//! capacity-communication optimization.
//!
//! This crate is the facade of a full reproduction of the ASPLOS'24 paper
//! by Tan, Zhu and Ma. It re-exports every subsystem and offers a
//! high-level driver ([`Cocco`]) that mirrors the framework of the paper's
//! Figure 10: feed it a model, a memory design space and a search method,
//! get back a recommended memory configuration, graph-execution strategy
//! and performance evaluation.
//!
//! # Subsystems
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `cocco-graph` | computation-graph IR + model zoo |
//! | [`tiling`] | `cocco-tiling` | consumption-centric execution flow (§3.1) |
//! | [`mem`] | `cocco-mem` | MAIN/SIDE regions, region manager, footprints (§3.2) |
//! | [`sim`] | `cocco-sim` | SIMBA-like NPU cost model (§5.1) |
//! | [`partition`] | `cocco-partition` | partitions, validity, repair (§4.1) |
//! | [`engine`] | `cocco-engine` | parallel, memoized evaluation engine |
//! | [`faults`] | `cocco-faults` | seeded fault injection + recovery accounting |
//! | [`search`] | `cocco-search` | method registry: GA + all baselines (§4.2-4.4) |
//! | [`telemetry`] | `cocco-telemetry` | spans, metrics, per-phase profiling (observation-only) |
//!
//! # Quickstart
//!
//! One exploration session, method-agnostic: pick a model and a memory
//! design space, select any method from the registry and read the
//! recommendation. Every fallible step returns the unified [`Error`].
//!
//! ```
//! use cocco::prelude::*;
//!
//! # fn main() -> Result<(), cocco::Error> {
//! let model = cocco::graph::models::diamond();
//! let exploration = Cocco::new()
//!     .with_space(BufferSpace::paper_shared())
//!     .with_objective(Objective::paper_energy_capacity())
//!     .with_method(SearchMethod::ga()) // or sa(), greedy(), depth_dp(), ...
//!     .with_budget(2_000)
//!     .with_seed(7)
//!     .explore(&model)?;
//! println!(
//!     "recommended buffer: {} KB, energy: {:.3} mJ ({} samples)",
//!     exploration.genome.buffer.total_bytes() >> 10,
//!     exploration.report.energy_mj(),
//!     exploration.samples,
//! );
//! // Results round-trip as JSON for archiving and post-processing.
//! let json = serde_json::to_string(&exploration).map_err(cocco::Error::Serde)?;
//! let back: Exploration = serde_json::from_str(&json)?;
//! assert_eq!(back.genome, exploration.genome);
//! # Ok(())
//! # }
//! ```

pub use cocco_engine as engine;
pub use cocco_faults as faults;
pub use cocco_graph as graph;
pub use cocco_mem as mem;
pub use cocco_partition as partition;
pub use cocco_search as search;
pub use cocco_sim as sim;
pub use cocco_telemetry as telemetry;
pub use cocco_tiling as tiling;

mod error;
mod framework;
pub mod prelude;

pub use error::{CoccoError, Error, SalvagedBest};
pub use framework::{Cocco, Exploration};
