//! Convenience re-exports for typical Cocco usage.
//!
//! # Examples
//!
//! ```
//! use cocco::prelude::*;
//!
//! let graph = cocco::graph::models::chain(2);
//! let evaluator = Evaluator::new(&graph, AcceleratorConfig::default());
//! assert_eq!(evaluator.config().peak_macs_per_cycle(), 1024);
//! ```

pub use crate::error::{CoccoError, Error, SalvagedBest};
pub use crate::framework::{Cocco, Exploration};
pub use cocco_engine::{
    CacheSnapshot, ChunkSize, Engine, EngineConfig, EngineStats, EvalMemo, PoolMode, SampleBudget,
    SampleReservation, ScoredEval, SubgraphScore, ThreadCount,
};
pub use cocco_faults::{FaultPlan, FaultRates, FaultSchedule, FaultSite, HealthReport};
pub use cocco_graph::{
    Dims2, Graph, GraphBuilder, Kernel, LayerOp, NodeId, NodeSetFp, TensorShape,
};
pub use cocco_partition::{
    repair, repair_with_delta, Partition, PartitionDelta, PartitionFingerprints, Quotient,
};
pub use cocco_search::{
    run_driver, BufferSpace, CapacitySampling, CoccoGa, DepthDp, DriverState, EvalBatch, EvalChunk,
    Exhaustive, GaConfig, Genome, GreedyFusion, Objective, Portfolio, PortfolioPolicy,
    SearchContext, SearchDriver, SearchMethod, SearchOutcome, SearchSnapshot, Searcher,
    SimulatedAnnealing, Step, Trace, TracePoint, TwoStep,
};
pub use cocco_sim::{
    AcceleratorConfig, BufferConfig, CapacityRange, CostMetric, EvalOptions, Evaluator,
    PartitionReport,
};
pub use cocco_telemetry::{MetricsSnapshot, Phase, PhaseSnapshot, Telemetry};
pub use cocco_tiling::{derive_scheme, ExecutionScheme, Mapper, MapperPolicy};
