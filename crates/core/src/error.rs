//! The unified error hierarchy of the Cocco framework.
//!
//! Every subsystem keeps its own precise error enum ([`GraphError`],
//! [`MemError`], [`PartitionError`], [`TilingError`], [`SimError`]); this
//! module folds them — plus the facade-level failure modes — into one
//! [`Error`] type with `From` conversions and `source()` chaining, so
//! application code can use a single `Result<_, cocco::Error>` across graph
//! construction, exploration and (de)serialization.
//!
//! # Examples
//!
//! ```
//! use cocco::prelude::*;
//!
//! fn build_and_explore() -> Result<Exploration, cocco::Error> {
//!     let mut b = GraphBuilder::new("two-layer");
//!     let input = b.input(TensorShape::new(16, 16, 8));
//!     let c1 = b.conv("c1", input, 8, Kernel::pointwise())?; // GraphError -> Error
//!     b.conv("c2", c1, 8, Kernel::pointwise())?;
//!     let model = b.finish()?;
//!     Cocco::new().with_budget(200).explore(&model) // CoccoError is Error
//! }
//! # build_and_explore().unwrap();
//! ```

use cocco_graph::GraphError;
use cocco_mem::MemError;
use cocco_partition::PartitionError;
use cocco_search::Genome;
use cocco_sim::SimError;
use cocco_tiling::TilingError;
use std::fmt;

/// The best feasible result a search had already found when a worker
/// panic forced it to stop — carried on [`Error::WorkerPanic`] so a
/// degraded run still hands its progress to the caller.
#[derive(Clone, Debug, PartialEq)]
pub struct SalvagedBest {
    /// The best genome found before the fault.
    pub genome: Genome,
    /// Its objective cost.
    pub cost: f64,
    /// Samples consumed by the interrupted run (quarantined samples were
    /// refunded and are not counted).
    pub samples: u64,
}

/// Any failure of the Cocco framework, from graph construction to
/// exploration to request/result (de)serialization.
///
/// The subsystem variants wrap their crate's error unchanged and expose it
/// through [`std::error::Error::source`], so callers can both match on the
/// broad category and drill into the precise cause.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Building or validating a computation graph failed.
    Graph(GraphError),
    /// Buffer-region allocation failed.
    Mem(MemError),
    /// A partition was structurally invalid.
    Partition(PartitionError),
    /// Deriving a subgraph execution scheme failed.
    Tiling(TilingError),
    /// Evaluating a partition failed.
    Sim(SimError),
    /// No buffer configuration in the space could execute the model (some
    /// layer exceeds every candidate capacity).
    NoFeasibleSolution,
    /// The method gave up before exploring its whole space — the paper's
    /// "cannot complete within a reasonable time" — without finding any
    /// solution, so infeasibility was *not* proven.
    SearchIncomplete {
        /// Display name of the method that gave up.
        method: &'static str,
    },
    /// The requested model is not in the zoo
    /// ([`cocco_graph::models::registry`]).
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
    },
    /// The selected search method cannot run under the configured
    /// objective (e.g. the two-step scheme requires Formula 2).
    IncompatibleObjective {
        /// Display name of the offending method.
        method: &'static str,
        /// What the method needs.
        requirement: &'static str,
    },
    /// A request or result failed to (de)serialize.
    Serde(serde::Error),
    /// Reading or writing a cross-run evaluation-cache file failed.
    CacheFile {
        /// The offending path.
        path: String,
        /// The underlying I/O or parse failure.
        reason: String,
    },
    /// A search checkpoint file was unusable: unreadable, malformed, or
    /// recorded under different coordinates (another method/configuration,
    /// budget, or evaluator fingerprint — i.e. model/accelerator).
    Checkpoint {
        /// The offending path.
        path: String,
        /// Why the checkpoint cannot resume this exploration.
        reason: String,
    },
    /// An evaluation worker panicked mid-dispatch. The batch was
    /// quarantined — its funded samples refunded, no trace points
    /// recorded — and the engine, budget and cache stay reusable. When
    /// the run had already found a feasible genome, the best-so-far is
    /// salvaged here; a checkpointed run also keeps its last snapshot on
    /// disk so the search can resume.
    WorkerPanic {
        /// The panic payload's message.
        message: String,
        /// Best-so-far at the time of the fault, if any was found.
        salvage: Option<Box<SalvagedBest>>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Graph(e) => write!(f, "graph construction failed: {e}"),
            Error::Mem(e) => write!(f, "buffer allocation failed: {e}"),
            Error::Partition(e) => write!(f, "invalid partition: {e}"),
            Error::Tiling(e) => write!(f, "tiling failed: {e}"),
            Error::Sim(e) => write!(f, "evaluation failed: {e}"),
            Error::NoFeasibleSolution => {
                write!(
                    f,
                    "no buffer configuration in the space can execute the model"
                )
            }
            Error::SearchIncomplete { method } => {
                write!(
                    f,
                    "method {method} hit its limits before finding a solution \
                     (infeasibility not proven)"
                )
            }
            Error::UnknownModel { name } => {
                write!(f, "unknown model `{name}` (see models::registry())")
            }
            Error::IncompatibleObjective {
                method,
                requirement,
            } => write!(f, "method {method} requires {requirement}"),
            Error::Serde(e) => write!(f, "serialization failed: {e}"),
            Error::CacheFile { path, reason } => {
                write!(f, "cache file `{path}` unusable: {reason}")
            }
            Error::Checkpoint { path, reason } => {
                write!(f, "checkpoint file `{path}` unusable: {reason}")
            }
            Error::WorkerPanic { message, salvage } => {
                write!(
                    f,
                    "evaluation worker panicked ({message}); batch quarantined"
                )?;
                if salvage.is_some() {
                    write!(f, ", best-so-far salvaged")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Mem(e) => Some(e),
            Error::Partition(e) => Some(e),
            Error::Tiling(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Serde(e) => Some(e),
            Error::NoFeasibleSolution
            | Error::SearchIncomplete { .. }
            | Error::UnknownModel { .. }
            | Error::IncompatibleObjective { .. }
            | Error::CacheFile { .. }
            | Error::Checkpoint { .. }
            | Error::WorkerPanic { .. } => None,
        }
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<MemError> for Error {
    fn from(e: MemError) -> Self {
        Error::Mem(e)
    }
}

impl From<PartitionError> for Error {
    fn from(e: PartitionError) -> Self {
        Error::Partition(e)
    }
}

impl From<TilingError> for Error {
    fn from(e: TilingError) -> Self {
        Error::Tiling(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Serde(e)
    }
}

/// The pre-unification name of [`Error`], kept so existing code and docs
/// keep compiling; new code should spell it `cocco::Error`.
pub type CoccoError = Error;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_preserve_sources() {
        let tiling = TilingError::EmptySubgraph;
        let sim: SimError = tiling.clone().into();
        let unified: Error = sim.clone().into();
        // Two-level chain: Error -> SimError -> TilingError.
        let level1 = unified.source().expect("Sim variant has a source");
        assert_eq!(level1.to_string(), sim.to_string());
        let level2 = level1.source().expect("SimError::Tiling has a source");
        assert_eq!(level2.to_string(), tiling.to_string());
    }

    #[test]
    fn every_subsystem_error_converts() {
        let cases: Vec<Error> = vec![
            GraphError::Empty.into(),
            MemError::ExceedsCapacity {
                needed: 2,
                capacity: 1,
            }
            .into(),
            PartitionError::CyclicQuotient.into(),
            TilingError::EmptySubgraph.into(),
            SimError::InvalidOptions.into(),
            serde::Error::custom("bad json").into(),
        ];
        for error in cases {
            // Display stays lowercase and the wrapped message is preserved.
            let msg = error.to_string();
            assert!(msg.starts_with(char::is_lowercase), "{msg}");
            assert!(error.source().is_some(), "{msg} lost its source");
        }
    }

    #[test]
    fn is_send_sync_static() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        check(Error::NoFeasibleSolution);
    }
}
