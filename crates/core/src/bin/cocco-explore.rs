//! Command-line co-exploration driver.
//!
//! ```console
//! $ cocco-explore resnet50 --budget 20000 --space shared --alpha 0.002
//! $ cocco-explore googlenet --method sa --space separate --metric ema --cores 2 --batch 8
//! $ cocco-explore resnet50 --method greedy --json
//! $ cocco-explore --list
//! ```

use cocco::prelude::*;
use std::process::ExitCode;
use std::str::FromStr;

/// The search itself failed: no feasible solution, the method gave up,
/// an internal evaluation error, or a worker panic with nothing salvaged.
const EXIT_SEARCH_FAILED: u8 = 1;
/// Bad invocation: unknown flags/values or an unknown model.
const EXIT_USAGE: u8 = 2;
/// An existing cache or checkpoint file was unusable (I/O or parse).
const EXIT_IO: u8 = 3;
/// Degraded outcome: the run produced a usable result but carries scar
/// tissue — a worker panic with salvaged best-so-far, a revoked budget,
/// or a failed cache/checkpoint save.
const EXIT_DEGRADED: u8 = 4;

struct Args {
    model: Option<String>,
    budget: u64,
    space: BufferSpace,
    metric: CostMetric,
    alpha: f64,
    seed: u64,
    options: EvalOptions,
    threads: EngineConfig,
    method: SearchMethod,
    cache_file: Option<String>,
    checkpoint_file: Option<String>,
    checkpoint_every: Option<u64>,
    stats_json: Option<String>,
    telemetry_jsonl: Option<String>,
    telemetry_report: bool,
    json: bool,
    list: bool,
    dot: bool,
}

fn usage() -> String {
    let models: Vec<&str> = cocco::graph::models::registry()
        .iter()
        .map(|(name, _)| *name)
        .collect();
    format!(
        "usage: cocco-explore <model> [options]\n\
         \n\
         models: {}\n\
         \n\
         options:\n\
           --method <m>       ga | sa | greedy | dp | exhaustive | twostep | portfolio\n\
                              (default ga)\n\
           --portfolio <ms>   race a comma-separated list of methods round-robin on\n\
                              one budget/engine (e.g. `--portfolio ga,sa,twostep`;\n\
                              overrides --method)\n\
           --target <cost>    stop a portfolio as soon as any member reaches this\n\
                              Formula-2 cost (default: run to exhaustion)\n\
           --budget <n>       evaluation samples (default 20000)\n\
           --space <s>        shared | separate (default shared)\n\
           --metric <m>       energy | ema (default energy)\n\
           --alpha <a>        Formula-2 preference factor (default 0.002)\n\
           --seed <n>         RNG seed (default 0xC0CC0)\n\
           --cores <n>        NPU cores (default 1)\n\
           --batch <n>        batch size (default 1)\n\
           --threads <n>      evaluation worker threads, or `auto` (default auto);\n\
                              results are identical at any thread count\n\
           --pool <mode>      worker-pool lifecycle: persistent (default) keeps\n\
                              threads alive across batches, scoped re-spawns per\n\
                              batch; results are identical either way\n\
           --chunk <n|auto>   jobs handed to a worker per pool dispatch (default\n\
                              auto: batch size / (threads * 4)); results are\n\
                              identical at any chunk size\n\
           --cache-capacity <n>  bound the evaluation cache to <n> entries\n\
                              (generation-sweep eviction; results unchanged)\n\
           --cache-file <p>   persist the evaluation cache at <p>: repeated\n\
                              explorations warm-start from it (results are\n\
                              unchanged; entries of other models/accelerator\n\
                              configs are kept but never reused)\n\
           --checkpoint-file <p>  run step-driven and checkpoint the search to <p>;\n\
                              an existing snapshot resumes the interrupted run\n\
                              bit-identically (removed on completion)\n\
           --checkpoint-every <n>  driver steps between checkpoint saves\n\
                              (default 16; a GA step is one generation)\n\
           --stats-json <p>   write engine stats + metrics + phase profile to <p>\n\
                              as JSON (enables telemetry; results unchanged)\n\
           --telemetry-jsonl <p>  write every telemetry event to <p>, one JSON\n\
                              object per line (enables telemetry)\n\
           --telemetry-report print a summary table of counters, latency\n\
                              histograms (p50/p90/p99) and per-phase wall time\n\
                              (enables telemetry)\n\
           --json             print the full exploration result as JSON\n\
           --dot              print the partitioned graph in Graphviz DOT\n\
           --list             list available models and exit\n\
         \n\
         exit codes:\n\
           0  success\n\
           1  search failed (no feasible solution, method gave up, or a\n\
              worker panic with nothing to salvage)\n\
           2  usage error (bad flags or unknown model)\n\
           3  cache/checkpoint file unusable (I/O or parse failure)\n\
           4  degraded: a usable result with recovery scars (worker panic\n\
              with salvaged best-so-far, revoked budget, or a failed\n\
              cache/checkpoint save)",
        models.join(" ")
    )
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mut args = Args {
        model: None,
        budget: 20_000,
        space: BufferSpace::paper_shared(),
        metric: CostMetric::Energy,
        alpha: 0.002,
        seed: 0xC0CC0,
        options: EvalOptions::default(),
        threads: EngineConfig::auto(),
        method: SearchMethod::default(),
        cache_file: None,
        checkpoint_file: None,
        checkpoint_every: None,
        stats_json: None,
        telemetry_jsonl: None,
        telemetry_report: false,
        json: false,
        list: false,
        dot: false,
    };
    let mut cores: u32 = 1;
    let mut batch: u32 = 1;
    let mut pool: Option<PoolMode> = None;
    let mut chunk: Option<ChunkSize> = None;
    let mut cache_capacity: Option<usize> = None;
    let mut portfolio: Option<Vec<SearchMethod>> = None;
    let mut target: Option<f64> = None;
    let next_value =
        |argv: &mut std::env::Args, flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--budget" => args.budget = parse_num(&next_value(&mut argv, "--budget")?)?,
            "--seed" => args.seed = parse_num(&next_value(&mut argv, "--seed")?)?,
            "--cores" => cores = parse_num(&next_value(&mut argv, "--cores")?)?,
            "--batch" => batch = parse_num(&next_value(&mut argv, "--batch")?)?,
            "--threads" => {
                let value = next_value(&mut argv, "--threads")?;
                args.threads = match value.as_str() {
                    "auto" => EngineConfig::auto(),
                    n => {
                        let n: u32 = parse_num(n)?;
                        if n == 0 {
                            return Err("--threads must be >= 1 (or `auto`)".to_string());
                        }
                        EngineConfig::with_threads(n)
                    }
                };
            }
            "--alpha" => {
                args.alpha = next_value(&mut argv, "--alpha")?
                    .parse()
                    .map_err(|e| format!("bad --alpha: {e}"))?;
            }
            "--method" => {
                let key = next_value(&mut argv, "--method")?;
                args.method = SearchMethod::parse(&key).ok_or(format!(
                    "unknown method `{key}` \
                     (ga | sa | greedy | dp | exhaustive | twostep | portfolio)"
                ))?;
            }
            "--portfolio" => {
                let list = next_value(&mut argv, "--portfolio")?;
                let members = list
                    .split(',')
                    .map(|key| {
                        SearchMethod::parse(key.trim()).ok_or(format!(
                            "unknown portfolio member `{key}` \
                             (ga | sa | greedy | dp | exhaustive | twostep)"
                        ))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if members.is_empty() {
                    return Err("--portfolio needs at least one method".to_string());
                }
                portfolio = Some(members);
            }
            "--target" => {
                target = Some(
                    next_value(&mut argv, "--target")?
                        .parse()
                        .map_err(|e| format!("bad --target: {e}"))?,
                );
            }
            "--checkpoint-file" => {
                args.checkpoint_file = Some(next_value(&mut argv, "--checkpoint-file")?);
            }
            "--checkpoint-every" => {
                args.checkpoint_every =
                    Some(parse_num(&next_value(&mut argv, "--checkpoint-every")?)?);
            }
            "--space" => {
                args.space = match next_value(&mut argv, "--space")?.as_str() {
                    "shared" => BufferSpace::paper_shared(),
                    "separate" => BufferSpace::paper_separate(),
                    other => return Err(format!("unknown space `{other}`")),
                };
            }
            "--metric" => {
                args.metric = match next_value(&mut argv, "--metric")?.as_str() {
                    "energy" => CostMetric::Energy,
                    "ema" => CostMetric::Ema,
                    other => return Err(format!("unknown metric `{other}`")),
                };
            }
            "--pool" => {
                pool = Some(match next_value(&mut argv, "--pool")?.as_str() {
                    "persistent" => PoolMode::Persistent,
                    "scoped" => PoolMode::Scoped,
                    other => return Err(format!("unknown pool mode `{other}`")),
                });
            }
            "--chunk" => {
                chunk = Some(match next_value(&mut argv, "--chunk")?.as_str() {
                    "auto" => ChunkSize::Auto,
                    n => {
                        let n: u32 = parse_num(n)?;
                        if n == 0 {
                            return Err("--chunk must be >= 1 (or `auto`)".to_string());
                        }
                        ChunkSize::Fixed(n)
                    }
                });
            }
            "--cache-capacity" => {
                cache_capacity = Some(parse_num(&next_value(&mut argv, "--cache-capacity")?)?);
            }
            "--cache-file" => {
                args.cache_file = Some(next_value(&mut argv, "--cache-file")?);
            }
            "--stats-json" => {
                args.stats_json = Some(next_value(&mut argv, "--stats-json")?);
            }
            "--telemetry-jsonl" => {
                args.telemetry_jsonl = Some(next_value(&mut argv, "--telemetry-jsonl")?);
            }
            "--telemetry-report" => args.telemetry_report = true,
            "--json" => args.json = true,
            "--list" => args.list = true,
            "--dot" => args.dot = true,
            "--help" | "-h" => return Err(String::new()),
            other if args.model.is_none() && !other.starts_with('-') => {
                args.model = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.json && args.dot {
        return Err("--json and --dot are mutually exclusive (the DOT text would corrupt the JSON document)".to_string());
    }
    args.options =
        EvalOptions::new(cores, batch).map_err(|e| format!("bad --cores/--batch: {e}"))?;
    if let Some(mode) = pool {
        args.threads = args.threads.with_pool(mode);
    }
    if let Some(size) = chunk {
        args.threads = args.threads.with_chunk(size);
    }
    if let Some(capacity) = cache_capacity {
        args.threads = args.threads.with_cache_capacity(capacity);
    }
    if let Some(members) = portfolio {
        args.method = SearchMethod::Portfolio(Portfolio::new(members));
    }
    if let Some(target) = target {
        // Applies to `--portfolio ...` and `--method portfolio` alike.
        match &mut args.method {
            SearchMethod::Portfolio(p) => p.policy = PortfolioPolicy::FirstToTarget(target),
            _ => return Err("--target only applies to a portfolio run".to_string()),
        }
    }
    Ok(args)
}

/// Parses into the flag's exact integer type, so out-of-range values (e.g.
/// `--cores 5000000000`) are rejected instead of silently truncated.
fn parse_num<T: FromStr<Err = std::num::ParseIntError>>(s: &str) -> Result<T, String> {
    s.parse().map_err(|e| format!("bad number `{s}`: {e}"))
}

/// What `--json` prints: the request coordinates plus the full result,
/// round-trippable through `serde_json`.
#[derive(serde::Serialize, serde::Deserialize)]
struct JsonReport {
    model: String,
    method: SearchMethod,
    exploration: Exploration,
}

/// What `--stats-json` writes: the compatibility [`EngineStats`] next to
/// the full metrics registry and per-phase wall-time profile.
#[derive(serde::Serialize, serde::Deserialize)]
struct StatsDump {
    stats: EngineStats,
    metrics: MetricsSnapshot,
    phases: PhaseSnapshot,
    events_dropped: u64,
}

/// Nanoseconds, human-scaled.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// The `--telemetry-report` summary table.
fn telemetry_report(telemetry: &Telemetry) -> String {
    use std::fmt::Write as _;
    let snap = telemetry.snapshot();
    let phases = telemetry.phases();
    let mut out = String::new();
    let _ = writeln!(out, "telemetry:");
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        for c in &snap.counters {
            let _ = writeln!(out, "    {:<34} {:>12}", c.name, c.value);
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "  gauges:");
        for g in &snap.gauges {
            let _ = writeln!(out, "    {:<34} {:>12}", g.name, g.value);
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "  histograms:{:>30} {:>9} {:>9} {:>9}",
            "count", "p50", "p90", "p99"
        );
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "    {:<34} {:>6} {:>9} {:>9} {:>9}",
                h.name,
                h.count,
                fmt_ns(h.p50() as f64),
                fmt_ns(h.p90() as f64),
                fmt_ns(h.p99() as f64),
            );
        }
    }
    let rows: Vec<String> = phases
        .rows()
        .iter()
        .map(|(name, ms)| format!("{name} {ms:.1}"))
        .collect();
    let _ = writeln!(out, "  phases (ms): {}", rows.join(" | "));
    let _ = writeln!(
        out,
        "  events: {} recorded, {} dropped",
        telemetry.events().len(),
        telemetry.events_dropped(),
    );
    out
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            // An empty message is `--help`: the usage text is the
            // requested output, not an error.
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n");
            eprintln!("{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if args.list {
        for (name, _) in cocco::graph::models::registry() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let Some(name) = args.model else {
        eprintln!("{}", usage());
        return ExitCode::from(EXIT_USAGE);
    };
    let Some(model) = cocco::graph::models::by_name(&name) else {
        eprintln!("error: {}", cocco::Error::UnknownModel { name });
        return ExitCode::from(EXIT_USAGE);
    };
    let method = args.method.with_seed(args.seed);
    // Telemetry is observation-only: enabling it never changes results.
    let wants_telemetry =
        args.stats_json.is_some() || args.telemetry_jsonl.is_some() || args.telemetry_report;
    let telemetry = if wants_telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut session = Cocco::new()
        .with_space(args.space)
        .with_objective(Objective::co_exploration(args.metric, args.alpha))
        .with_options(args.options)
        .with_engine(args.threads)
        .with_budget(args.budget)
        .with_method(method.clone())
        .with_telemetry(telemetry.clone());
    if let Some(path) = &args.cache_file {
        session = session.with_cache_file(path);
    }
    if let Some(path) = &args.checkpoint_file {
        session = session.with_checkpoint_file(path);
    }
    if let Some(every) = args.checkpoint_every {
        session = session.with_checkpoint_every(every);
    }
    let result = match session.explore(&model) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            let code = match &e {
                cocco::Error::WorkerPanic {
                    salvage: Some(salvage),
                    ..
                } => {
                    eprintln!(
                        "salvaged best-so-far: cost {:.4e} after {} samples \
                         ({} subgraphs, {} KB buffer)",
                        salvage.cost,
                        salvage.samples,
                        salvage.genome.partition.num_subgraphs(),
                        salvage.genome.buffer.total_bytes() >> 10,
                    );
                    EXIT_DEGRADED
                }
                cocco::Error::CacheFile { .. } | cocco::Error::Checkpoint { .. } => EXIT_IO,
                _ => EXIT_SEARCH_FAILED,
            };
            return ExitCode::from(code);
        }
    };
    // A run that completed with recovery scars (failed saves, revoked
    // budget, quarantine) still prints its result, but exits 4 so
    // harnesses can tell "clean" from "degraded but usable".
    let exit = if result.is_degraded() {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    };
    // Telemetry side outputs are best effort: a failed write warns, it
    // never discards a completed exploration.
    if let Some(path) = &args.stats_json {
        let dump = StatsDump {
            stats: result.stats,
            metrics: telemetry.snapshot(),
            phases: telemetry.phases(),
            events_dropped: telemetry.events_dropped(),
        };
        let outcome = serde_json::to_string_pretty(&dump)
            .map_err(|e| e.to_string())
            .and_then(|text| std::fs::write(path, text).map_err(|e| e.to_string()));
        if let Err(e) = outcome {
            eprintln!("warning: could not write --stats-json {path}: {e}");
        }
    }
    if let Some(path) = &args.telemetry_jsonl {
        let outcome =
            std::fs::File::create(path).and_then(|mut file| telemetry.export_jsonl(&mut file));
        if let Err(e) = outcome {
            eprintln!("warning: could not write --telemetry-jsonl {path}: {e}");
        }
    }
    if args.telemetry_report && args.json {
        // The JSON document owns stdout; the table goes to stderr.
        eprint!("{}", telemetry_report(&telemetry));
    }
    if args.json {
        let report = JsonReport {
            model: model.name().to_string(),
            method,
            exploration: result,
        };
        match serde_json::to_string_pretty(&report) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {}", cocco::Error::Serde(e));
                return ExitCode::from(EXIT_SEARCH_FAILED);
            }
        }
        return exit;
    }
    println!("model: {model}");
    println!("method             : {}", method.name());
    let buffer = match result.genome.buffer {
        BufferConfig::Separate { glb, wgt } => {
            format!("GLB {} KB + WGT {} KB", glb >> 10, wgt >> 10)
        }
        BufferConfig::Shared { total } => format!("{} KB shared", total >> 10),
    };
    println!("recommended buffer : {buffer}");
    println!(
        "subgraphs          : {}",
        result.genome.partition.num_subgraphs()
    );
    println!("cost (Formula 2)   : {:.4e}", result.cost);
    println!(
        "EMA                : {:.2} MB",
        result.report.ema_bytes as f64 / (1 << 20) as f64
    );
    println!("energy             : {:.3} mJ", result.report.energy_mj());
    println!(
        "latency            : {:.3} ms",
        result.report.latency_ms(1.0)
    );
    println!("avg bandwidth      : {:.2} GB/s", result.report.avg_bw_gbps);
    println!("samples used       : {}", result.samples);
    println!(
        "engine             : {} threads, {} evals, {} cache hits ({:.0}%), {:.1} ms",
        result.stats.threads,
        result.stats.evals,
        result.stats.cache_hits,
        result.stats.hit_rate() * 100.0,
        result.stats.wall_ms,
    );
    println!(
        "subgraph terms     : {} scored, {} cached, {} reused ({:.0}% avoided)",
        result.stats.subgraph_scorings,
        result.stats.subgraph_hits,
        result.stats.subgraph_reused,
        result.stats.subgraph_hit_rate() * 100.0,
    );
    if result.stats.evictions() > 0 {
        println!(
            "cache evictions    : {} roll-ups + {} terms (bounded cache)",
            result.stats.cache_evictions, result.stats.subgraph_evictions,
        );
    }
    if let Some(save_error) = &result.cache_save_error {
        eprintln!("warning            : could not save cache file ({save_error})");
    }
    if let Some(save_error) = &result.checkpoint_save_error {
        eprintln!("warning            : could not save checkpoint ({save_error})");
    }
    if result.health.faults_seen() > 0 || result.health.recoveries() > 0 {
        println!(
            "fault recovery     : {} faults seen, {} recoveries ({} rescores, \
             {} refunded samples, {} save retries, {} salvaged entries)",
            result.health.faults_seen(),
            result.health.recoveries(),
            result.health.eval_rescores,
            result.health.refunded_samples,
            result.health.save_retries,
            result.health.salvaged_entries,
        );
    }
    if result.infeasible_errors > 0 {
        println!(
            "warning            : {} evaluator errors were folded into infeasibility",
            result.infeasible_errors
        );
    }
    if !result.completed {
        println!("note               : method did not complete (limits hit)");
    }
    if args.telemetry_report {
        print!("{}", telemetry_report(&telemetry));
    }
    if args.dot {
        let partition = &result.genome.partition;
        println!(
            "{}",
            model.to_dot(|id| Some(partition.subgraph_of(id) as usize))
        );
    }
    exit
}
