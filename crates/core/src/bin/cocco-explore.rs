//! Command-line co-exploration driver.
//!
//! ```console
//! $ cocco-explore resnet50 --budget 20000 --space shared --alpha 0.002
//! $ cocco-explore googlenet --space separate --metric ema --cores 2 --batch 8
//! $ cocco-explore --list
//! ```

use cocco::prelude::*;
use std::process::ExitCode;

struct Args {
    model: Option<String>,
    budget: u64,
    space: BufferSpace,
    metric: CostMetric,
    alpha: f64,
    seed: u64,
    cores: u32,
    batch: u32,
    list: bool,
    dot: bool,
}

fn usage() -> &'static str {
    "usage: cocco-explore <model> [options]\n\
     \n\
     models: vgg16 resnet50 resnet152 googlenet transformer gpt\n\
             randwire-a randwire-b nasnet mobilenet-v2\n\
     \n\
     options:\n\
       --budget <n>       evaluation samples (default 20000)\n\
       --space <s>        shared | separate (default shared)\n\
       --metric <m>       energy | ema (default energy)\n\
       --alpha <a>        Formula-2 preference factor (default 0.002)\n\
       --seed <n>         RNG seed (default 0xC0CC0)\n\
       --cores <n>        NPU cores (default 1)\n\
       --batch <n>        batch size (default 1)\n\
       --dot              print the partitioned graph in Graphviz DOT\n\
       --list             list available models and exit"
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mut args = Args {
        model: None,
        budget: 20_000,
        space: BufferSpace::paper_shared(),
        metric: CostMetric::Energy,
        alpha: 0.002,
        seed: 0xC0CC0,
        cores: 1,
        batch: 1,
        list: false,
        dot: false,
    };
    let next_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--budget" => args.budget = parse_num(&next_value(&mut argv, "--budget")?)?,
            "--seed" => args.seed = parse_num(&next_value(&mut argv, "--seed")?)?,
            "--cores" => args.cores = parse_num(&next_value(&mut argv, "--cores")?)? as u32,
            "--batch" => args.batch = parse_num(&next_value(&mut argv, "--batch")?)? as u32,
            "--alpha" => {
                args.alpha = next_value(&mut argv, "--alpha")?
                    .parse()
                    .map_err(|e| format!("bad --alpha: {e}"))?;
            }
            "--space" => {
                args.space = match next_value(&mut argv, "--space")?.as_str() {
                    "shared" => BufferSpace::paper_shared(),
                    "separate" => BufferSpace::paper_separate(),
                    other => return Err(format!("unknown space `{other}`")),
                };
            }
            "--metric" => {
                args.metric = match next_value(&mut argv, "--metric")?.as_str() {
                    "energy" => CostMetric::Energy,
                    "ema" => CostMetric::Ema,
                    other => return Err(format!("unknown metric `{other}`")),
                };
            }
            "--list" => args.list = true,
            "--dot" => args.dot = true,
            "--help" | "-h" => return Err(String::new()),
            other if args.model.is_none() && !other.starts_with('-') => {
                args.model = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("bad number `{s}`: {e}"))
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for name in cocco::graph::models::PAPER_MODELS {
            println!("{name}");
        }
        println!("nasnet\nmobilenet-v2");
        return ExitCode::SUCCESS;
    }
    let Some(name) = args.model else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let Some(model) = cocco::graph::models::by_name(&name) else {
        eprintln!("error: unknown model `{name}` (try --list)");
        return ExitCode::FAILURE;
    };
    println!("model: {model}");
    let result = Cocco::new()
        .with_space(args.space)
        .with_objective(Objective::co_exploration(args.metric, args.alpha))
        .with_options(EvalOptions {
            cores: args.cores,
            batch: args.batch,
        })
        .with_budget(args.budget)
        .with_seed(args.seed)
        .explore(&model);
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let buffer = match result.genome.buffer {
        BufferConfig::Separate { glb, wgt } => {
            format!("GLB {} KB + WGT {} KB", glb >> 10, wgt >> 10)
        }
        BufferConfig::Shared { total } => format!("{} KB shared", total >> 10),
    };
    println!("recommended buffer : {buffer}");
    println!("subgraphs          : {}", result.genome.partition.num_subgraphs());
    println!("cost (Formula 2)   : {:.4e}", result.cost);
    println!("EMA                : {:.2} MB", result.report.ema_bytes as f64 / (1 << 20) as f64);
    println!("energy             : {:.3} mJ", result.report.energy_mj());
    println!("latency            : {:.3} ms", result.report.latency_ms(1.0));
    println!("avg bandwidth      : {:.2} GB/s", result.report.avg_bw_gbps);
    println!("samples used       : {}", result.samples);
    if args.dot {
        let partition = &result.genome.partition;
        println!(
            "{}",
            model.to_dot(|id| Some(partition.subgraph_of(id) as usize))
        );
    }
    ExitCode::SUCCESS
}
