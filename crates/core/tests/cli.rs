//! End-to-end tests of the `cocco-explore` binary: registry-driven
//! `--list`, `--method`/`--json` flags, strict numeric parsing and error
//! reporting.

use std::process::Command;

fn explore(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cocco-explore"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn list_enumerates_the_model_registry() {
    let out = explore(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let listed: Vec<&str> = stdout.lines().collect();
    let registry: Vec<&str> = cocco::graph::models::registry()
        .iter()
        .map(|(name, _)| *name)
        .collect();
    assert_eq!(listed, registry, "--list must mirror models::registry()");
}

#[test]
fn json_output_round_trips_into_result_types() {
    let out = explore(&["vgg16", "--method", "greedy", "--budget", "50", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();

    // The result types themselves deserialize from the emitted JSON.
    let value: serde_json::Value = serde_json::from_str(&stdout).unwrap();
    let model: String = serde_json::from_value(value.get("model").unwrap()).unwrap();
    assert_eq!(model, "vgg16");
    let method: cocco::search::SearchMethod =
        serde_json::from_value(value.get("method").unwrap()).unwrap();
    assert_eq!(method.key(), "greedy");
    let exploration: cocco::Exploration =
        serde_json::from_value(value.get("exploration").unwrap()).unwrap();
    assert!(exploration.report.fits);
    assert!(exploration.cost.is_finite());
    assert!(exploration
        .genome
        .partition
        .validate(&cocco::graph::models::vgg16())
        .is_ok());
}

#[test]
fn method_flag_selects_the_searcher() {
    let out = explore(&["vgg16", "--method", "dp", "--budget", "50"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Irregular-NN (DP)"), "{stdout}");

    let bad = explore(&["vgg16", "--method", "bogus"]);
    assert!(!bad.status.success());
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.contains("unknown method"), "{stderr}");
}

#[test]
fn json_and_dot_are_mutually_exclusive() {
    let out = explore(&["vgg16", "--json", "--dot", "--budget", "10"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn out_of_range_cores_are_rejected_not_truncated() {
    // 2^32 + 2 would truncate to 2 under a silent `as u32` cast.
    let out = explore(&["vgg16", "--cores", "4294967298", "--budget", "10"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("bad number"), "{stderr}");
}

#[test]
fn zero_cores_are_rejected_at_parse_time() {
    let out = explore(&["vgg16", "--cores", "0", "--budget", "10"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("cores and batch must be nonzero"),
        "{stderr}"
    );
}

#[test]
fn threads_flag_is_validated_and_reported() {
    let out = explore(&["googlenet", "--budget", "60", "--threads", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 threads"), "{stdout}");

    let auto = explore(&["googlenet", "--budget", "60", "--threads", "auto"]);
    assert!(auto.status.success());

    let bad = explore(&["googlenet", "--budget", "10", "--threads", "0"]);
    assert!(!bad.status.success());
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.contains("--threads"), "{stderr}");
}

#[test]
fn thread_count_does_not_change_results() {
    let run = |threads: &str| {
        let out = explore(&[
            "googlenet",
            "--budget",
            "300",
            "--seed",
            "5",
            "--threads",
            threads,
            "--json",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        let value: serde_json::Value = serde_json::from_str(&stdout).unwrap();
        serde_json::from_value::<cocco::Exploration>(value.get("exploration").unwrap()).unwrap()
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(serial.cost, parallel.cost);
    assert_eq!(serial.genome, parallel.genome);
    assert_eq!(serial.samples, parallel.samples);
}

#[test]
fn unknown_model_reports_the_unified_error() {
    let out = explore(&["alexnet", "--budget", "10"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown model `alexnet`"), "{stderr}");
}
