//! Per-worker evaluation scratch: the reusable buffers that make a warmed
//! scoring dispatch allocation-free.
//!
//! Every public scoring entry point claims one [`EvalArena`] slot from the
//! engine's [`ScratchPool`] for the duration of the call. A slot bundles
//! the flat [`LayoutArena`] a candidate partition is materialized into,
//! the struct-of-arrays [`SubgraphColumns`] the batch scorer writes, and
//! the fixed-size composition vectors of the incremental path — all
//! cleared (capacity kept) between uses and grown monotonically, so the
//! steady state touches the allocator only for values that escape into
//! long-lived structures (memo entries, fingerprints, cache inserts).
//!
//! Slots never affect results: scratch contents are fully overwritten
//! before each read, and which slot a call claims is invisible to the
//! score. Claiming spins over `try_lock` — with one more slot than worker
//! threads and the single-claim discipline (only public entry points
//! claim; internal helpers receive the scratch by reference), a free slot
//! always exists, so the spin terminates immediately in practice.

use crate::engine::MemoEntry;
use cocco_partition::LayoutArena;
use cocco_sim::{SubgraphColumns, SubgraphStats};
use std::mem::size_of;
use std::sync::Mutex;

/// The composition scratch of one scoring call: per-position memo copies,
/// statistics, weight footprints, and the batch scorer's output columns.
#[derive(Debug, Default)]
pub(crate) struct ComposeScratch {
    /// Memoized entry per clean position (`MemoEntry` is `Copy`, so the
    /// memo's borrow ends before the fold starts).
    pub entries: Vec<Option<MemoEntry>>,
    /// Statistics of freshly derived positions (`None` where the memo
    /// entry was copied instead).
    pub stats_of: Vec<Option<SubgraphStats>>,
    /// Weight footprint per position (drives the `next_wgt` chain).
    pub wgts: Vec<u64>,
    /// Struct-of-arrays output of the non-incremental batch scorer.
    pub columns: SubgraphColumns,
}

impl ComposeScratch {
    /// Bytes of heap capacity currently owned by the scratch buffers.
    fn bytes(&self) -> u64 {
        (self.entries.capacity() * size_of::<Option<MemoEntry>>()
            + self.stats_of.capacity() * size_of::<Option<SubgraphStats>>()
            + self.wgts.capacity() * size_of::<u64>()) as u64
            + self.columns.bytes() as u64
    }
}

/// One reusable scratch slot: a layout arena, per-subgraph dirty flags,
/// and the composition buffers.
#[derive(Debug, Default)]
pub struct EvalArena {
    /// Flat-layout storage the candidate partition is built into.
    pub(crate) layout: LayoutArena,
    /// Per-subgraph dirty flags projected from a `PartitionDelta`.
    pub(crate) dirty: Vec<bool>,
    /// Composition scratch of the incremental and batch paths.
    pub(crate) compose: ComposeScratch,
}

impl EvalArena {
    /// Bytes of heap capacity currently owned by this slot.
    pub fn bytes(&self) -> u64 {
        self.layout.bytes()
            + (self.dirty.capacity() * size_of::<bool>()) as u64
            + self.compose.bytes()
    }

    /// Layout builds served entirely from existing capacity.
    pub fn reuses(&self) -> u64 {
        self.layout.reuses()
    }

    /// Layout builds that had to grow a buffer.
    pub fn grows(&self) -> u64 {
        self.layout.grows()
    }
}

/// The engine's slot set: `resolved_threads + 1` independent
/// [`EvalArena`]s, claimed per scoring call via `try_lock`.
#[derive(Debug)]
pub(crate) struct ScratchPool {
    slots: Vec<Mutex<EvalArena>>,
}

impl ScratchPool {
    /// A pool of `slots` empty arenas (`slots >= 1`).
    pub fn new(slots: usize) -> Self {
        Self {
            slots: (0..slots.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    /// Runs `f` with an exclusive scratch slot. Spins over the slots
    /// until one is free — callers never nest claims and the pool holds
    /// one more slot than there are worker threads, so the first pass
    /// succeeds in the steady state.
    pub fn with_slot<R>(&self, f: impl FnOnce(&mut EvalArena) -> R) -> R {
        loop {
            for slot in &self.slots {
                if let Ok(mut arena) = slot.try_lock() {
                    return f(&mut arena);
                }
            }
            std::thread::yield_now();
        }
    }

    /// Sums `per_slot` over every slot (blocking; used at quiescent
    /// points — metrics collection and dispatch boundaries).
    fn sum(&self, per_slot: impl Fn(&EvalArena) -> u64) -> u64 {
        self.slots
            .iter()
            .map(|slot| per_slot(&slot.lock().unwrap()))
            .sum()
    }

    /// Total bytes of heap capacity owned by all slots.
    pub fn bytes(&self) -> u64 {
        self.sum(EvalArena::bytes)
    }

    /// Total layout builds served from existing capacity.
    pub fn reuses(&self) -> u64 {
        self.sum(EvalArena::reuses)
    }

    /// Total layout builds that grew a buffer.
    pub fn grows(&self) -> u64 {
        self.sum(EvalArena::grows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_exclusive_and_reusable() {
        let pool = ScratchPool::new(2);
        pool.with_slot(|a| {
            a.dirty.push(true);
            // A nested claim from another logical task still succeeds:
            // the second slot is free.
            pool.with_slot(|b| b.dirty.push(false));
        });
        // Scratch persists across claims (capacity reuse is the point).
        let total: u64 = pool.bytes();
        assert!(total > 0);
        assert_eq!(pool.reuses() + pool.grows(), 0, "no layout builds yet");
    }

    #[test]
    fn empty_pool_clamps_to_one_slot() {
        let pool = ScratchPool::new(0);
        let inside = pool.with_slot(|arena| {
            arena.dirty.reserve(8);
            arena.bytes()
        });
        assert_eq!(pool.bytes(), inside);
    }
}
