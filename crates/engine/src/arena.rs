//! Per-worker evaluation scratch: the reusable buffers that make a warmed
//! scoring dispatch allocation-free.
//!
//! Every public scoring entry point claims one [`EvalArena`] slot from the
//! engine's [`ScratchPool`] for the duration of the call. A slot bundles
//! the flat [`LayoutArena`] a candidate partition is materialized into,
//! the struct-of-arrays [`SubgraphColumns`] the batch scorer writes, and
//! the fixed-size composition vectors of the incremental path — all
//! cleared (capacity kept) between uses and grown monotonically, so the
//! steady state touches the allocator only for values that escape into
//! long-lived structures (memo entries, fingerprints, cache inserts).
//!
//! Slots never affect results: scratch contents are fully overwritten
//! before each read, and which slot a call claims is invisible to the
//! score. Claiming spins over `try_lock` — with one more slot than worker
//! threads and the single-claim discipline (only public entry points
//! claim; internal helpers receive the scratch by reference), a free slot
//! always exists, so the spin terminates immediately in practice.

use crate::cache::EvalKey;
use crate::engine::{EvalMemo, MemoEntry, ScoredEval, SubgraphScore};
use cocco_graph::BuildFpHasher;
use cocco_partition::LayoutArena;
use cocco_sim::{SubgraphColumns, SubgraphStats};
use std::collections::HashMap;
use std::mem::size_of;
use std::sync::{Arc, Mutex};

/// A partition roll-up staged for funding-order publication: the batch
/// sequence number it was computed under, plus the shared-cache payload.
pub(crate) type PendingPartition = (u64, EvalKey, ScoredEval, Option<Arc<EvalMemo>>);

/// A subgraph term staged for funding-order publication.
pub(crate) type PendingSubgraph = (u64, EvalKey, SubgraphScore);

/// Worker-local L0 cache: the lock-free front of the cache hierarchy.
///
/// Each scratch slot owns one. Because a slot is exclusively held for the
/// duration of a scoring call, probes and inserts here pay no shard lock
/// and no atomic counter — just one identity-hashed `HashMap` lookup.
/// Entries are pure functions of their [`EvalKey`]s, so an L0 hit is
/// bit-identical to the shared-cache (or recomputed) value; the L0 can
/// therefore never change a result, only skip contention.
///
/// Freshly computed values are *staged* rather than written straight to
/// the shared cache: `pending_*` queues carry them (tagged with the
/// funding-order sequence number of the job that computed them) until the
/// engine drains every slot at the batch-end quiescent point and inserts
/// them in ascending sequence order — making the shared cache's insertion
/// history independent of thread count and slot assignment.
///
/// The maps never leak iteration order: they are probed by key and, on
/// overflow, cleared wholesale (capacity kept), so determinism rule D1 is
/// satisfied structurally.
#[derive(Debug, Default)]
pub(crate) struct L0Cache {
    partition: HashMap<EvalKey, (ScoredEval, Option<Arc<EvalMemo>>), BuildFpHasher>,
    subgraph: HashMap<EvalKey, SubgraphScore, BuildFpHasher>,
    pending_partition: Vec<PendingPartition>,
    pending_subgraph: Vec<PendingSubgraph>,
}

impl L0Cache {
    /// Partition-rollup entries kept per slot. Roll-ups carry memos
    /// (kilobytes each on large models), so the local copy stays small;
    /// repeat probes within a few batches are what it exists to absorb.
    const PARTITION_CAP: usize = 256;

    /// Subgraph-term entries kept per slot (a few dozen bytes each).
    const SUBGRAPH_CAP: usize = 2048;

    /// Lock-free partition roll-up probe.
    pub fn get_partition(&self, key: &EvalKey) -> Option<(ScoredEval, Option<Arc<EvalMemo>>)> {
        self.partition
            .get(key)
            .map(|(scored, memo)| (*scored, memo.clone()))
    }

    /// Read-through population after a shared-cache hit (nothing staged:
    /// the entry is already published).
    pub fn put_partition(&mut self, key: EvalKey, scored: ScoredEval, memo: Option<Arc<EvalMemo>>) {
        if self.partition.len() >= Self::PARTITION_CAP {
            self.partition.clear();
        }
        self.partition.insert(key, (scored, memo));
    }

    /// Records a freshly computed roll-up locally *and* stages it for the
    /// batch-end funding-order drain into the shared cache.
    pub fn stage_partition(
        &mut self,
        seq: u64,
        key: EvalKey,
        scored: ScoredEval,
        memo: Option<Arc<EvalMemo>>,
    ) {
        self.put_partition(key, scored, memo.clone());
        self.pending_partition.push((seq, key, scored, memo));
    }

    /// Lock-free subgraph-term probe.
    pub fn get_subgraph(&self, key: &EvalKey) -> Option<SubgraphScore> {
        self.subgraph.get(key).copied()
    }

    /// Read-through population after a shared-cache subgraph hit.
    pub fn put_subgraph(&mut self, key: EvalKey, value: SubgraphScore) {
        if self.subgraph.len() >= Self::SUBGRAPH_CAP {
            self.subgraph.clear();
        }
        self.subgraph.insert(key, value);
    }

    /// Records a freshly computed term locally and stages it for the
    /// batch-end drain.
    pub fn stage_subgraph(&mut self, seq: u64, key: EvalKey, value: SubgraphScore) {
        self.put_subgraph(key, value);
        self.pending_subgraph.push((seq, key, value));
    }

    /// Moves the staged entries out (local lookup maps are kept — they
    /// remain valid, the entries are now also shared).
    pub fn take_pending(&mut self) -> (Vec<PendingPartition>, Vec<PendingSubgraph>) {
        (
            std::mem::take(&mut self.pending_partition),
            std::mem::take(&mut self.pending_subgraph),
        )
    }

    /// Bytes of heap capacity currently owned by the L0 structures
    /// (map capacities approximated by entry footprint).
    fn bytes(&self) -> u64 {
        (self.partition.capacity() * size_of::<(EvalKey, (ScoredEval, Option<Arc<EvalMemo>>))>()
            + self.subgraph.capacity() * size_of::<(EvalKey, SubgraphScore)>()
            + self.pending_partition.capacity() * size_of::<PendingPartition>()
            + self.pending_subgraph.capacity() * size_of::<PendingSubgraph>()) as u64
    }
}

/// The composition scratch of one scoring call: per-position memo copies,
/// statistics, weight footprints, and the batch scorer's output columns.
#[derive(Debug, Default)]
pub(crate) struct ComposeScratch {
    /// Memoized entry per clean position (`MemoEntry` is `Copy`, so the
    /// memo's borrow ends before the fold starts).
    pub entries: Vec<Option<MemoEntry>>,
    /// Statistics of freshly derived positions (`None` where the memo
    /// entry was copied instead).
    pub stats_of: Vec<Option<SubgraphStats>>,
    /// Weight footprint per position (drives the `next_wgt` chain).
    pub wgts: Vec<u64>,
    /// Struct-of-arrays output of the non-incremental batch scorer.
    pub columns: SubgraphColumns,
}

impl ComposeScratch {
    /// Bytes of heap capacity currently owned by the scratch buffers.
    fn bytes(&self) -> u64 {
        (self.entries.capacity() * size_of::<Option<MemoEntry>>()
            + self.stats_of.capacity() * size_of::<Option<SubgraphStats>>()
            + self.wgts.capacity() * size_of::<u64>()) as u64
            + self.columns.bytes() as u64
    }
}

/// One reusable scratch slot: a layout arena, per-subgraph dirty flags,
/// and the composition buffers.
#[derive(Debug, Default)]
pub struct EvalArena {
    /// Flat-layout storage the candidate partition is built into.
    pub(crate) layout: LayoutArena,
    /// Per-subgraph dirty flags projected from a `PartitionDelta`.
    pub(crate) dirty: Vec<bool>,
    /// Composition scratch of the incremental and batch paths.
    pub(crate) compose: ComposeScratch,
    /// Worker-local L0 cache probed lock-free before the shared shards.
    pub(crate) l0: L0Cache,
}

impl EvalArena {
    /// Bytes of heap capacity currently owned by this slot.
    pub fn bytes(&self) -> u64 {
        self.layout.bytes()
            + (self.dirty.capacity() * size_of::<bool>()) as u64
            + self.compose.bytes()
            + self.l0.bytes()
    }

    /// Layout builds served entirely from existing capacity.
    pub fn reuses(&self) -> u64 {
        self.layout.reuses()
    }

    /// Layout builds that had to grow a buffer.
    pub fn grows(&self) -> u64 {
        self.layout.grows()
    }
}

/// The engine's slot set: `resolved_threads + 1` independent
/// [`EvalArena`]s, claimed per scoring call via `try_lock`.
#[derive(Debug)]
pub(crate) struct ScratchPool {
    slots: Vec<Mutex<EvalArena>>,
}

impl ScratchPool {
    /// A pool of `slots` empty arenas (`slots >= 1`).
    pub fn new(slots: usize) -> Self {
        Self {
            slots: (0..slots.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    /// Runs `f` with an exclusive scratch slot. Spins over the slots
    /// until one is free — callers never nest claims and the pool holds
    /// one more slot than there are worker threads, so the first pass
    /// succeeds in the steady state.
    pub fn with_slot<R>(&self, f: impl FnOnce(&mut EvalArena) -> R) -> R {
        loop {
            for slot in &self.slots {
                if let Ok(mut arena) = slot.try_lock() {
                    return f(&mut arena);
                }
            }
            std::thread::yield_now();
        }
    }

    /// Collects every slot's staged cache entries (blocking lock; called
    /// only at the batch-end quiescent point, after the pool has joined).
    /// Slots are visited in fixed index order, but the caller re-sorts by
    /// sequence number anyway, so slot order never reaches the cache.
    pub fn drain_pending(&self) -> (Vec<PendingPartition>, Vec<PendingSubgraph>) {
        let mut partitions = Vec::new();
        let mut subgraphs = Vec::new();
        for slot in &self.slots {
            let (p, s) = slot.lock().unwrap().l0.take_pending();
            partitions.extend(p);
            subgraphs.extend(s);
        }
        (partitions, subgraphs)
    }

    /// Sums `per_slot` over every slot (blocking; used at quiescent
    /// points — metrics collection and dispatch boundaries).
    fn sum(&self, per_slot: impl Fn(&EvalArena) -> u64) -> u64 {
        self.slots
            .iter()
            .map(|slot| per_slot(&slot.lock().unwrap()))
            .sum()
    }

    /// Total bytes of heap capacity owned by all slots.
    pub fn bytes(&self) -> u64 {
        self.sum(EvalArena::bytes)
    }

    /// Total layout builds served from existing capacity.
    pub fn reuses(&self) -> u64 {
        self.sum(EvalArena::reuses)
    }

    /// Total layout builds that grew a buffer.
    pub fn grows(&self) -> u64 {
        self.sum(EvalArena::grows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_exclusive_and_reusable() {
        let pool = ScratchPool::new(2);
        pool.with_slot(|a| {
            a.dirty.push(true);
            // A nested claim from another logical task still succeeds:
            // the second slot is free.
            pool.with_slot(|b| b.dirty.push(false));
        });
        // Scratch persists across claims (capacity reuse is the point).
        let total: u64 = pool.bytes();
        assert!(total > 0);
        assert_eq!(pool.reuses() + pool.grows(), 0, "no layout builds yet");
    }

    #[test]
    fn empty_pool_clamps_to_one_slot() {
        let pool = ScratchPool::new(0);
        let inside = pool.with_slot(|arena| {
            arena.dirty.reserve(8);
            arena.bytes()
        });
        assert_eq!(pool.bytes(), inside);
    }

    #[test]
    fn claims_never_alias_under_contention() {
        use cocco_partition::Partition;
        use std::sync::atomic::{AtomicU64, Ordering};

        // `threads + 1` concurrent batches hammer claim/release — one
        // more claimant than the pool was sized for, so at least two
        // claimants always compete for the same slots. Each claim writes
        // a unique token into its slot, yields to invite interleaving,
        // and asserts the token survived: any aliasing (two claimants in
        // one slot) or lost exclusivity would corrupt the token.
        const THREADS: usize = 4;
        const CLAIMS_PER_BATCH: u64 = 300;
        let pool = ScratchPool::new(THREADS + 1);
        let next_token = AtomicU64::new(1);
        std::thread::scope(|scope| {
            for _ in 0..THREADS + 2 {
                scope.spawn(|| {
                    let partition = Partition::from_assignment(vec![0, 0, 1, 2]);
                    for _ in 0..CLAIMS_PER_BATCH {
                        let token = next_token.fetch_add(1, Ordering::Relaxed);
                        pool.with_slot(|arena| {
                            arena.dirty.clear();
                            for bit in 0..64 {
                                arena.dirty.push(token >> bit & 1 == 1);
                            }
                            arena.layout.build_from_partition(&partition);
                            std::thread::yield_now();
                            let read: u64 = arena
                                .dirty
                                .iter()
                                .enumerate()
                                .map(|(bit, &set)| u64::from(set) << bit)
                                .sum();
                            assert_eq!(read, token, "slot aliased across claims");
                        });
                    }
                });
            }
        });
        // Accounting stays exact under contention: every claim built one
        // layout, and each build was either a reuse or a grow.
        let builds = (THREADS as u64 + 2) * CLAIMS_PER_BATCH;
        assert_eq!(pool.reuses() + pool.grows(), builds);
        // Growth is bounded by warmup: after a slot has seen the shape
        // once, every later build in that slot must reuse capacity.
        assert!(
            pool.grows() <= (THREADS as u64 + 1) * 4,
            "grows kept climbing after warmup: {}",
            pool.grows()
        );
        assert!(pool.reuses() >= builds - (THREADS as u64 + 1) * 4);
    }
}
