//! Shared sample-budget accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe evaluation budget shared by (sub-)searches, so "samples"
/// are comparable across methods and a two-step scheme's inner GAs draw
/// from the same pool as a co-optimization run.
///
/// Budgets can be *sliced* ([`SampleBudget::slice`]): the slice caps its own
/// consumption while forwarding every sample to the parent pool, which is
/// how a two-step scheme grants each capacity candidate 5 000 samples out
/// of the global 50 000.
///
/// # Examples
///
/// ```
/// use cocco_engine::SampleBudget;
///
/// let b = SampleBudget::new(2);
/// assert_eq!(b.try_consume(), Some(0));
/// assert_eq!(b.try_consume(), Some(1));
/// assert_eq!(b.try_consume(), None);
/// assert!(b.is_exhausted());
/// ```
#[derive(Debug)]
pub struct SampleBudget {
    used: AtomicU64,
    limit: u64,
    parent: Option<Arc<SampleBudget>>,
}

impl SampleBudget {
    /// Creates a budget of `limit` evaluations.
    pub fn new(limit: u64) -> Self {
        Self {
            used: AtomicU64::new(0),
            limit,
            parent: None,
        }
    }

    /// Creates a sub-budget capped at `cap` that forwards consumption to
    /// `parent`; sample indices come from the parent, so traces stay
    /// globally ordered.
    pub fn slice(parent: Arc<SampleBudget>, cap: u64) -> Self {
        Self {
            used: AtomicU64::new(0),
            limit: cap,
            parent: Some(parent),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Evaluations consumed so far (may exceed the limit by the number of
    /// concurrently failing consumers, never by more).
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed).min(self.limit)
    }

    /// Consumes one evaluation, returning its 0-based index (from the
    /// outermost pool when sliced), or `None` when the budget — or any
    /// ancestor pool — is exhausted.
    pub fn try_consume(&self) -> Option<u64> {
        let idx = self.used.fetch_add(1, Ordering::Relaxed);
        if idx >= self.limit {
            // Undo the overshoot so `used` stays clamped.
            self.used.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
        match &self.parent {
            None => Some(idx),
            Some(parent) => match parent.try_consume() {
                Some(global) => Some(global),
                None => {
                    self.used.fetch_sub(1, Ordering::Relaxed);
                    None
                }
            },
        }
    }

    /// `true` once the limit — or any ancestor pool — has been reached.
    pub fn is_exhausted(&self) -> bool {
        self.used.load(Ordering::Relaxed) >= self.limit
            || self.parent.as_ref().is_some_and(|p| p.is_exhausted())
    }

    /// Remaining evaluations.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumes_up_to_limit() {
        let b = SampleBudget::new(3);
        assert_eq!(b.try_consume(), Some(0));
        assert_eq!(b.try_consume(), Some(1));
        assert_eq!(b.try_consume(), Some(2));
        assert_eq!(b.try_consume(), None);
        assert_eq!(b.used(), 3);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn concurrent_consumption_never_exceeds() {
        let b = std::sync::Arc::new(SampleBudget::new(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while b.try_consume().is_some() {
                    got += 1;
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(b.used(), 1000);
    }

    #[test]
    fn zero_budget_is_immediately_exhausted() {
        let b = SampleBudget::new(0);
        assert!(b.is_exhausted());
        assert_eq!(b.try_consume(), None);
    }

    #[test]
    fn slices_cap_and_forward() {
        let parent = std::sync::Arc::new(SampleBudget::new(5));
        let a = SampleBudget::slice(parent.clone(), 3);
        assert_eq!(a.try_consume(), Some(0));
        assert_eq!(a.try_consume(), Some(1));
        assert_eq!(a.try_consume(), Some(2));
        assert_eq!(a.try_consume(), None, "slice cap reached");
        assert_eq!(parent.used(), 3);
        let b = SampleBudget::slice(parent.clone(), 10);
        assert_eq!(b.try_consume(), Some(3));
        assert_eq!(b.try_consume(), Some(4));
        assert_eq!(b.try_consume(), None, "parent pool drained");
        assert!(b.is_exhausted());
        assert!(parent.is_exhausted());
    }

    #[test]
    fn concurrent_shared_budget_yields_unique_indices() {
        // N threads on one budget: every granted index is unique and the
        // total never exceeds the limit, even when threads keep hammering
        // after exhaustion.
        let b = std::sync::Arc::new(SampleBudget::new(777));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..400 {
                    if let Some(i) = b.try_consume() {
                        got.push(i);
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 777, "over- or under-consumed");
        all.dedup();
        assert_eq!(all.len(), 777, "duplicate sample indices granted");
        assert!(b.is_exhausted());
    }

    #[test]
    fn concurrent_slices_never_exceed_caps() {
        // Four slices of one parent, each hammered by two threads: no slice
        // exceeds its cap, the parent never exceeds its limit, and every
        // granted global index is unique.
        let parent = std::sync::Arc::new(SampleBudget::new(1_000));
        let slices: Vec<_> = (0..4)
            .map(|_| std::sync::Arc::new(SampleBudget::slice(parent.clone(), 300)))
            .collect();
        let mut handles = Vec::new();
        for slice in &slices {
            for _ in 0..2 {
                let slice = slice.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(i) = slice.try_consume() {
                        got.push(i);
                    }
                    got
                }));
            }
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        for slice in &slices {
            assert!(slice.used() <= 300, "slice exceeded its cap");
        }
        // 4 slices × 300 > 1000: the parent pool is the binding constraint.
        assert_eq!(parent.used(), 1_000);
        assert_eq!(all.len(), 1_000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1_000, "duplicate global indices");
    }

    #[test]
    fn concurrent_slice_cap_binds_when_parent_is_larger() {
        // One small slice of a big parent, hammered concurrently: the slice
        // cap binds exactly.
        let parent = std::sync::Arc::new(SampleBudget::new(1 << 20));
        let slice = std::sync::Arc::new(SampleBudget::slice(parent.clone(), 123));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let slice = slice.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while slice.try_consume().is_some() {
                    got += 1;
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 123);
        assert_eq!(slice.used(), 123);
        assert_eq!(parent.used(), 123);
    }
}
