//! Shared sample-budget accounting.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe evaluation budget shared by (sub-)searches, so "samples"
/// are comparable across methods and a two-step scheme's inner GAs draw
/// from the same pool as a co-optimization run.
///
/// Budgets can be *sliced* ([`SampleBudget::slice`]): the slice caps its own
/// consumption while forwarding every sample to the parent pool, which is
/// how a two-step scheme grants each capacity candidate 5 000 samples out
/// of the global 50 000.
///
/// Consumption can also be *reserved up front*
/// ([`SampleBudget::reserve`]): an interleaved driver draws its next
/// batch's funding before dispatch, and if the step is abandoned — the
/// driver dropped mid-step, a checkpointed run exiting — the unused
/// [`SampleReservation`] returns every unspent sample to the slice **and**
/// the shared pool on drop, so no samples are silently stranded.
///
/// # Accounting
///
/// Two counters per budget: `spent` (charged against the limit; exact via
/// compare-and-swap, decremented by refunds) and `issued` (the sample-index
/// source; strictly monotone, never decremented). Refunds therefore free
/// capacity without ever re-issuing an index — trace sample indices stay
/// globally unique, at the cost of index gaps equal to the refund count.
///
/// # Examples
///
/// ```
/// use cocco_engine::SampleBudget;
///
/// let b = SampleBudget::new(2);
/// assert_eq!(b.try_consume(), Some(0));
/// assert_eq!(b.try_consume(), Some(1));
/// assert_eq!(b.try_consume(), None);
/// assert!(b.is_exhausted());
/// ```
#[derive(Debug)]
pub struct SampleBudget {
    /// Samples currently charged against the limit (consumed − refunded).
    spent: AtomicU64,
    /// Sample indices handed out; monotone, so indices stay unique across
    /// refunds.
    issued: AtomicU64,
    limit: u64,
    /// Set by [`SampleBudget::revoke`]: the budget stops granting samples
    /// while `spent`/`used` keep reflecting real consumption.
    revoked: AtomicBool,
    parent: Option<Arc<SampleBudget>>,
}

impl SampleBudget {
    /// Creates a budget of `limit` evaluations.
    pub fn new(limit: u64) -> Self {
        Self {
            spent: AtomicU64::new(0),
            issued: AtomicU64::new(0),
            limit,
            revoked: AtomicBool::new(false),
            parent: None,
        }
    }

    /// Creates a sub-budget capped at `cap` that forwards consumption to
    /// `parent`; sample indices come from the parent, so traces stay
    /// globally ordered.
    pub fn slice(parent: Arc<SampleBudget>, cap: u64) -> Self {
        Self {
            spent: AtomicU64::new(0),
            issued: AtomicU64::new(0),
            limit: cap,
            revoked: AtomicBool::new(false),
            parent: Some(parent),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Evaluations charged so far (never exceeds the limit; refunds give
    /// capacity back).
    pub fn used(&self) -> u64 {
        self.spent.load(Ordering::Relaxed).min(self.limit)
    }

    /// Withdraws the budget's remaining capacity, as when a tenant's quota
    /// is revoked mid-run: every subsequent grant is denied while `used`
    /// keeps reflecting real consumption (so trace-length conservation
    /// holds). Returns the capacity denied, or 0 if already revoked.
    /// Idempotent; refunds of already-granted samples still land.
    pub fn revoke(&self) -> u64 {
        if self.revoked.swap(true, Ordering::Relaxed) {
            0
        } else {
            self.limit - self.used()
        }
    }

    /// True once [`SampleBudget::revoke`] has been called on this budget
    /// (ancestor revocations surface through denied grants instead).
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::Relaxed)
    }

    /// Charges one local sample against the limit, exactly (CAS loop: a
    /// concurrent failure never overshoots and a refund is never
    /// double-spent). Revoked budgets deny every charge.
    fn charge(&self) -> bool {
        if self.revoked.load(Ordering::Relaxed) {
            return false;
        }
        let mut spent = self.spent.load(Ordering::Relaxed);
        loop {
            if spent >= self.limit {
                return false;
            }
            match self.spent.compare_exchange_weak(
                spent,
                spent + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(current) => spent = current,
            }
        }
    }

    /// Returns up to `n` charged samples to this budget only (not the
    /// ancestors).
    fn refund_local(&self, n: u64) {
        let mut spent = self.spent.load(Ordering::Relaxed);
        loop {
            let next = spent.saturating_sub(n);
            match self.spent.compare_exchange_weak(
                spent,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(current) => spent = current,
            }
        }
    }

    /// Returns `n` unconsumed samples to this budget **and** every
    /// ancestor pool, so reserved-but-never-evaluated capacity becomes
    /// available again. The original sample indices are not re-issued
    /// (indices stay unique); refunding more than was consumed saturates
    /// at zero.
    pub fn refund(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.refund_local(n);
        if let Some(parent) = &self.parent {
            parent.refund(n);
        }
    }

    /// Consumes one evaluation, returning its 0-based index (from the
    /// outermost pool when sliced), or `None` when the budget — or any
    /// ancestor pool — is exhausted.
    pub fn try_consume(&self) -> Option<u64> {
        if !self.charge() {
            return None;
        }
        match &self.parent {
            None => Some(self.issued.fetch_add(1, Ordering::Relaxed)),
            Some(parent) => match parent.try_consume() {
                Some(global) => Some(global),
                None => {
                    self.refund_local(1);
                    None
                }
            },
        }
    }

    /// Pre-draws up to `n` samples as a [`SampleReservation`]. Taken
    /// samples are spent; whatever remains un-taken when the reservation
    /// drops is refunded to this budget and every ancestor.
    pub fn reserve(self: &Arc<Self>, n: u64) -> SampleReservation {
        let mut samples = Vec::with_capacity(usize::try_from(n).unwrap_or(0));
        for _ in 0..n {
            match self.try_consume() {
                Some(sample) => samples.push(sample),
                None => break,
            }
        }
        SampleReservation {
            budget: Arc::clone(self),
            samples,
            next: 0,
        }
    }

    /// `true` once the limit — or any ancestor pool — has been reached,
    /// or the budget has been revoked.
    pub fn is_exhausted(&self) -> bool {
        self.revoked.load(Ordering::Relaxed)
            || self.spent.load(Ordering::Relaxed) >= self.limit
            || self.parent.as_ref().is_some_and(|p| p.is_exhausted())
    }

    /// Remaining evaluations (0 once revoked).
    pub fn remaining(&self) -> u64 {
        if self.revoked.load(Ordering::Relaxed) {
            0
        } else {
            self.limit - self.used()
        }
    }
}

/// Funding drawn from a [`SampleBudget`] ahead of evaluation: a batch of
/// pre-consumed sample indices. Taking hands them out in draw order;
/// dropping the reservation refunds every un-taken sample to the budget
/// chain (slice and shared pool alike), so a driver abandoned mid-step
/// strands nothing.
#[derive(Debug)]
pub struct SampleReservation {
    budget: Arc<SampleBudget>,
    samples: Vec<u64>,
    next: usize,
}

impl SampleReservation {
    /// Takes the next reserved sample index, if any remain.
    pub fn take(&mut self) -> Option<u64> {
        let sample = self.samples.get(self.next).copied();
        if sample.is_some() {
            self.next += 1;
        }
        sample
    }

    /// Samples still available to take.
    pub fn remaining(&self) -> u64 {
        (self.samples.len() - self.next) as u64
    }

    /// Samples originally secured by the reservation.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the reservation secured no samples at all.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Refunds `n` samples that were *taken* from this reservation but
    /// whose evaluations were discarded (a quarantined batch). Goes to the
    /// reservation's budget and every ancestor — the Drop refund only
    /// covers un-taken samples, so discarded work must be returned
    /// explicitly to keep the zero-stranded-samples invariant.
    pub fn refund(&self, n: u64) {
        self.budget.refund(n);
    }
}

impl Drop for SampleReservation {
    fn drop(&mut self) {
        let unused = self.remaining();
        if unused > 0 {
            self.budget.refund(unused);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumes_up_to_limit() {
        let b = SampleBudget::new(3);
        assert_eq!(b.try_consume(), Some(0));
        assert_eq!(b.try_consume(), Some(1));
        assert_eq!(b.try_consume(), Some(2));
        assert_eq!(b.try_consume(), None);
        assert_eq!(b.used(), 3);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn concurrent_consumption_never_exceeds() {
        let b = std::sync::Arc::new(SampleBudget::new(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while b.try_consume().is_some() {
                    got += 1;
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(b.used(), 1000);
    }

    #[test]
    fn zero_budget_is_immediately_exhausted() {
        let b = SampleBudget::new(0);
        assert!(b.is_exhausted());
        assert_eq!(b.try_consume(), None);
    }

    #[test]
    fn slices_cap_and_forward() {
        let parent = std::sync::Arc::new(SampleBudget::new(5));
        let a = SampleBudget::slice(parent.clone(), 3);
        assert_eq!(a.try_consume(), Some(0));
        assert_eq!(a.try_consume(), Some(1));
        assert_eq!(a.try_consume(), Some(2));
        assert_eq!(a.try_consume(), None, "slice cap reached");
        assert_eq!(parent.used(), 3);
        let b = SampleBudget::slice(parent.clone(), 10);
        assert_eq!(b.try_consume(), Some(3));
        assert_eq!(b.try_consume(), Some(4));
        assert_eq!(b.try_consume(), None, "parent pool drained");
        assert!(b.is_exhausted());
        assert!(parent.is_exhausted());
    }

    #[test]
    fn concurrent_shared_budget_yields_unique_indices() {
        // N threads on one budget: every granted index is unique and the
        // total never exceeds the limit, even when threads keep hammering
        // after exhaustion.
        let b = std::sync::Arc::new(SampleBudget::new(777));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..400 {
                    if let Some(i) = b.try_consume() {
                        got.push(i);
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 777, "over- or under-consumed");
        all.dedup();
        assert_eq!(all.len(), 777, "duplicate sample indices granted");
        assert!(b.is_exhausted());
    }

    #[test]
    fn concurrent_slices_never_exceed_caps() {
        // Four slices of one parent, each hammered by two threads: no slice
        // exceeds its cap, the parent never exceeds its limit, and every
        // granted global index is unique.
        let parent = std::sync::Arc::new(SampleBudget::new(1_000));
        let slices: Vec<_> = (0..4)
            .map(|_| std::sync::Arc::new(SampleBudget::slice(parent.clone(), 300)))
            .collect();
        let mut handles = Vec::new();
        for slice in &slices {
            for _ in 0..2 {
                let slice = slice.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(i) = slice.try_consume() {
                        got.push(i);
                    }
                    got
                }));
            }
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        for slice in &slices {
            assert!(slice.used() <= 300, "slice exceeded its cap");
        }
        // 4 slices × 300 > 1000: the parent pool is the binding constraint.
        assert_eq!(parent.used(), 1_000);
        assert_eq!(all.len(), 1_000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1_000, "duplicate global indices");
    }

    #[test]
    fn concurrent_slice_cap_binds_when_parent_is_larger() {
        // One small slice of a big parent, hammered concurrently: the slice
        // cap binds exactly.
        let parent = std::sync::Arc::new(SampleBudget::new(1 << 20));
        let slice = std::sync::Arc::new(SampleBudget::slice(parent.clone(), 123));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let slice = slice.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while slice.try_consume().is_some() {
                    got += 1;
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 123);
        assert_eq!(slice.used(), 123);
        assert_eq!(parent.used(), 123);
    }

    #[test]
    fn refund_restores_capacity_without_reissuing_indices() {
        let b = std::sync::Arc::new(SampleBudget::new(4));
        assert_eq!(b.try_consume(), Some(0));
        assert_eq!(b.try_consume(), Some(1));
        b.refund(1);
        assert_eq!(b.used(), 1);
        // New consumption gets fresh indices — never a duplicate.
        assert_eq!(b.try_consume(), Some(2));
        assert_eq!(b.try_consume(), Some(3));
        assert_eq!(b.try_consume(), Some(4));
        assert_eq!(b.try_consume(), None, "limit still binds after refund");
        assert_eq!(b.used(), 4);
        // Over-refunding saturates instead of underflowing.
        b.refund(100);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn dropped_reservation_refunds_slice_and_pool() {
        let parent = std::sync::Arc::new(SampleBudget::new(10));
        let slice = std::sync::Arc::new(SampleBudget::slice(parent.clone(), 6));
        {
            let mut reservation = slice.reserve(4);
            assert_eq!(reservation.len(), 4);
            assert_eq!(parent.used(), 4);
            assert_eq!(slice.used(), 4);
            // Spend two of the four; the rest dies with the reservation.
            assert_eq!(reservation.take(), Some(0));
            assert_eq!(reservation.take(), Some(1));
            assert_eq!(reservation.remaining(), 2);
        }
        // Conservation: only the two taken samples stay charged, at both
        // the slice and the shared pool.
        assert_eq!(slice.used(), 2, "slice kept stranded samples");
        assert_eq!(parent.used(), 2, "pool kept stranded samples");
        // The refunded capacity is immediately reusable by another slice.
        let other = std::sync::Arc::new(SampleBudget::slice(parent.clone(), 10));
        let mut got = 0;
        while other.try_consume().is_some() {
            got += 1;
        }
        assert_eq!(got, 8, "refunded samples must be reusable");
        assert_eq!(parent.used(), 10);
    }

    #[test]
    fn reservation_conserves_total_budget() {
        // Reserve/take/drop cycles across several slices never create or
        // destroy budget: at the end, pool used == samples actually taken,
        // and the pool can still hand out exactly the remainder.
        let parent = std::sync::Arc::new(SampleBudget::new(100));
        let mut taken = 0u64;
        for round in 0..7u64 {
            let slice = std::sync::Arc::new(SampleBudget::slice(parent.clone(), 11));
            let mut reservation = slice.reserve(11);
            // Take a varying prefix, abandon the rest.
            for _ in 0..(round % 5) {
                if reservation.take().is_some() {
                    taken += 1;
                }
            }
        }
        assert_eq!(parent.used(), taken);
        let mut rest = 0u64;
        while parent.try_consume().is_some() {
            rest += 1;
        }
        assert_eq!(taken + rest, 100, "budget not conserved");
    }

    #[test]
    fn revoke_denies_grants_but_keeps_consumption_visible() {
        let b = SampleBudget::new(10);
        assert_eq!(b.try_consume(), Some(0));
        assert_eq!(b.try_consume(), Some(1));
        assert_eq!(b.revoke(), 8, "remaining capacity is denied");
        assert_eq!(b.revoke(), 0, "idempotent");
        assert!(b.is_revoked());
        assert!(b.is_exhausted());
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.try_consume(), None);
        assert_eq!(b.used(), 2, "real consumption stays visible");
        // Refunds of already-granted samples still land.
        b.refund(1);
        assert_eq!(b.used(), 1);
        assert_eq!(b.try_consume(), None, "still revoked after refund");
    }

    #[test]
    fn revoked_parent_denies_slices() {
        let parent = std::sync::Arc::new(SampleBudget::new(10));
        let slice = SampleBudget::slice(parent.clone(), 5);
        assert_eq!(slice.try_consume(), Some(0));
        parent.revoke();
        assert_eq!(slice.try_consume(), None, "parent revocation binds");
        assert!(slice.is_exhausted(), "exhaustion surfaces via the chain");
        assert!(!slice.is_revoked(), "the slice itself was not revoked");
        assert_eq!(slice.used(), 1);
    }

    #[test]
    fn reservation_refund_returns_taken_samples_to_the_chain() {
        let parent = std::sync::Arc::new(SampleBudget::new(10));
        let slice = std::sync::Arc::new(SampleBudget::slice(parent.clone(), 6));
        let mut reservation = slice.reserve(4);
        assert_eq!(reservation.take(), Some(0));
        assert_eq!(reservation.take(), Some(1));
        // The two taken evaluations are discarded (quarantined batch):
        // refund them explicitly, then let Drop refund the other two.
        reservation.refund(2);
        drop(reservation);
        assert_eq!(slice.used(), 0, "slice kept quarantined samples");
        assert_eq!(parent.used(), 0, "pool kept quarantined samples");
    }

    #[test]
    fn reservation_on_exhausted_pool_is_empty() {
        let parent = std::sync::Arc::new(SampleBudget::new(2));
        parent.try_consume();
        parent.try_consume();
        let slice = std::sync::Arc::new(SampleBudget::slice(parent.clone(), 5));
        let reservation = slice.reserve(3);
        assert!(reservation.is_empty());
        assert_eq!(reservation.remaining(), 0);
    }
}
