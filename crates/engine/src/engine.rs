//! The engine core: memoized scoring plus run statistics.
//!
//! Scoring is **subgraph-granular**: a partition's objective terms are
//! composed from per-subgraph scores that are memoized individually (see
//! [`EvalCache`]), and a caller that knows *which* subgraphs a mutation
//! touched ([`Engine::score_delta`]) re-derives only those terms — plus the
//! `next_wgt` predecessors whose prefetch input changed — while every
//! untouched term is copied from the previous evaluation's [`EvalMemo`].
//! All three paths (full evaluator, cached composition, memo reuse) are
//! bit-identical by construction: `Evaluator::eval_subgraph` is a pure
//! function and the roll-up is an in-order fold.
//!
//! Cache identity is carried by precomputed 128-bit subgraph fingerprints
//! ([`PartitionFingerprints`]): a memo stores the fingerprints of the
//! partition it scored, and scoring a mutated offspring re-fingerprints
//! only the dirty subgraphs — clean ones copy their fingerprint through a
//! stable member node in O(1). No evaluation path allocates a key or walks
//! a member vector to probe the cache.

use crate::arena::{ComposeScratch, EvalArena, L0Cache, ScratchPool};
use crate::cache::{EvalCache, EvalKey};
use crate::config::EngineConfig;
use crate::pool::EnginePool;
use cocco_graph::{BuildFpHasher, NodeId, NodeSetFp};
use cocco_partition::{
    Partition, PartitionDelta, PartitionFingerprints, PartitionLayout, SubgraphsView,
};
use cocco_sim::{BufferConfig, CostMetric, EvalOptions, Evaluator, SubgraphColumns, SubgraphStats};
use cocco_telemetry::{Histogram, MetricsSnapshot, Stopwatch, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One memoized partition evaluation: everything needed to reproduce the
/// objective cost under *any* objective (metric × Formula 1/2), so one
/// cache entry serves partition-only and co-exploration searches alike.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoredEval {
    /// Total DRAM traffic in bytes.
    pub ema_bytes: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Total bytes of the evaluated buffer configuration (Formula 2's
    /// `BUF_SIZE`).
    pub buffer_bytes: u64,
    /// Whether every subgraph fits the buffer configuration.
    pub fits: bool,
    /// `true` when the evaluator failed outright (a config bug, not a
    /// genuine misfit); such evaluations score infinite.
    pub error: bool,
}

impl ScoredEval {
    /// The raw metric value (infinite on evaluator errors).
    pub fn metric(&self, metric: CostMetric) -> f64 {
        if self.error {
            return f64::INFINITY;
        }
        match metric {
            CostMetric::Ema => self.ema_bytes as f64,
            CostMetric::Energy => self.energy_pj,
        }
    }

    /// The objective cost: Formula 1 (`alpha = None`) or Formula 2
    /// (`alpha = Some(α)`); infinite when the partition does not fit or the
    /// evaluator errored.
    pub fn cost(&self, metric: CostMetric, alpha: Option<f64>) -> f64 {
        if self.error || !self.fits {
            return f64::INFINITY;
        }
        match alpha {
            None => self.metric(metric),
            Some(alpha) => self.buffer_bytes as f64 + alpha * self.metric(metric),
        }
    }

    /// The evaluator-error sentinel under `buffer`.
    fn errored(buffer: &BufferConfig) -> Self {
        Self {
            ema_bytes: 0,
            energy_pj: 0.0,
            buffer_bytes: buffer.total_bytes(),
            fits: false,
            error: true,
        }
    }
}

/// A caught worker-job panic from [`Engine::try_dispatch`]: the panic
/// payload rendered as text. The engine itself remains fully usable — the
/// caller decides how to degrade (quarantine the batch, refund its
/// funding, surface a structured error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchPanic {
    /// The panic payload (`&str`/`String` payloads verbatim; anything else
    /// as an opaque marker).
    pub message: String,
}

impl std::fmt::Display for DispatchPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panic: {}", self.message)
    }
}

impl std::error::Error for DispatchPanic {}

/// How a freshly computed cache entry reaches the shared [`EvalCache`].
#[derive(Copy, Clone, Debug)]
enum Publish {
    /// Insert into the shared cache right away — the policy of every
    /// direct scoring entry point, so callers outside a batch observe
    /// their entries immediately.
    Immediate,
    /// Stage in the claimed slot's L0 queue, tagged with the funding-order
    /// sequence number of the job that computed it; the engine publishes
    /// all staged entries in ascending sequence order at the batch-end
    /// quiescent point of [`Engine::dispatch`]. Degrades to `Immediate`
    /// when the L0 layer is disabled ([`EngineConfig::l0`]).
    Deferred(u64),
}

/// The outcome of [`Engine::prepare_partition`] — the serial prefilter
/// half of the two-phase batch scoring protocol.
#[derive(Debug)]
pub enum PartitionProbe {
    /// The roll-up was already cached (L0 or shared): the score never has
    /// to pay pool dispatch.
    Hit(ScoredEval, Option<Arc<EvalMemo>>),
    /// A genuine miss; hand the carried state to
    /// [`Engine::score_prepared`] (typically from a pool worker).
    Miss(PreparedEval),
}

/// Key material carried from a [`Engine::prepare_partition`] miss to the
/// [`Engine::score_prepared`] call that computes it: the cache key and
/// fingerprints are derived exactly once, and the shared-cache miss was
/// counted exactly once (`score_prepared` recomputes without re-probing).
#[derive(Debug)]
pub struct PreparedEval {
    key: EvalKey,
    fps: PartitionFingerprints,
    /// Per-position dirty flags of a usable incremental hint (`None` when
    /// the hint was absent or unusable — `score_prepared` then composes
    /// from the caches without memo reuse).
    dirty: Option<Vec<bool>>,
}

/// Renders a panic payload as text (the same downcasts the std hook uses).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The additive objective terms of one subgraph — the cached unit of the
/// incremental evaluation path. A partition's [`ScoredEval`] is the
/// in-order sum (`ema_bytes`, `energy_pj`) and conjunction (`fits`) of its
/// subgraphs' scores.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubgraphScore {
    /// DRAM traffic of this subgraph in bytes.
    pub ema_bytes: u64,
    /// Energy of this subgraph in picojoules.
    pub energy_pj: f64,
    /// Whether this subgraph fits the buffer configuration.
    pub fits: bool,
}

/// One position of an [`EvalMemo`]: the subgraph's weight footprint (the
/// `next_wgt` its *predecessor* sees), the `next_wgt` this term was scored
/// under, and the term itself.
#[derive(Copy, Clone, Debug)]
pub(crate) struct MemoEntry {
    wgt_bytes: u64,
    next_wgt: u64,
    score: SubgraphScore,
}

/// A [`SubgraphsView`] the engine can also evaluate whole on the
/// non-incremental path: the nested reference representation goes through
/// `Evaluator::eval_partition`, the flat layout through the
/// struct-of-arrays batch scorer — the two produce bit-identical totals
/// (the batch scorer runs the identical pipeline; see `cocco-sim`).
trait ViewEval: SubgraphsView {
    /// Evaluates the whole partition, returning
    /// `(ema_bytes, energy_pj, fits)` or `Err(())` on structurally
    /// invalid input.
    fn eval_full(
        &self,
        evaluator: &Evaluator<'_>,
        buffer: &BufferConfig,
        options: EvalOptions,
        columns: &mut SubgraphColumns,
    ) -> Result<(u64, f64, bool), ()>;
}

impl ViewEval for [Vec<NodeId>] {
    fn eval_full(
        &self,
        evaluator: &Evaluator<'_>,
        buffer: &BufferConfig,
        options: EvalOptions,
        _columns: &mut SubgraphColumns,
    ) -> Result<(u64, f64, bool), ()> {
        match evaluator.eval_partition(self, buffer, options) {
            Ok(report) => Ok((report.ema_bytes, report.energy_pj, report.fits)),
            Err(_) => Err(()),
        }
    }
}

impl ViewEval for PartitionLayout<'_> {
    fn eval_full(
        &self,
        evaluator: &Evaluator<'_>,
        buffer: &BufferConfig,
        options: EvalOptions,
        columns: &mut SubgraphColumns,
    ) -> Result<(u64, f64, bool), ()> {
        if evaluator
            .eval_subgraph_batch(self.members(), self.offsets(), buffer, options, columns)
            .is_err()
        {
            return Err(());
        }
        // The same in-order fold `PartitionReport::from_parts` performs,
        // as tight loops over the contiguous columns.
        let mut ema_bytes: u64 = 0;
        for &bytes in &columns.ema_bytes {
            ema_bytes += bytes;
        }
        let mut energy_pj: f64 = 0.0;
        for &pj in &columns.energy_pj {
            energy_pj += pj;
        }
        let fits = columns.fits.iter().all(|&fit| fit);
        Ok((ema_bytes, energy_pj, fits))
    }
}

/// The per-subgraph breakdown of one scored partition, kept by searchers
/// (and stored with partition-level cache entries) so that scoring a
/// *mutated* copy of the genome re-derives only the subgraphs the mutation
/// (and its repair) touched.
///
/// A memo is pinned to its `(evaluator fingerprint, buffer, options)`
/// coordinates; [`Engine::score_delta`] silently falls back to the full
/// composition path when they do not match (e.g. after a DSE mutation
/// changed the buffer), so a memo recorded under *different coordinates*
/// can cost time but never correctness. Reuse of an individual term
/// additionally requires the term's recorded `next_wgt` to equal the new
/// successor's weight footprint — the one cross-subgraph coupling of the
/// cost model. The memo also carries the scored partition's
/// [`PartitionFingerprints`], the incremental state offspring
/// fingerprints are refreshed from.
///
/// The `dirty` flags handed to [`Engine::score_delta`], by contrast, are
/// a **trusted input**: a subgraph wrongly marked clean would copy a
/// stale fingerprint and thereby a stale cached score. Every in-tree
/// delta producer upholds the member-set invariant documented on
/// [`PartitionDelta`](cocco_partition::PartitionDelta) (mutation
/// operators and repair mark whole changed subgraphs; crossover diffs
/// fingerprints via `PartitionFingerprints::delta_against`), debug builds
/// assert each copied fingerprint against a from-scratch recomputation,
/// and the property suite walks random mutation/repair sequences — but a
/// new operator that under-reports dirt would be a correctness bug in
/// release builds, not a slowdown.
#[derive(Debug)]
pub struct EvalMemo {
    fingerprint: u64,
    buffer: BufferConfig,
    options: EvalOptions,
    /// Subgraph fingerprints of the scored partition (by position and by
    /// anchor node — the latter is what offspring copy clean fingerprints
    /// from).
    fps: PartitionFingerprints,
    entries: Vec<MemoEntry>,
    /// Subgraph fingerprint → position in `entries`; built lazily on the
    /// first lookup, because most scored genomes never become parents and
    /// their memos are never consulted.
    index: std::sync::OnceLock<HashMap<NodeSetFp, u32, BuildFpHasher>>,
}

impl EvalMemo {
    fn new(
        fingerprint: u64,
        buffer: BufferConfig,
        options: EvalOptions,
        fps: PartitionFingerprints,
        entries: Vec<MemoEntry>,
    ) -> Self {
        Self {
            fingerprint,
            buffer,
            options,
            fps,
            entries,
            index: std::sync::OnceLock::new(),
        }
    }

    fn matches(&self, fingerprint: u64, buffer: &BufferConfig, options: EvalOptions) -> bool {
        self.fingerprint == fingerprint && self.buffer == *buffer && self.options == options
    }

    fn lookup(&self, fp: NodeSetFp) -> Option<&MemoEntry> {
        let index = self.index.get_or_init(|| {
            self.fps
                .positions()
                .iter()
                .enumerate()
                .map(|(i, &fp)| (fp, i as u32))
                .collect()
        });
        index.get(&fp).map(|&i| &self.entries[i as usize])
    }

    /// The scored partition's subgraph fingerprints.
    pub fn fingerprints(&self) -> &PartitionFingerprints {
        &self.fps
    }

    /// Number of memoized subgraph terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the memo holds no terms.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Aggregate engine statistics of one exploration run.
///
/// Since the telemetry substrate landed, this type is a **compatibility
/// snapshot**: the authoritative collection point is
/// [`Engine::metrics`], which returns every counter under its
/// dot-separated metric name (plus whatever live telemetry recorded),
/// and [`Engine::stats`] is a fixed-field projection of that snapshot
/// via [`EngineStats::from_metrics`]. Existing callers — reports,
/// serialized `Exploration`s, tests — keep their stable shape.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Worker threads the engine resolved to.
    pub threads: u32,
    /// Partition-scoring requests served (cache hits + fresh evaluations).
    pub evals: u64,
    /// Requests answered from the partition roll-up cache.
    pub cache_hits: u64,
    /// Distinct cached partition roll-ups at snapshot time.
    pub cache_entries: u64,
    /// Partition roll-up entries evicted by generation sweeps.
    pub cache_evictions: u64,
    /// Full per-subgraph scorings: `eval_subgraph` terms computed fresh
    /// (on the non-incremental path, every subgraph of every computed
    /// partition counts here).
    pub subgraph_scorings: u64,
    /// Subgraph terms answered from the subgraph-level cache.
    pub subgraph_hits: u64,
    /// Subgraph terms copied straight from a caller's [`EvalMemo`] on the
    /// delta path (no key built, no cache queried).
    pub subgraph_reused: u64,
    /// Distinct cached subgraph terms at snapshot time.
    pub subgraph_entries: u64,
    /// Subgraph term entries evicted by generation sweeps.
    pub subgraph_evictions: u64,
    /// Per-probe key-material heap allocations — 0 on the fingerprint
    /// path; a regression tripwire asserted by the CI smoke benchmark.
    pub key_allocs: u64,
    /// Statistics misses that had to sort a copy of an out-of-order
    /// member list (see `Evaluator::stats_canonicalize_fallbacks`) — 0 on
    /// every production path, asserted by the CI smoke benchmark.
    pub stats_canonicalize_fallbacks: u64,
    /// The general hot-path allocation tripwire:
    /// `key_allocs + stats_canonicalize_fallbacks` — every instrumented
    /// way a warmed scoring dispatch could touch the allocator for
    /// per-probe material. 0 on the arena path, asserted by the CI smoke
    /// benchmark. (Values that *escape* the dispatch — memo entries,
    /// fingerprints, cache inserts — are inherent and not counted.)
    pub hot_allocs: u64,
    /// Wall-clock milliseconds spent inside batch evaluation.
    pub wall_ms: f64,
}

impl EngineStats {
    /// Projects the fixed legacy fields out of a metrics snapshot (see
    /// the type docs; inverse of [`Engine::metrics`]' absorption).
    pub fn from_metrics(m: &MetricsSnapshot) -> Self {
        Self {
            threads: m.gauge("engine.threads") as u32,
            evals: m.counter("engine.evals"),
            cache_hits: m.counter("engine.cache.partition.hits"),
            cache_entries: m.gauge("engine.cache.partition.entries"),
            cache_evictions: m.counter("engine.cache.partition.evictions"),
            subgraph_scorings: m.counter("engine.subgraph.scorings"),
            subgraph_hits: m.counter("engine.cache.subgraph.hits"),
            subgraph_reused: m.counter("engine.subgraph.reused"),
            subgraph_entries: m.gauge("engine.cache.subgraph.entries"),
            subgraph_evictions: m.counter("engine.cache.subgraph.evictions"),
            key_allocs: m.counter("engine.key_allocs"),
            stats_canonicalize_fallbacks: m.counter("engine.stats_canonicalize_fallbacks"),
            hot_allocs: m.counter("engine.hot_allocs"),
            wall_ms: m.gauge("engine.batch.wall_ns") as f64 / 1e6,
        }
    }

    /// Fraction of partition-scoring requests served from the roll-up
    /// cache.
    pub fn hit_rate(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.evals as f64
        }
    }

    /// Total subgraph-term requests (scorings + cache hits + memo reuses).
    pub fn subgraph_requests(&self) -> u64 {
        self.subgraph_scorings + self.subgraph_hits + self.subgraph_reused
    }

    /// Fraction of subgraph-term requests that avoided a full scoring
    /// (cache hit or memo reuse).
    pub fn subgraph_hit_rate(&self) -> f64 {
        let requests = self.subgraph_requests();
        if requests == 0 {
            0.0
        } else {
            (self.subgraph_hits + self.subgraph_reused) as f64 / requests as f64
        }
    }

    /// Total entries evicted across both cache levels.
    pub fn evictions(&self) -> u64 {
        self.cache_evictions + self.subgraph_evictions
    }
}

/// The parallel, memoized evaluation engine.
///
/// One engine is shared (via `Arc`) by every context derived from a search:
/// the worker pool parallelizes batch evaluation, the two-level cache
/// memoizes per-subgraph terms and whole-partition roll-ups across
/// searchers, generations and two-step inner runs, and the statistics feed
/// the exploration report.
///
/// # Examples
///
/// ```
/// use cocco_engine::{Engine, EngineConfig};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, EvalOptions, Evaluator};
///
/// let g = cocco_graph::models::chain(4);
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let engine = Engine::new(EngineConfig::serial());
/// let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
/// let buffer = BufferConfig::shared(1 << 20);
/// let a = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
/// let b = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
/// assert_eq!(a, b);
/// assert_eq!(engine.stats().cache_hits, 1);
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    pool: EnginePool,
    cache: EvalCache,
    /// Per-worker scoring scratch (layout arenas + composition buffers);
    /// one more slot than worker threads, claimed per scoring call.
    scratch: ScratchPool,
    wall_nanos: AtomicU64,
    /// Memo reuses on the delta path.
    reused: AtomicU64,
    /// Terms computed inside whole-partition (non-incremental) evaluations.
    bulk_scorings: AtomicU64,
    /// High-water mark of any evaluator's canonicalize-fallback count
    /// observed by this engine (see
    /// `Evaluator::stats_canonicalize_fallbacks`); 0 in production,
    /// folded into the `hot_allocs` tripwire.
    stats_fallbacks: AtomicU64,
    /// Probes answered by a worker-local L0 cache (`engine.cache.l0_hits`;
    /// both partition and subgraph levels). Engine-local — never a
    /// registry instrument, so cached probes stay zero-perturbation.
    l0_hits: AtomicU64,
    /// Entries staged for the batch-end funding-order drain
    /// (`engine.cache.l0_publishes`).
    l0_publishes: AtomicU64,
    /// Jobs handed to [`dispatch`](Self::dispatch)
    /// (`engine.pool.dispatched`) — on the prefiltered batch path this
    /// counts post-prefilter misses only, so a warmed run shows strictly
    /// fewer dispatched jobs than scored candidates.
    dispatched: AtomicU64,
    /// Chunked pool hand-offs (`engine.pool.chunks`): index claims the
    /// workers performed instead of one per job.
    chunks: AtomicU64,
    /// Batches the adaptive scheduler ran inline on the caller because
    /// the post-prefilter job count fell under
    /// [`EngineConfig::parallel_threshold`]
    /// (`engine.pool.inline_batches`).
    inline_batches: AtomicU64,
    /// Observation sink shared with the pool and cache; disabled by
    /// default ([`Engine::new`]), so nothing below ever pays more than a
    /// branch for it.
    telemetry: Telemetry,
    /// Per-batch dispatch latency (`engine.batch.latency_ns`); `None`
    /// when telemetry is disabled.
    batch_latency: Option<Histogram>,
    /// Per-batch scratch growth (`engine.batch.alloc_bytes`); `None`
    /// when telemetry is disabled.
    alloc_bytes: Option<Histogram>,
}

/// Bucket bounds of the `engine.batch.alloc_bytes` histogram: powers of
/// two from 64 B to 64 MiB (plus the automatic overflow bucket). Warmed
/// dispatches record 0 — growth only appears while arenas warm up.
const ALLOC_BOUNDS_BYTES: [u64; 21] = [
    1 << 6,
    1 << 7,
    1 << 8,
    1 << 9,
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    1 << 24,
    1 << 25,
    1 << 26,
];

impl Engine {
    /// Creates an engine with the given thread/pool/cache policy and an
    /// empty cache. Telemetry is disabled — the zero-overhead default.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_telemetry(config, Telemetry::disabled())
    }

    /// Like [`new`](Self::new), but instrumented: batch dispatches feed
    /// the `engine.batch.latency_ns` histogram and an `engine.batch`
    /// event, the pool records queue waits, and cache sweeps emit
    /// events. All of it is observation-only — scores, cache contents
    /// and scheduling are bit-identical to an uninstrumented engine.
    pub fn with_telemetry(config: EngineConfig, telemetry: Telemetry) -> Self {
        Self {
            config,
            pool: EnginePool::with_telemetry(&config, &telemetry),
            cache: EvalCache::with_capacity_telemetry(config.cache_capacity, telemetry.clone()),
            scratch: ScratchPool::new(config.resolved_threads() + 1),
            wall_nanos: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            bulk_scorings: AtomicU64::new(0),
            stats_fallbacks: AtomicU64::new(0),
            l0_hits: AtomicU64::new(0),
            l0_publishes: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            inline_batches: AtomicU64::new(0),
            batch_latency: telemetry.latency_histogram("engine.batch.latency_ns"),
            alloc_bytes: telemetry
                .registry()
                .map(|r| r.histogram("engine.batch.alloc_bytes", &ALLOC_BOUNDS_BYTES)),
            telemetry,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The telemetry handle this engine records through (disabled unless
    /// constructed via [`with_telemetry`](Self::with_telemetry)).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The worker pool.
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// The memoization cache.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Scores an ordered partition under `buffer`/`options`, memoized.
    ///
    /// Evaluator errors are folded into the result (`error = true`, so
    /// [`ScoredEval::cost`] is infinite) and memoized like any other
    /// evaluation — re-scoring a broken configuration is as cheap and as
    /// deterministic as re-scoring a good one.
    pub fn score(
        &self,
        evaluator: &Evaluator<'_>,
        subgraphs: &[Vec<NodeId>],
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> ScoredEval {
        self.score_composed(evaluator, subgraphs, buffer, options).0
    }

    /// Like [`score`](Self::score), but also returns the per-subgraph
    /// [`EvalMemo`]. Roll-up cache hits hand back the memo stored with the
    /// entry, so even a genome whose score came straight from the cache
    /// seeds its offspring's incremental hints (`None` only on the
    /// non-incremental path or for entries restored from a snapshot).
    pub fn score_composed(
        &self,
        evaluator: &Evaluator<'_>,
        subgraphs: &[Vec<NodeId>],
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        self.scratch.with_slot(|arena| {
            self.score_inner(
                evaluator,
                subgraphs,
                buffer,
                options,
                None,
                &mut arena.compose,
                &mut arena.l0,
                Publish::Immediate,
            )
        })
    }

    /// Scores a partition that differs from a previously scored one (whose
    /// breakdown is `memo`) only in the subgraphs flagged by `dirty`
    /// (aligned with `subgraphs`; a flag per execution position).
    ///
    /// Clean subgraphs reuse their memoized term directly — provided the
    /// recorded `next_wgt` still matches the new successor, which the
    /// engine verifies itself — so the evaluator-facing work is
    /// `O(|dirty|)` instead of `O(|partition|)`, and only dirty subgraphs
    /// are re-fingerprinted for the cache keys. Falls back to the full
    /// composition path (bit-identical results) when the memo's
    /// coordinates do not match or `dirty` is misaligned.
    ///
    /// `dirty` must satisfy the member-set invariant documented on
    /// [`PartitionDelta`](cocco_partition::PartitionDelta): a subgraph
    /// containing no dirty node must have exactly the member set it had in
    /// the memo's partition (debug builds assert this).
    pub fn score_delta(
        &self,
        evaluator: &Evaluator<'_>,
        subgraphs: &[Vec<NodeId>],
        buffer: &BufferConfig,
        options: EvalOptions,
        memo: &EvalMemo,
        dirty: &[bool],
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        let reuse = (self.config.incremental
            && dirty.len() == subgraphs.len()
            && memo.matches(evaluator.fingerprint(), buffer, options))
        .then_some((memo, dirty));
        self.scratch.with_slot(|arena| {
            self.score_inner(
                evaluator,
                subgraphs,
                buffer,
                options,
                reuse,
                &mut arena.compose,
                &mut arena.l0,
                Publish::Immediate,
            )
        })
    }

    /// Scores a [`Partition`] directly, materializing its member lists
    /// into this call's scratch slot — on the default arena arm
    /// ([`EngineConfig::arena`]) as a flat [`PartitionLayout`] built
    /// without per-candidate allocations; on the reference arm
    /// (`EngineConfig::without_arena`) as a freshly allocated
    /// `Vec<Vec<NodeId>>`. Results are bit-identical across arms: both
    /// views feed the identical fingerprinting, cache probing and
    /// composition fold through [`SubgraphsView`].
    ///
    /// `hint` carries the parent's memo plus the [`PartitionDelta`]
    /// recorded by mutation/repair; when it is usable (incremental
    /// engine, delta not all-dirty, matching memo coordinates and node
    /// count) the call takes the delta path — clean subgraphs reuse their
    /// memoized terms — otherwise it composes from the caches like
    /// [`score_composed`](Self::score_composed).
    pub fn score_partition(
        &self,
        evaluator: &Evaluator<'_>,
        partition: &Partition,
        buffer: &BufferConfig,
        options: EvalOptions,
        hint: Option<(&EvalMemo, &PartitionDelta)>,
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        self.score_partition_publish(
            evaluator,
            partition,
            buffer,
            options,
            hint,
            Publish::Immediate,
        )
    }

    /// Like [`score_partition`](Self::score_partition), but a freshly
    /// computed entry is *staged* in the claimed slot's L0 queue under
    /// `seq` — the candidate's funding-order sequence number — instead of
    /// being inserted into the shared cache mid-batch. The engine
    /// publishes every staged entry in ascending `seq` order at the end
    /// of the enclosing [`dispatch`](Self::dispatch), so the shared
    /// cache's insertion history is independent of thread count, chunking
    /// and slot assignment. Call this only from jobs running under
    /// `dispatch`/[`try_dispatch`](Self::try_dispatch); with the L0 layer
    /// disabled it behaves exactly like `score_partition`.
    pub fn score_partition_deferred(
        &self,
        seq: u64,
        evaluator: &Evaluator<'_>,
        partition: &Partition,
        buffer: &BufferConfig,
        options: EvalOptions,
        hint: Option<(&EvalMemo, &PartitionDelta)>,
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        self.score_partition_publish(
            evaluator,
            partition,
            buffer,
            options,
            hint,
            Publish::Deferred(seq),
        )
    }

    fn score_partition_publish(
        &self,
        evaluator: &Evaluator<'_>,
        partition: &Partition,
        buffer: &BufferConfig,
        options: EvalOptions,
        hint: Option<(&EvalMemo, &PartitionDelta)>,
        publish: Publish,
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        self.scratch.with_slot(|arena| {
            let EvalArena {
                layout,
                dirty,
                compose,
                l0,
            } = arena;
            let usable = hint.filter(|(memo, delta)| {
                self.config.incremental
                    && !delta.is_all()
                    && delta.len() == partition.len()
                    && memo.matches(evaluator.fingerprint(), buffer, options)
            });
            if self.config.arena {
                let view = layout.build_from_partition(partition);
                let reuse = match usable {
                    Some((memo, delta)) => {
                        Self::project_dirty(&view, delta, dirty);
                        Some((memo, dirty.as_slice()))
                    }
                    None => None,
                };
                self.score_inner(
                    evaluator, &view, buffer, options, reuse, compose, l0, publish,
                )
            } else {
                let subgraphs = partition.subgraphs();
                let reuse = match usable {
                    Some((memo, delta)) => {
                        Self::project_dirty(subgraphs.as_slice(), delta, dirty);
                        Some((memo, dirty.as_slice()))
                    }
                    None => None,
                };
                self.score_inner(
                    evaluator,
                    subgraphs.as_slice(),
                    buffer,
                    options,
                    reuse,
                    compose,
                    l0,
                    publish,
                )
            }
        })
    }

    /// The serial prefilter half of two-phase batch scoring: derives the
    /// partition's fingerprints and cache key (through the claimed slot's
    /// scratch, exactly as [`score_partition`](Self::score_partition)
    /// would) and probes the L0 and shared caches. A
    /// [`PartitionProbe::Hit`] is the finished score — the candidate
    /// never has to be dispatched at all. A [`PartitionProbe::Miss`]
    /// carries the derived key material to
    /// [`score_prepared`](Self::score_prepared), which computes without
    /// re-probing (the miss was counted here, once).
    ///
    /// `hint` follows the same usability rules as `score_partition`; a
    /// usable hint's per-position dirty flags travel inside the returned
    /// [`PreparedEval`].
    pub fn prepare_partition(
        &self,
        evaluator: &Evaluator<'_>,
        partition: &Partition,
        buffer: &BufferConfig,
        options: EvalOptions,
        hint: Option<(&EvalMemo, &PartitionDelta)>,
    ) -> PartitionProbe {
        self.scratch.with_slot(|arena| {
            let EvalArena {
                layout, dirty, l0, ..
            } = arena;
            let usable = hint.filter(|(memo, delta)| {
                self.config.incremental
                    && !delta.is_all()
                    && delta.len() == partition.len()
                    && memo.matches(evaluator.fingerprint(), buffer, options)
            });
            let (fps, carried) = if self.config.arena {
                let view = layout.build_from_partition(partition);
                match usable {
                    Some((memo, delta)) => {
                        Self::project_dirty(&view, delta, dirty);
                        (
                            memo.fps.refresh_positions(&view, dirty),
                            Some(dirty.clone()),
                        )
                    }
                    None => (PartitionFingerprints::from_subgraphs(&view), None),
                }
            } else {
                let subgraphs = partition.subgraphs();
                match usable {
                    Some((memo, delta)) => {
                        Self::project_dirty(subgraphs.as_slice(), delta, dirty);
                        (
                            memo.fps.refresh_positions(subgraphs.as_slice(), dirty),
                            Some(dirty.clone()),
                        )
                    }
                    None => (
                        PartitionFingerprints::from_subgraphs(subgraphs.as_slice()),
                        None,
                    ),
                }
            };
            let key = EvalKey::partition(
                evaluator.fingerprint(),
                fps.positions().iter().copied(),
                buffer,
                options,
            );
            if let Some((cached, memo)) = self.probe_partition(l0, &key) {
                self.note_stats_fallbacks(evaluator);
                return PartitionProbe::Hit(cached, memo);
            }
            PartitionProbe::Miss(PreparedEval {
                key,
                fps,
                dirty: carried,
            })
        })
    }

    /// The compute half of two-phase batch scoring: finishes a
    /// [`PartitionProbe::Miss`] from
    /// [`prepare_partition`](Self::prepare_partition), reusing its key
    /// and fingerprints and staging the result under `seq` for the
    /// batch-end funding-order drain (see
    /// [`score_partition_deferred`](Self::score_partition_deferred)).
    ///
    /// `partition` and `hint` must be the values the probe was prepared
    /// from (`hint` may only have been dropped, not substituted); the
    /// layout is rebuilt into this call's slot — worker-local, so the
    /// prefilter thread's scratch is never shared across the dispatch.
    #[allow(clippy::too_many_arguments)]
    pub fn score_prepared(
        &self,
        seq: u64,
        evaluator: &Evaluator<'_>,
        partition: &Partition,
        buffer: &BufferConfig,
        options: EvalOptions,
        hint: Option<&EvalMemo>,
        prepared: PreparedEval,
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        let PreparedEval { key, fps, dirty } = prepared;
        let publish = Publish::Deferred(seq);
        self.scratch.with_slot(|arena| {
            let EvalArena {
                layout,
                compose,
                l0,
                ..
            } = arena;
            if self.config.arena {
                let view = layout.build_from_partition(partition);
                let reuse = match (&dirty, hint) {
                    (Some(flags), Some(memo)) => Some((memo, flags.as_slice())),
                    _ => None,
                };
                self.score_missed(
                    evaluator, &view, buffer, options, reuse, compose, l0, key, fps, publish,
                )
            } else {
                let subgraphs = partition.subgraphs();
                let reuse = match (&dirty, hint) {
                    (Some(flags), Some(memo)) => Some((memo, flags.as_slice())),
                    _ => None,
                };
                self.score_missed(
                    evaluator,
                    subgraphs.as_slice(),
                    buffer,
                    options,
                    reuse,
                    compose,
                    l0,
                    key,
                    fps,
                    publish,
                )
            }
        })
    }

    /// Projects node-level delta dirt onto per-subgraph flags in view
    /// order — the same flags `PartitionDelta::dirty_subgraphs` produces,
    /// written into reusable scratch instead of a fresh vector.
    fn project_dirty<S: SubgraphsView + ?Sized>(
        view: &S,
        delta: &PartitionDelta,
        out: &mut Vec<bool>,
    ) {
        out.clear();
        out.extend(
            (0..view.num_subgraphs())
                .map(|i| view.members_of(i).iter().any(|&m| delta.is_dirty(m))),
        );
    }

    /// Scores one subgraph as a standalone single-subgraph partition
    /// (`next_wgt = 0`) through the subgraph-term cache, without
    /// allocating an owned partition — the additive Formula-1 term used by
    /// the greedy/DP/enumeration hot loops.
    pub fn score_single(
        &self,
        evaluator: &Evaluator<'_>,
        members: &[NodeId],
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> ScoredEval {
        if members.is_empty() {
            return ScoredEval::errored(buffer);
        }
        let fp = NodeSetFp::of_members(members);
        let key = EvalKey::subgraph(evaluator.fingerprint(), fp, 0, buffer, options);
        self.scratch.with_slot(|arena| {
            let l0 = &mut arena.l0;
            let term = match self.probe_subgraph(l0, &key) {
                Some(term) => term,
                None => match evaluator.subgraph_stats_keyed(fp, members) {
                    Ok(stats) => {
                        let term = self.compute_term(evaluator, &stats, 0, buffer, options);
                        self.publish_subgraph(l0, Publish::Immediate, key, term);
                        term
                    }
                    Err(_) => return ScoredEval::errored(buffer),
                },
            };
            ScoredEval {
                ema_bytes: term.ema_bytes,
                energy_pj: term.energy_pj,
                buffer_bytes: buffer.total_bytes(),
                fits: term.fits,
                error: false,
            }
        })
    }

    /// Probes the partition roll-up hierarchy: the slot's lock-free L0
    /// first, then the shared shards (read-through: a shared hit is
    /// copied into the L0 so the next probe from this slot pays no lock).
    /// An L0 hit is credited to the shared hit counters — see
    /// `EvalCache::record_l0_partition_hit` — plus the engine-local
    /// `l0_hits`.
    fn probe_partition(
        &self,
        l0: &mut L0Cache,
        key: &EvalKey,
    ) -> Option<(ScoredEval, Option<Arc<EvalMemo>>)> {
        if self.config.l0 {
            if let Some((cached, memo)) = l0.get_partition(key) {
                self.cache.record_l0_partition_hit();
                self.l0_hits.fetch_add(1, Ordering::Relaxed);
                return Some((cached, memo));
            }
        }
        let (cached, memo) = self.cache.get_memoized(key)?;
        if self.config.l0 {
            l0.put_partition(*key, cached, memo.clone());
        }
        Some((cached, memo))
    }

    /// Probes the subgraph-term hierarchy (L0 before shared, with
    /// read-through; same accounting as
    /// [`probe_partition`](Self::probe_partition)).
    fn probe_subgraph(&self, l0: &mut L0Cache, key: &EvalKey) -> Option<SubgraphScore> {
        if self.config.l0 {
            if let Some(term) = l0.get_subgraph(key) {
                self.cache.record_l0_subgraph_hit();
                self.l0_hits.fetch_add(1, Ordering::Relaxed);
                return Some(term);
            }
        }
        let term = self.cache.get_subgraph(key)?;
        if self.config.l0 {
            l0.put_subgraph(*key, term);
        }
        Some(term)
    }

    /// Publishes a freshly computed roll-up per `publish` policy
    /// (deferred staging requires the L0 layer; otherwise the entry goes
    /// to the shared cache immediately, plus the L0 as read-through).
    fn publish_partition(
        &self,
        l0: &mut L0Cache,
        publish: Publish,
        key: EvalKey,
        scored: ScoredEval,
        memo: Option<Arc<EvalMemo>>,
    ) {
        match publish {
            Publish::Deferred(seq) if self.config.l0 => {
                self.l0_publishes.fetch_add(1, Ordering::Relaxed);
                l0.stage_partition(seq, key, scored, memo);
            }
            _ => {
                if self.config.l0 {
                    l0.put_partition(key, scored, memo.clone());
                }
                self.cache.insert_memoized(key, scored, memo);
            }
        }
    }

    /// Publishes a freshly computed subgraph term per `publish` policy.
    fn publish_subgraph(
        &self,
        l0: &mut L0Cache,
        publish: Publish,
        key: EvalKey,
        term: SubgraphScore,
    ) {
        match publish {
            Publish::Deferred(seq) if self.config.l0 => {
                self.l0_publishes.fetch_add(1, Ordering::Relaxed);
                l0.stage_subgraph(seq, key, term);
            }
            _ => {
                if self.config.l0 {
                    l0.put_subgraph(key, term);
                }
                self.cache.insert_subgraph(key, term);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn score_inner<S: ViewEval + ?Sized>(
        &self,
        evaluator: &Evaluator<'_>,
        subgraphs: &S,
        buffer: &BufferConfig,
        options: EvalOptions,
        reuse: Option<(&EvalMemo, &[bool])>,
        scratch: &mut ComposeScratch,
        l0: &mut L0Cache,
        publish: Publish,
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        // Subgraph fingerprints: clean positions copy the memo's
        // incrementally maintained fingerprint in O(1); dirty (or
        // memo-less) positions re-fingerprint from their members. This is
        // the only place key material is derived — everything downstream
        // folds these fixed-size values.
        let fps = match reuse {
            Some((memo, dirty)) => memo.fps.refresh_positions(subgraphs, dirty),
            None => PartitionFingerprints::from_subgraphs(subgraphs),
        };
        let key = EvalKey::partition(
            evaluator.fingerprint(),
            fps.positions().iter().copied(),
            buffer,
            options,
        );
        if let Some((cached, memo)) = self.probe_partition(l0, &key) {
            self.note_stats_fallbacks(evaluator);
            return (cached, memo);
        }
        self.score_missed(
            evaluator, subgraphs, buffer, options, reuse, scratch, l0, key, fps, publish,
        )
    }

    /// The compute tail of a partition-cache miss: compose (incremental)
    /// or bulk-evaluate, then publish under `key`. Shared by
    /// [`score_inner`](Self::score_inner) and
    /// [`score_prepared`](Self::score_prepared) — the miss itself was
    /// already counted by whoever probed.
    #[allow(clippy::too_many_arguments)]
    fn score_missed<S: ViewEval + ?Sized>(
        &self,
        evaluator: &Evaluator<'_>,
        subgraphs: &S,
        buffer: &BufferConfig,
        options: EvalOptions,
        reuse: Option<(&EvalMemo, &[bool])>,
        scratch: &mut ComposeScratch,
        l0: &mut L0Cache,
        key: EvalKey,
        fps: PartitionFingerprints,
        publish: Publish,
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        let (scored, memo) = if self.config.incremental {
            self.compose(
                evaluator, subgraphs, fps, buffer, options, reuse, scratch, l0, publish,
            )
        } else {
            let scored = match subgraphs.eval_full(evaluator, buffer, options, &mut scratch.columns)
            {
                Ok((ema_bytes, energy_pj, fits)) => {
                    self.bulk_scorings
                        .fetch_add(subgraphs.num_subgraphs() as u64, Ordering::Relaxed);
                    ScoredEval {
                        ema_bytes,
                        energy_pj,
                        buffer_bytes: buffer.total_bytes(),
                        fits,
                        error: false,
                    }
                }
                Err(()) => ScoredEval::errored(buffer),
            };
            (scored, None)
        };
        self.publish_partition(l0, publish, key, scored, memo.clone());
        self.note_stats_fallbacks(evaluator);
        (scored, memo)
    }

    /// Folds the evaluator's canonicalize-fallback count into the
    /// engine's `hot_allocs` tripwire (high-water mark across the
    /// evaluators this engine has scored with; free while the count stays
    /// 0, the production invariant).
    fn note_stats_fallbacks(&self, evaluator: &Evaluator<'_>) {
        let fallbacks = evaluator.stats_canonicalize_fallbacks();
        if fallbacks != 0 {
            self.stats_fallbacks.fetch_max(fallbacks, Ordering::Relaxed);
        }
    }

    /// Computes one fresh `eval_subgraph` term, counted as a full scoring
    /// via the subgraph cache's miss counter (the caller just missed).
    fn compute_term(
        &self,
        evaluator: &Evaluator<'_>,
        stats: &SubgraphStats,
        next_wgt: u64,
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> SubgraphScore {
        let part = evaluator.eval_subgraph(stats, next_wgt, buffer, options);
        SubgraphScore {
            ema_bytes: part.ema_bytes,
            energy_pj: part.energy_pj,
            fits: part.fits,
        }
    }

    /// Composes a partition score from per-subgraph terms, reusing the
    /// caller's memo for clean positions and the subgraph-term cache for
    /// everything else. The fold runs in execution order, so the sums are
    /// bit-identical to `Evaluator::eval_partition`.
    #[allow(clippy::too_many_arguments)]
    fn compose<S: SubgraphsView + ?Sized>(
        &self,
        evaluator: &Evaluator<'_>,
        subgraphs: &S,
        fps: PartitionFingerprints,
        buffer: &BufferConfig,
        options: EvalOptions,
        reuse: Option<(&EvalMemo, &[bool])>,
        scratch: &mut ComposeScratch,
        l0: &mut L0Cache,
        publish: Publish,
    ) -> (ScoredEval, Option<Arc<EvalMemo>>) {
        if subgraphs.no_subgraphs() || subgraphs.any_empty() {
            return (ScoredEval::errored(buffer), None);
        }
        let n = subgraphs.num_subgraphs();
        // Memoized entry per clean position (fingerprint present in the
        // memo); `MemoEntry` is `Copy`, so the scratch holds copies and
        // the memo borrow ends here.
        scratch.entries.clear();
        scratch.entries.extend((0..n).map(|i| match reuse {
            Some((memo, dirty)) if !dirty[i] => memo.lookup(fps.positions()[i]).copied(),
            _ => None,
        }));
        // Weight footprints drive the next_wgt chain; dirty positions need
        // their (evaluator-cached) statistics, clean ones read the memo.
        scratch.stats_of.clear();
        scratch.stats_of.resize(n, None);
        scratch.wgts.clear();
        for i in 0..n {
            match scratch.entries[i] {
                Some(entry) => scratch.wgts.push(entry.wgt_bytes),
                None => {
                    match evaluator
                        .subgraph_stats_keyed(fps.positions()[i], subgraphs.members_of(i))
                    {
                        Ok(stats) => {
                            scratch.wgts.push(stats.ema_wgt_bytes);
                            scratch.stats_of[i] = Some(stats);
                        }
                        Err(_) => return (ScoredEval::errored(buffer), None),
                    }
                }
            }
        }
        let mut ema_bytes: u64 = 0;
        let mut energy_pj: f64 = 0.0;
        let mut fits = true;
        // The one hot-path vector that escapes: it becomes the memo's
        // entry list inside the returned `Arc<EvalMemo>`.
        let mut memo_entries = Vec::with_capacity(n);
        for i in 0..n {
            let next_wgt = if i + 1 < n { scratch.wgts[i + 1] } else { 0 };
            let score = match scratch.entries[i] {
                Some(entry) if entry.next_wgt == next_wgt => {
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    entry.score
                }
                _ => {
                    let key = EvalKey::subgraph(
                        evaluator.fingerprint(),
                        fps.positions()[i],
                        next_wgt,
                        buffer,
                        options,
                    );
                    match self.probe_subgraph(l0, &key) {
                        Some(term) => term,
                        None => {
                            let stats = match scratch.stats_of[i] {
                                Some(stats) => stats,
                                // A clean entry whose next_wgt changed: its
                                // statistics were computed before, so this
                                // is an evaluator-cache hit.
                                None => match evaluator.subgraph_stats_keyed(
                                    fps.positions()[i],
                                    subgraphs.members_of(i),
                                ) {
                                    Ok(stats) => stats,
                                    Err(_) => return (ScoredEval::errored(buffer), None),
                                },
                            };
                            let term =
                                self.compute_term(evaluator, &stats, next_wgt, buffer, options);
                            self.publish_subgraph(l0, publish, key, term);
                            term
                        }
                    }
                }
            };
            ema_bytes += score.ema_bytes;
            energy_pj += score.energy_pj;
            fits &= score.fits;
            memo_entries.push(MemoEntry {
                wgt_bytes: scratch.wgts[i],
                next_wgt,
                score,
            });
        }
        let scored = ScoredEval {
            ema_bytes,
            energy_pj,
            buffer_bytes: buffer.total_bytes(),
            fits,
            error: false,
        };
        let memo = EvalMemo::new(evaluator.fingerprint(), *buffer, options, fps, memo_entries);
        (scored, Some(Arc::new(memo)))
    }

    /// Runs `job(i)` for every `i` in `0..jobs` on the worker pool,
    /// timing the batch: the elapsed wall time accumulates into
    /// [`EngineStats::wall_ms`], and — when telemetry is enabled — also
    /// lands in the `engine.batch.latency_ns` histogram plus an
    /// `engine.batch` event. This is the one timed dispatch path; search
    /// code calls this instead of timing `pool().run` itself, which is
    /// what lets the audit confine wall-clock reads to `cocco-telemetry`.
    pub fn dispatch(&self, jobs: usize, job: impl Fn(usize) + Sync) {
        // Scratch growth across the batch (dispatch boundaries are
        // quiescent, so the slot sum is exact); warmed batches record 0.
        let bytes_before = self.alloc_bytes.as_ref().map(|_| self.scratch.bytes());
        let sw = Stopwatch::start();
        self.dispatched.fetch_add(jobs as u64, Ordering::Relaxed);
        if jobs > 1 && self.pool.threads() > 1 && jobs < self.config.parallel_threshold {
            // Adaptive serial fallback: under the measured threshold, pool
            // hand-off costs more than it buys — run inline on the caller,
            // in index order (exactly the serial pool's schedule).
            self.inline_batches.fetch_add(1, Ordering::Relaxed);
            for i in 0..jobs {
                job(i);
            }
        } else {
            let chunk = self.config.resolved_chunk(jobs);
            if chunk <= 1 {
                self.pool.run(jobs, job);
            } else {
                // Chunked hand-off: one index claim covers `chunk`
                // consecutive jobs. Within a chunk jobs run in index
                // order, so the serial pool's overall order is unchanged.
                let chunk_count = jobs.div_ceil(chunk);
                self.chunks.fetch_add(chunk_count as u64, Ordering::Relaxed);
                self.pool.run(chunk_count, |c| {
                    let start = c * chunk;
                    for i in start..(start + chunk).min(jobs) {
                        job(i);
                    }
                });
            }
        }
        // Batch-end quiescent point: publish every entry the jobs staged
        // in their slots' L0 queues, in funding order.
        self.drain_published();
        let nanos = sw.elapsed_nanos();
        self.wall_nanos.fetch_add(nanos, Ordering::Relaxed);
        if let Some(hist) = &self.batch_latency {
            hist.record(nanos);
            self.telemetry.emit("engine.batch", || {
                vec![("jobs", jobs.into()), ("nanos", nanos.into())]
            });
        }
        if let (Some(hist), Some(before)) = (&self.alloc_bytes, bytes_before) {
            hist.record(self.scratch.bytes().saturating_sub(before));
        }
    }

    /// Like [`dispatch`](Self::dispatch), but a panic from any job — a
    /// worker dying on a poisoned invariant, an injected fault — is caught
    /// and returned as a structured [`DispatchPanic`] instead of unwinding
    /// through the caller. Every pool mode already delivers worker panics
    /// to the dispatching thread (serial runs inline; scoped scopes
    /// re-raise on join; persistent workers forward the payload and stay
    /// alive), so catching here covers all three — and the engine stays
    /// fully usable afterwards: the pool keeps its threads and the cache
    /// tolerates poisoned shards.
    pub fn try_dispatch(
        &self,
        jobs: usize,
        job: impl Fn(usize) + Sync,
    ) -> Result<(), DispatchPanic> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.dispatch(jobs, job))).map_err(
            |payload| DispatchPanic {
                message: panic_message(payload.as_ref()),
            },
        )
    }

    /// Publishes every staged L0 entry to the shared cache, in ascending
    /// funding-order sequence (ties — the entries of one job — keep
    /// their slot-local compute order, which is deterministic). Runs at
    /// the batch-end quiescent point of [`dispatch`](Self::dispatch);
    /// entries left staged by a panicked batch are pure values and are
    /// simply published by the next batch's drain.
    fn drain_published(&self) {
        if !self.config.l0 {
            return;
        }
        let (mut partitions, mut subgraphs) = self.scratch.drain_pending();
        if partitions.is_empty() && subgraphs.is_empty() {
            return;
        }
        // Vec-collected and stable-sorted by sequence number — no map
        // iteration order reaches the shared cache.
        subgraphs.sort_by_key(|entry| entry.0);
        partitions.sort_by_key(|entry| entry.0);
        for (_, key, term) in subgraphs {
            self.cache.insert_subgraph(key, term);
        }
        for (_, key, scored, memo) in partitions {
            self.cache.insert_memoized(key, scored, memo);
        }
    }

    /// Adds `elapsed` to the accumulated batch wall time (callers that
    /// time a region themselves — e.g. via a telemetry `Stopwatch` —
    /// rather than going through [`dispatch`](Self::dispatch)).
    pub fn record_wall(&self, elapsed: Duration) {
        self.wall_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The authoritative metrics snapshot: everything live telemetry
    /// recorded (batch/queue histograms, sweep events' counters) plus
    /// the engine's own counters absorbed under their metric names —
    /// `engine.evals`, `engine.cache.{partition,subgraph}.*`,
    /// `engine.subgraph.*`, `engine.key_allocs`,
    /// `engine.stats_canonicalize_fallbacks`, `engine.hot_allocs`,
    /// `engine.arena.{bytes,reuses,grows}`, `engine.threads`,
    /// `engine.batch.wall_ns`. Works with telemetry disabled (the
    /// absorbed names are always present).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.telemetry.snapshot();
        let hits = self.cache.hits();
        let misses = self.cache.misses();
        m.set_gauge("engine.threads", self.pool.threads() as u64);
        m.set_counter("engine.evals", hits + misses);
        m.set_counter("engine.cache.partition.hits", hits);
        m.set_counter("engine.cache.partition.misses", misses);
        m.set_gauge(
            "engine.cache.partition.entries",
            self.cache.partition_entries() as u64,
        );
        m.set_counter("engine.cache.partition.evictions", self.cache.evictions());
        m.set_counter("engine.cache.subgraph.hits", self.cache.subgraph_hits());
        m.set_counter("engine.cache.subgraph.misses", self.cache.subgraph_misses());
        m.set_gauge(
            "engine.cache.subgraph.entries",
            self.cache.subgraph_entries() as u64,
        );
        m.set_counter(
            "engine.cache.subgraph.evictions",
            self.cache.subgraph_evictions(),
        );
        m.set_counter(
            "engine.subgraph.scorings",
            self.cache.subgraph_misses() + self.bulk_scorings.load(Ordering::Relaxed),
        );
        m.set_counter(
            "engine.subgraph.reused",
            self.reused.load(Ordering::Relaxed),
        );
        m.set_counter("engine.key_allocs", self.cache.key_allocs());
        let fallbacks = self.stats_fallbacks.load(Ordering::Relaxed);
        m.set_counter("engine.stats_canonicalize_fallbacks", fallbacks);
        m.set_counter("engine.hot_allocs", self.cache.key_allocs() + fallbacks);
        m.set_gauge("engine.arena.bytes", self.scratch.bytes());
        m.set_counter("engine.arena.reuses", self.scratch.reuses());
        m.set_counter("engine.arena.grows", self.scratch.grows());
        m.set_counter("engine.cache.l0_hits", self.l0_hits.load(Ordering::Relaxed));
        m.set_counter(
            "engine.cache.l0_publishes",
            self.l0_publishes.load(Ordering::Relaxed),
        );
        m.set_counter(
            "engine.pool.dispatched",
            self.dispatched.load(Ordering::Relaxed),
        );
        m.set_counter("engine.pool.chunks", self.chunks.load(Ordering::Relaxed));
        m.set_counter(
            "engine.pool.inline_batches",
            self.inline_batches.load(Ordering::Relaxed),
        );
        m.set_gauge(
            "engine.batch.wall_ns",
            self.wall_nanos.load(Ordering::Relaxed),
        );
        m
    }

    /// A snapshot of the engine statistics — the legacy fixed-field view
    /// of [`metrics`](Self::metrics).
    pub fn stats(&self) -> EngineStats {
        EngineStats::from_metrics(&self.metrics())
    }
}

// The whole point of the engine is cross-thread sharing; fail the build if
// a field ever regresses that.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Engine>();
    assert_sync_send::<EvalMemo>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_sim::AcceleratorConfig;

    #[test]
    fn try_dispatch_catches_panics_and_leaves_the_engine_usable() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buffer = BufferConfig::shared(1 << 20);
        let subgraphs: Vec<Vec<NodeId>> = g.node_ids().map(|id| vec![id]).collect();
        for config in [EngineConfig::serial(), EngineConfig::with_threads(2)] {
            let engine = Engine::new(config);
            let baseline = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
            let err = engine
                .try_dispatch(4, |i| {
                    if i == 2 {
                        panic!("injected worker panic");
                    }
                })
                .expect_err("job 2 panics");
            assert!(err.message.contains("injected worker panic"), "{err}");
            // The engine survives: same pool, same cache, same results.
            engine.try_dispatch(4, |_| {}).expect("pool stays usable");
            let again = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
            assert_eq!(again, baseline);
        }
    }

    #[test]
    fn score_matches_direct_evaluation() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let subgraphs: Vec<Vec<NodeId>> = g.node_ids().map(|id| vec![id]).collect();
        let buffer = BufferConfig::shared(1 << 20);
        let scored = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
        let report = eval
            .eval_partition(&subgraphs, &buffer, EvalOptions::default())
            .unwrap();
        assert_eq!(scored.ema_bytes, report.ema_bytes);
        assert_eq!(scored.energy_pj, report.energy_pj);
        assert_eq!(scored.fits, report.fits);
        assert_eq!(
            scored.cost(CostMetric::Ema, None),
            report.cost_formula1(CostMetric::Ema)
        );
        assert_eq!(
            scored.cost(CostMetric::Energy, Some(0.002)),
            report.cost_formula2(CostMetric::Energy, 0.002)
        );
    }

    #[test]
    fn incremental_and_full_paths_are_bit_identical() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let incremental = Engine::new(EngineConfig::serial());
        let full = Engine::new(EngineConfig::serial().without_incremental());
        let buffer = BufferConfig::shared(1 << 20);
        for l in [1usize, 3, 7] {
            let p = cocco_partition::repair(
                &g,
                cocco_partition::Partition::depth_groups(&g, l),
                &|_| true,
            );
            let subgraphs = p.subgraphs();
            let a = incremental.score(&eval, &subgraphs, &buffer, EvalOptions::default());
            let b = full.score(&eval, &subgraphs, &buffer, EvalOptions::default());
            assert_eq!(a, b, "L={l}");
        }
        assert!(full.stats().subgraph_scorings > 0);
        assert_eq!(full.stats().subgraph_hits, 0, "full path bypasses terms");
    }

    #[test]
    fn score_delta_reuses_untouched_terms() {
        let g = cocco_graph::models::chain(7); // 8 nodes, one path
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        // Pairs: {0,1} {2,3} {4,5} {6,7}.
        let ids: Vec<NodeId> = g.node_ids().collect();
        let base: Vec<Vec<NodeId>> = ids.chunks(2).map(|c| c.to_vec()).collect();
        let (scored, memo) = engine.score_composed(&eval, &base, &buffer, options);
        let memo = memo.expect("composed this call");
        assert_eq!(memo.len(), 4);
        assert!(!scored.error);

        // Mutate the last subgraph only: split {6,7} into {6} {7}.
        let mut mutated = base[..3].to_vec();
        mutated.push(vec![ids[6]]);
        mutated.push(vec![ids[7]]);
        let dirty = [false, false, false, true, true];
        let before = engine.stats();
        let (inc, new_memo) = engine.score_delta(&eval, &mutated, &buffer, options, &memo, &dirty);
        let after = engine.stats();
        assert!(new_memo.is_some());
        // Subgraphs 0 and 1 reuse their terms; subgraph 2's next_wgt
        // changed ({6,7} -> {6}), so it re-scores along with the two dirty
        // ones.
        assert_eq!(after.subgraph_reused - before.subgraph_reused, 2);
        let direct = eval.eval_partition(&mutated, &buffer, options).unwrap();
        assert_eq!(inc.ema_bytes, direct.ema_bytes);
        assert_eq!(inc.energy_pj, direct.energy_pj);
        assert_eq!(inc.fits, direct.fits);
        assert_eq!(after.key_allocs, 0, "the delta path must not build keys");
    }

    #[test]
    fn score_delta_with_stale_memo_falls_back() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let subgraphs: Vec<Vec<NodeId>> = g.node_ids().map(|id| vec![id]).collect();
        let small = BufferConfig::shared(1 << 20);
        let big = BufferConfig::shared(2 << 20);
        let options = EvalOptions::default();
        let (_, memo) = engine.score_composed(&eval, &subgraphs, &small, options);
        let memo = memo.unwrap();
        let dirty = vec![false; subgraphs.len()];
        // Different buffer: the memo must not be trusted.
        let (scored, _) = engine.score_delta(&eval, &subgraphs, &big, options, &memo, &dirty);
        let direct = eval.eval_partition(&subgraphs, &big, options).unwrap();
        assert_eq!(scored.energy_pj, direct.energy_pj);
        assert_eq!(engine.stats().subgraph_reused, 0);
    }

    #[test]
    fn roll_up_hits_hand_back_memos() {
        // The memo-on-hit path: a genome whose score comes from the
        // partition cache still receives the breakdown recorded with the
        // entry, so its offspring can take the delta path.
        let g = cocco_graph::models::chain(5);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let parts: Vec<Vec<NodeId>> = ids.chunks(2).map(|c| c.to_vec()).collect();
        let (first, first_memo) = engine.score_composed(&eval, &parts, &buffer, options);
        assert!(first_memo.is_some());
        let (second, second_memo) = engine.score_composed(&eval, &parts, &buffer, options);
        assert_eq!(first, second);
        assert_eq!(engine.stats().cache_hits, 1);
        let memo = second_memo.expect("roll-up hit must hand back the stored memo");
        assert_eq!(memo.len(), parts.len());
        // And the handed-back memo drives a working delta path.
        let dirty = vec![false; parts.len()];
        let (third, _) = engine.score_delta(&eval, &parts, &buffer, options, &memo, &dirty);
        assert_eq!(third, first);
    }

    #[test]
    fn score_single_matches_single_subgraph_partition() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let members: Vec<NodeId> = g.node_ids().collect();
        let buffer = BufferConfig::shared(1 << 20);
        let single = engine.score_single(&eval, &members, &buffer, EvalOptions::default());
        let via_partition = engine.score(
            &eval,
            std::slice::from_ref(&members),
            &buffer,
            EvalOptions::default(),
        );
        assert_eq!(single, via_partition);
        // And the second route reused the first's cached term.
        assert_eq!(engine.stats().subgraph_hits, 1);
        assert!(
            engine
                .score_single(&eval, &[], &buffer, EvalOptions::default())
                .error
        );
    }

    #[test]
    fn errors_are_memoized_and_infinite() {
        let g = cocco_graph::models::chain(2);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        // Empty subgraph: a structural evaluator error.
        let broken: Vec<Vec<NodeId>> = vec![Vec::new()];
        let buffer = BufferConfig::shared(1 << 20);
        let scored = engine.score(&eval, &broken, &buffer, EvalOptions::default());
        assert!(scored.error);
        assert!(scored.cost(CostMetric::Ema, None).is_infinite());
        assert!(scored.metric(CostMetric::Ema).is_infinite());
        let again = engine.score(&eval, &broken, &buffer, EvalOptions::default());
        assert_eq!(scored, again);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn stats_snapshot_counts() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::with_threads(2));
        let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
        let buffer = BufferConfig::shared(1 << 20);
        for _ in 0..3 {
            engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
        }
        engine.record_wall(Duration::from_millis(2));
        let stats = engine.stats();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.evals, 3);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_entries, 1);
        assert_eq!(stats.subgraph_scorings, 1);
        assert_eq!(stats.subgraph_entries, 1);
        assert_eq!(stats.cache_evictions, 0);
        assert_eq!(stats.subgraph_evictions, 0);
        assert_eq!(stats.key_allocs, 0);
        assert!(stats.wall_ms >= 2.0);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_cache_evicts_but_stays_exact() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        // A tiny budget forces sweeps while scoring many distinct
        // partitions; every re-score after an eviction must still be
        // bit-identical to an unbounded engine's answer.
        let bounded = Engine::new(EngineConfig::serial().with_cache_capacity(64));
        let unbounded = Engine::new(EngineConfig::serial());
        let buffer = BufferConfig::shared(1 << 20);
        for l in 1..=12usize {
            let p = cocco_partition::repair(
                &g,
                cocco_partition::Partition::depth_groups(&g, l),
                &|_| true,
            );
            let subgraphs = p.subgraphs();
            let a = bounded.score(&eval, &subgraphs, &buffer, EvalOptions::default());
            let b = unbounded.score(&eval, &subgraphs, &buffer, EvalOptions::default());
            assert_eq!(a, b, "L={l}");
        }
        let stats = bounded.stats();
        assert!(
            stats.subgraph_entries + stats.cache_entries <= 64,
            "entry budget exceeded: {} roll-ups + {} terms",
            stats.cache_entries,
            stats.subgraph_entries
        );
        assert!(stats.evictions() > 0, "the tiny budget must have evicted");
    }

    #[test]
    fn one_engine_shared_across_evaluators_never_cross_contaminates() {
        // chain(4) and diamond both index nodes 0..n, so without the
        // evaluator fingerprint in the key their whole-graph partitions
        // would collide in the cache.
        let chain = cocco_graph::models::chain(4);
        let diamond = cocco_graph::models::diamond();
        let chain_eval = Evaluator::new(&chain, AcceleratorConfig::default());
        let diamond_eval = Evaluator::new(&diamond, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        let chain_parts = vec![chain.node_ids().collect::<Vec<_>>()];
        // diamond has 5 nodes; take its first 5-node whole partition too.
        let diamond_parts = vec![diamond.node_ids().collect::<Vec<_>>()];
        let via_engine_chain = engine.score(&chain_eval, &chain_parts, &buffer, options);
        let via_engine_diamond = engine.score(&diamond_eval, &diamond_parts, &buffer, options);
        let direct_chain = chain_eval
            .eval_partition(&chain_parts, &buffer, options)
            .unwrap();
        let direct_diamond = diamond_eval
            .eval_partition(&diamond_parts, &buffer, options)
            .unwrap();
        assert_eq!(via_engine_chain.ema_bytes, direct_chain.ema_bytes);
        assert_eq!(via_engine_diamond.ema_bytes, direct_diamond.ema_bytes);
        assert_ne!(chain_eval.fingerprint(), diamond_eval.fingerprint());
        assert_eq!(engine.stats().cache_hits, 0, "distinct keys, no false hits");
        assert_eq!(engine.cache().partition_entries(), 2);
        assert_eq!(engine.stats().subgraph_hits, 0);
    }

    #[test]
    fn metrics_absorb_stats_and_time_batches() {
        let g = cocco_graph::models::chain(4);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let telemetry = Telemetry::enabled();
        let engine = Engine::with_telemetry(EngineConfig::serial(), telemetry.clone());
        let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
        let buffer = BufferConfig::shared(1 << 20);
        engine.dispatch(2, |_| {
            engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
        });
        let m = engine.metrics();
        // The compatibility snapshot and the absorbed names agree.
        let stats = engine.stats();
        assert_eq!(stats, EngineStats::from_metrics(&m));
        assert_eq!(m.counter("engine.evals"), stats.evals);
        assert_eq!(m.counter("engine.cache.partition.hits"), stats.cache_hits);
        assert_eq!(
            m.gauge("engine.cache.subgraph.entries"),
            stats.subgraph_entries
        );
        // The dispatch was timed into both wall_ms and the histogram.
        assert!(stats.wall_ms > 0.0);
        let hist = m.histogram("engine.batch.latency_ns").expect("registered");
        assert_eq!(hist.count, 1);
        // And the batch event fired.
        let events = telemetry.events();
        assert!(events.iter().any(|e| e.name == "engine.batch"));
    }

    #[test]
    fn disabled_telemetry_still_feeds_stats() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        assert!(!engine.telemetry().is_enabled());
        let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
        let buffer = BufferConfig::shared(1 << 20);
        engine.dispatch(1, |_| {
            engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
        });
        let stats = engine.stats();
        assert_eq!(stats.evals, 1);
        assert!(
            stats.wall_ms > 0.0,
            "dispatch timing works without telemetry"
        );
        assert!(engine
            .metrics()
            .histogram("engine.batch.latency_ns")
            .is_none());
    }

    #[test]
    fn cached_leaf_probes_record_no_telemetry() {
        // The zero-perturbation contract on the hot leaf: a cached
        // `score_single` probe must not emit events, bump histograms, or
        // touch the registry even with telemetry ENABLED — so the
        // disabled path is trivially free too.
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let telemetry = Telemetry::enabled();
        let engine = Engine::with_telemetry(EngineConfig::serial(), telemetry.clone());
        let members: Vec<NodeId> = g.node_ids().collect();
        let buffer = BufferConfig::shared(1 << 20);
        engine.score_single(&eval, &members, &buffer, EvalOptions::default());
        let events_before = telemetry.events().len();
        let snap_before = telemetry.snapshot();
        for _ in 0..100 {
            engine.score_single(&eval, &members, &buffer, EvalOptions::default());
        }
        assert_eq!(telemetry.events().len(), events_before);
        assert_eq!(telemetry.snapshot(), snap_before);
    }

    #[test]
    fn score_partition_arms_are_bit_identical() {
        // The flat arena arm and the nested reference arm must agree on
        // every path: cold compose, cache hit, delta hint, and the
        // non-incremental batch scorer.
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        for incremental in [true, false] {
            let base_cfg = if incremental {
                EngineConfig::serial()
            } else {
                EngineConfig::serial().without_incremental()
            };
            let arena = Engine::new(base_cfg);
            let reference = Engine::new(base_cfg.without_arena());
            for l in [1usize, 3, 7] {
                let p = cocco_partition::repair(
                    &g,
                    cocco_partition::Partition::depth_groups(&g, l),
                    &|_| true,
                );
                let (a, memo_a) = arena.score_partition(&eval, &p, &buffer, options, None);
                let (b, memo_b) = reference.score_partition(&eval, &p, &buffer, options, None);
                assert_eq!(a, b, "L={l} incremental={incremental}");
                assert_eq!(memo_a.is_some(), memo_b.is_some());
                // And both agree with the legacy nested entry point.
                let via_slices = arena.score(&eval, &p.subgraphs(), &buffer, options);
                assert_eq!(a, via_slices, "cache-keyed identity across entry points");
            }
        }
    }

    #[test]
    fn score_partition_delta_hint_reuses_terms() {
        let g = cocco_graph::models::chain(7);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        let ids: Vec<NodeId> = g.node_ids().collect();
        // Pairs {0,1} {2,3} {4,5} {6,7} as a partition assignment.
        let p = cocco_partition::Partition::from_assignment(vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let (scored, memo) = engine.score_partition(&eval, &p, &buffer, options, None);
        let memo = memo.expect("composed this call");
        assert!(!scored.error);
        // Split the last pair; mark exactly its members dirty.
        let mutated = cocco_partition::Partition::from_assignment(vec![0, 0, 1, 1, 2, 2, 3, 4]);
        let mut delta = PartitionDelta::clean(8);
        delta.touch_members(&[ids[6], ids[7]]);
        let before = engine.stats();
        let (inc, _) =
            engine.score_partition(&eval, &mutated, &buffer, options, Some((&memo, &delta)));
        let after = engine.stats();
        assert_eq!(after.subgraph_reused - before.subgraph_reused, 2);
        let direct = eval
            .eval_partition(&mutated.subgraphs(), &buffer, options)
            .unwrap();
        assert_eq!(inc.ema_bytes, direct.ema_bytes);
        assert_eq!(inc.energy_pj, direct.energy_pj);
        assert_eq!(after.hot_allocs, 0, "arena delta path must stay clean");
    }

    #[test]
    fn arena_metrics_report_reuse_after_warmup() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let buffer = BufferConfig::shared(1 << 20);
        let p =
            cocco_partition::repair(&g, cocco_partition::Partition::depth_groups(&g, 3), &|_| {
                true
            });
        // Distinct options defeat the partition cache so every call
        // rebuilds the layout into the warmed arena.
        for batch in 1..=8u32 {
            engine.score_partition(&eval, &p, &buffer, EvalOptions::with_batch(batch), None);
        }
        let m = engine.metrics();
        assert!(m.gauge("engine.arena.bytes") > 0);
        assert!(
            m.counter("engine.arena.reuses") >= 6,
            "warmed builds must reuse capacity: {} reuses, {} grows",
            m.counter("engine.arena.reuses"),
            m.counter("engine.arena.grows")
        );
        assert_eq!(m.counter("engine.hot_allocs"), 0);
        assert_eq!(m.counter("engine.stats_canonicalize_fallbacks"), 0);
        let stats = engine.stats();
        assert_eq!(stats.hot_allocs, 0);
        assert_eq!(stats.stats_canonicalize_fallbacks, 0);
    }

    #[test]
    fn batch_alloc_bytes_histogram_records_warmed_zero() {
        let g = cocco_graph::models::chain(6);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let telemetry = Telemetry::enabled();
        let engine = Engine::with_telemetry(EngineConfig::serial(), telemetry);
        let buffer = BufferConfig::shared(1 << 20);
        let p = cocco_partition::Partition::from_assignment(vec![0, 0, 1, 1, 2, 2, 3]);
        for _ in 0..3 {
            engine.dispatch(1, |_| {
                engine.score_partition(&eval, &p, &buffer, EvalOptions::default(), None);
            });
        }
        let m = engine.metrics();
        let hist = m.histogram("engine.batch.alloc_bytes").expect("registered");
        assert_eq!(hist.count, 3);
        // The first dispatch grows the arenas; the warmed repeats record
        // exactly zero growth (the cached probes allocate nothing).
        assert!(hist.counts[0] >= 2, "warmed dispatches must record 0 bytes");
    }

    #[test]
    fn l0_probes_hit_after_first_score_and_change_nothing() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        let with_l0 = Engine::new(EngineConfig::serial());
        let without = Engine::new(EngineConfig::serial().without_l0());
        let p =
            cocco_partition::repair(&g, cocco_partition::Partition::depth_groups(&g, 3), &|_| {
                true
            });
        for engine in [&with_l0, &without] {
            for _ in 0..3 {
                engine.score_partition(&eval, &p, &buffer, options, None);
            }
        }
        // Scores, counters visible through stats, and snapshots agree.
        let (a, _) = with_l0.score_partition(&eval, &p, &buffer, options, None);
        let (b, _) = without.score_partition(&eval, &p, &buffer, options, None);
        assert_eq!(a, b);
        assert_eq!(with_l0.stats(), without.stats());
        assert_eq!(with_l0.cache().snapshot(), without.cache().snapshot());
        // But only the L0 engine answered repeats locally.
        assert!(with_l0.metrics().counter("engine.cache.l0_hits") > 0);
        assert_eq!(without.metrics().counter("engine.cache.l0_hits"), 0);
    }

    #[test]
    fn prepare_then_score_prepared_matches_one_shot_scoring() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        for arena in [true, false] {
            let mut config = EngineConfig::with_threads(2);
            if !arena {
                config = config.without_arena();
            }
            let two_phase = Engine::new(config);
            let one_shot = Engine::new(config);
            let p = cocco_partition::repair(
                &g,
                cocco_partition::Partition::depth_groups(&g, 4),
                &|_| true,
            );
            let probe = two_phase.prepare_partition(&eval, &p, &buffer, options, None);
            let prepared = match probe {
                PartitionProbe::Miss(prepared) => prepared,
                PartitionProbe::Hit(..) => panic!("cold cache cannot hit"),
            };
            let mut slot = std::sync::Mutex::new(Some(prepared));
            let result = std::sync::Mutex::new(None);
            two_phase.dispatch(1, |_| {
                let prepared = slot.lock().unwrap().take().unwrap();
                *result.lock().unwrap() =
                    Some(two_phase.score_prepared(0, &eval, &p, &buffer, options, None, prepared));
            });
            let (scored, memo) = result.into_inner().unwrap().unwrap();
            let (direct, direct_memo) = one_shot.score_partition(&eval, &p, &buffer, options, None);
            assert_eq!(scored, direct, "arena={arena}");
            assert_eq!(memo.is_some(), direct_memo.is_some());
            // The dispatch-end drain published the staged entries: the
            // next prepare is a pure cache hit handing back the memo.
            assert_eq!(two_phase.cache().snapshot(), one_shot.cache().snapshot());
            match two_phase.prepare_partition(&eval, &p, &buffer, options, None) {
                PartitionProbe::Hit(cached, hit_memo) => {
                    assert_eq!(cached, scored);
                    assert_eq!(hit_memo.is_some(), memo.is_some());
                }
                PartitionProbe::Miss(_) => panic!("drained entry must hit"),
            }
            // Exactly one partition-level probe missed (the prepare);
            // score_prepared never re-probed.
            assert_eq!(two_phase.stats().evals, 2, "arena={arena}");
            assert_eq!(two_phase.stats().cache_hits, 1, "arena={arena}");
            let _ = slot.get_mut();
        }
    }

    #[test]
    fn adaptive_scheduling_and_chunking_are_observable() {
        let engine = Engine::new(
            EngineConfig::with_threads(2)
                .with_chunk(crate::config::ChunkSize::Auto)
                .with_parallel_threshold(8),
        );
        let hits = AtomicU64::new(0);
        // Under the threshold: runs inline, all jobs still execute.
        engine.dispatch(4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // Over the threshold: chunked pool dispatch (64 jobs / (2*4) = 8
        // jobs per chunk → 8 chunks).
        engine.dispatch(64, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 68);
        let m = engine.metrics();
        assert_eq!(m.counter("engine.pool.dispatched"), 68);
        assert_eq!(m.counter("engine.pool.inline_batches"), 1);
        assert_eq!(m.counter("engine.pool.chunks"), 8);
        // Per-candidate reference arm: no chunking, no inline batches.
        let reference = Engine::new(
            EngineConfig::with_threads(2)
                .with_chunk(crate::config::ChunkSize::Fixed(1))
                .with_parallel_threshold(0),
        );
        reference.dispatch(4, |_| {});
        let m = reference.metrics();
        assert_eq!(m.counter("engine.pool.dispatched"), 4);
        assert_eq!(m.counter("engine.pool.inline_batches"), 0);
        assert_eq!(m.counter("engine.pool.chunks"), 0);
    }

    #[test]
    fn deferred_publication_is_thread_count_invariant() {
        // Score the same distinct partitions as one deferred batch at 1
        // and 4 threads (chunked and not): the drained shared cache must
        // be byte-identical, and nothing may be visible mid-batch that
        // wasn't published by a previous batch.
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        let partitions: Vec<Partition> = (1..=6usize)
            .map(|l| {
                cocco_partition::repair(
                    &g,
                    cocco_partition::Partition::depth_groups(&g, l),
                    &|_| true,
                )
            })
            .collect();
        let snapshot_of = |threads: u32, chunk: crate::config::ChunkSize| {
            let engine = Engine::new(
                EngineConfig::with_threads(threads)
                    .with_chunk(chunk)
                    .with_parallel_threshold(0),
            );
            engine.dispatch(partitions.len(), |i| {
                engine.score_partition_deferred(
                    i as u64,
                    &eval,
                    &partitions[i],
                    &buffer,
                    options,
                    None,
                );
            });
            engine.cache().snapshot()
        };
        let reference = snapshot_of(1, crate::config::ChunkSize::Fixed(1));
        assert_eq!(
            reference,
            snapshot_of(4, crate::config::ChunkSize::Fixed(1))
        );
        assert_eq!(reference, snapshot_of(4, crate::config::ChunkSize::Auto));
        assert_eq!(reference, snapshot_of(1, crate::config::ChunkSize::Auto));
    }

    #[test]
    fn unfit_partitions_cost_infinity_but_keep_metrics() {
        let g = cocco_graph::models::chain(5);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
        let tiny = BufferConfig::shared(256);
        let scored = engine.score(&eval, &subgraphs, &tiny, EvalOptions::default());
        assert!(!scored.fits);
        assert!(!scored.error);
        assert!(scored.cost(CostMetric::Ema, None).is_infinite());
        assert!(scored.metric(CostMetric::Ema).is_finite());
    }
}
