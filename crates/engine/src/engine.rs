//! The engine core: memoized scoring plus run statistics.

use crate::cache::{eval_key, EvalCache};
use crate::config::EngineConfig;
use crate::pool::EnginePool;
use cocco_graph::NodeId;
use cocco_sim::{BufferConfig, CostMetric, EvalOptions, Evaluator};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One memoized partition evaluation: everything needed to reproduce the
/// objective cost under *any* objective (metric × Formula 1/2), so one
/// cache entry serves partition-only and co-exploration searches alike.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoredEval {
    /// Total DRAM traffic in bytes.
    pub ema_bytes: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Total bytes of the evaluated buffer configuration (Formula 2's
    /// `BUF_SIZE`).
    pub buffer_bytes: u64,
    /// Whether every subgraph fits the buffer configuration.
    pub fits: bool,
    /// `true` when the evaluator failed outright (a config bug, not a
    /// genuine misfit); such evaluations score infinite.
    pub error: bool,
}

impl ScoredEval {
    /// The raw metric value (infinite on evaluator errors).
    pub fn metric(&self, metric: CostMetric) -> f64 {
        if self.error {
            return f64::INFINITY;
        }
        match metric {
            CostMetric::Ema => self.ema_bytes as f64,
            CostMetric::Energy => self.energy_pj,
        }
    }

    /// The objective cost: Formula 1 (`alpha = None`) or Formula 2
    /// (`alpha = Some(α)`); infinite when the partition does not fit or the
    /// evaluator errored.
    pub fn cost(&self, metric: CostMetric, alpha: Option<f64>) -> f64 {
        if self.error || !self.fits {
            return f64::INFINITY;
        }
        match alpha {
            None => self.metric(metric),
            Some(alpha) => self.buffer_bytes as f64 + alpha * self.metric(metric),
        }
    }
}

/// Aggregate engine statistics of one exploration run.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Worker threads the engine resolved to.
    pub threads: u32,
    /// Partition-scoring requests served (cache hits + fresh evaluations).
    pub evals: u64,
    /// Requests answered from the memoization cache.
    pub cache_hits: u64,
    /// Distinct cached evaluations at snapshot time.
    pub cache_entries: u64,
    /// Wall-clock milliseconds spent inside batch evaluation.
    pub wall_ms: f64,
}

impl EngineStats {
    /// Fraction of scoring requests served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.evals as f64
        }
    }
}

/// The parallel, memoized evaluation engine.
///
/// One engine is shared (via `Arc`) by every context derived from a search:
/// the worker pool parallelizes batch evaluation, the cache memoizes
/// `(subgraphs, buffer, options)` triples across searchers, generations and
/// two-step inner runs, and the statistics feed the exploration report.
///
/// # Examples
///
/// ```
/// use cocco_engine::{Engine, EngineConfig};
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, EvalOptions, Evaluator};
///
/// let g = cocco_graph::models::chain(4);
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// let engine = Engine::new(EngineConfig::serial());
/// let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
/// let buffer = BufferConfig::shared(1 << 20);
/// let a = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
/// let b = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
/// assert_eq!(a, b);
/// assert_eq!(engine.stats().cache_hits, 1);
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    pool: EnginePool,
    cache: EvalCache,
    wall_nanos: AtomicU64,
}

impl Engine {
    /// Creates an engine with the given thread policy and an empty cache.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            pool: EnginePool::new(&config),
            cache: EvalCache::new(),
            wall_nanos: AtomicU64::new(0),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The worker pool.
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// The memoization cache.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Scores an ordered partition under `buffer`/`options`, memoized.
    ///
    /// Evaluator errors are folded into the result (`error = true`, so
    /// [`ScoredEval::cost`] is infinite) and memoized like any other
    /// evaluation — re-scoring a broken configuration is as cheap and as
    /// deterministic as re-scoring a good one.
    pub fn score(
        &self,
        evaluator: &Evaluator<'_>,
        subgraphs: &[Vec<NodeId>],
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> ScoredEval {
        let key = eval_key(evaluator.fingerprint(), subgraphs, buffer, options);
        if let Some(cached) = self.cache.get(&key) {
            return cached;
        }
        let scored = match evaluator.eval_partition(subgraphs, buffer, options) {
            Ok(report) => ScoredEval {
                ema_bytes: report.ema_bytes,
                energy_pj: report.energy_pj,
                buffer_bytes: buffer.total_bytes(),
                fits: report.fits,
                error: false,
            },
            Err(_) => ScoredEval {
                ema_bytes: 0,
                energy_pj: 0.0,
                buffer_bytes: buffer.total_bytes(),
                fits: false,
                error: true,
            },
        };
        self.cache.insert(key, scored);
        scored
    }

    /// Adds `elapsed` to the accumulated batch wall time.
    pub fn record_wall(&self, elapsed: Duration) {
        self.wall_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A snapshot of the engine statistics.
    pub fn stats(&self) -> EngineStats {
        let hits = self.cache.hits();
        let misses = self.cache.misses();
        EngineStats {
            threads: self.pool.threads() as u32,
            evals: hits + misses,
            cache_hits: hits,
            cache_entries: self.cache.len() as u64,
            wall_ms: self.wall_nanos.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

// The whole point of the engine is cross-thread sharing; fail the build if
// a field ever regresses that.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Engine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_sim::AcceleratorConfig;

    #[test]
    fn score_matches_direct_evaluation() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let subgraphs: Vec<Vec<NodeId>> = g.node_ids().map(|id| vec![id]).collect();
        let buffer = BufferConfig::shared(1 << 20);
        let scored = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
        let report = eval
            .eval_partition(&subgraphs, &buffer, EvalOptions::default())
            .unwrap();
        assert_eq!(scored.ema_bytes, report.ema_bytes);
        assert_eq!(scored.energy_pj, report.energy_pj);
        assert_eq!(scored.fits, report.fits);
        assert_eq!(
            scored.cost(CostMetric::Ema, None),
            report.cost_formula1(CostMetric::Ema)
        );
        assert_eq!(
            scored.cost(CostMetric::Energy, Some(0.002)),
            report.cost_formula2(CostMetric::Energy, 0.002)
        );
    }

    #[test]
    fn errors_are_memoized_and_infinite() {
        let g = cocco_graph::models::chain(2);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        // Empty subgraph: a structural evaluator error.
        let broken: Vec<Vec<NodeId>> = vec![Vec::new()];
        let buffer = BufferConfig::shared(1 << 20);
        let scored = engine.score(&eval, &broken, &buffer, EvalOptions::default());
        assert!(scored.error);
        assert!(scored.cost(CostMetric::Ema, None).is_infinite());
        assert!(scored.metric(CostMetric::Ema).is_infinite());
        let again = engine.score(&eval, &broken, &buffer, EvalOptions::default());
        assert_eq!(scored, again);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn stats_snapshot_counts() {
        let g = cocco_graph::models::chain(3);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::with_threads(2));
        let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
        let buffer = BufferConfig::shared(1 << 20);
        for _ in 0..3 {
            engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
        }
        engine.record_wall(Duration::from_millis(2));
        let stats = engine.stats();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.evals, 3);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_entries, 1);
        assert!(stats.wall_ms >= 2.0);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_engine_shared_across_evaluators_never_cross_contaminates() {
        // chain(4) and diamond both index nodes 0..n, so without the
        // evaluator fingerprint in the key their whole-graph partitions
        // would collide in the cache.
        let chain = cocco_graph::models::chain(4);
        let diamond = cocco_graph::models::diamond();
        let chain_eval = Evaluator::new(&chain, AcceleratorConfig::default());
        let diamond_eval = Evaluator::new(&diamond, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        let chain_parts = vec![chain.node_ids().collect::<Vec<_>>()];
        // diamond has 5 nodes; take its first 5-node whole partition too.
        let diamond_parts = vec![diamond.node_ids().collect::<Vec<_>>()];
        let via_engine_chain = engine.score(&chain_eval, &chain_parts, &buffer, options);
        let via_engine_diamond = engine.score(&diamond_eval, &diamond_parts, &buffer, options);
        let direct_chain = chain_eval
            .eval_partition(&chain_parts, &buffer, options)
            .unwrap();
        let direct_diamond = diamond_eval
            .eval_partition(&diamond_parts, &buffer, options)
            .unwrap();
        assert_eq!(via_engine_chain.ema_bytes, direct_chain.ema_bytes);
        assert_eq!(via_engine_diamond.ema_bytes, direct_diamond.ema_bytes);
        assert_ne!(chain_eval.fingerprint(), diamond_eval.fingerprint());
        assert_eq!(engine.stats().cache_hits, 0, "distinct keys, no false hits");
        assert_eq!(engine.cache().len(), 2);
    }

    #[test]
    fn unfit_partitions_cost_infinity_but_keep_metrics() {
        let g = cocco_graph::models::chain(5);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let engine = Engine::new(EngineConfig::serial());
        let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
        let tiny = BufferConfig::shared(256);
        let scored = engine.score(&eval, &subgraphs, &tiny, EvalOptions::default());
        assert!(!scored.fits);
        assert!(!scored.error);
        assert!(scored.cost(CostMetric::Ema, None).is_infinite());
        assert!(scored.metric(CostMetric::Ema).is_finite());
    }
}
