//! The worker pool: deterministic order-preserving parallel map, with a
//! **persistent** thread set (the default) or per-batch scoped spawns.
//!
//! Both modes run the same claim loop — workers take indices from a shared
//! atomic counter and the caller stores results per index — so the set of
//! executed jobs, and anything the caller records per index, is identical
//! regardless of mode, thread count or scheduling. The persistent mode
//! exists purely to take thread spawn/join syscalls off the per-batch hot
//! path: a GA evaluates one batch per generation, and re-spawning workers
//! hundreds of times per exploration is measurable overhead.

use crate::config::{EngineConfig, PoolMode};
use cocco_telemetry::{Histogram, Stopwatch, Telemetry};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One submitted batch, shared between the caller and the workers that
/// picked it up.
struct Batch {
    /// Type-erased pointer to the caller's job closure. The caller blocks
    /// inside [`EnginePool::run`] until every worker that received this
    /// batch has signalled completion, so the pointee outlives every
    /// dereference (see the safety comment in `run_persistent`).
    job: *const (dyn Fn(usize) + Sync),
    /// Number of job indices.
    jobs: usize,
    /// Next index to claim.
    next: AtomicUsize,
    /// Workers that finished processing their copy of this batch.
    done: Mutex<usize>,
    done_cv: Condvar,
    /// Set when any job panicked; the first payload is kept for re-raise.
    panicked: AtomicBool,
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `job` points at a `Sync` closure that the submitting thread
// keeps alive (and blocked on) until all workers are done with the batch.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and runs indices until the batch is drained, then signals
    /// completion. Panics inside jobs are captured (first payload wins)
    /// and re-raised by the submitting caller.
    fn work(&self) {
        // SAFETY: see the field invariant — the caller is still inside
        // `run`, keeping the closure alive, until we signal `done` below.
        let job = unsafe { &*self.job };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.jobs {
                break;
            }
            job(i);
        }));
        if let Err(payload) = result {
            self.panicked.store(true, Ordering::Relaxed);
            let mut slot = self.payload.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut done = self.done.lock().unwrap();
        *done += 1;
        self.done_cv.notify_all();
    }
}

/// The long-lived worker set of a persistent pool.
#[derive(Debug)]
struct Workers {
    /// Submission side; dropping it shuts the workers down.
    tx: Sender<Arc<Batch>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// The engine's worker pool.
///
/// [`run`](EnginePool::run) executes `jobs` closures indexed `0..jobs`;
/// workers claim indices from a shared atomic counter, so the set of
/// executed jobs — and anything the caller stores per index — is
/// independent of scheduling. With one worker (or one job) everything runs
/// inline on the caller's thread: the serial fallback is the same code
/// path minus the hand-off.
///
/// In [`PoolMode::Persistent`] (the default) worker threads are spawned
/// lazily on the first parallel batch, fed through a channel, kept alive
/// across batches, and joined when the pool drops. In [`PoolMode::Scoped`]
/// each batch spawns scoped threads — the reference implementation the
/// persistent pool is determinism-tested and benchmarked against. Jobs
/// must not re-enter the pool.
///
/// # Examples
///
/// ```
/// use cocco_engine::{EngineConfig, EnginePool};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = EnginePool::new(&EngineConfig::with_threads(4));
/// let results: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
/// pool.run(100, |i| {
///     results[i].store(i as u64 * 2, Ordering::Relaxed);
/// });
/// assert!(results.iter().enumerate().all(|(i, r)| r.load(Ordering::Relaxed) == i as u64 * 2));
/// ```
#[derive(Debug)]
pub struct EnginePool {
    threads: usize,
    mode: PoolMode,
    workers: OnceLock<Workers>,
    /// Submit-to-first-claim latency histogram
    /// (`engine.pool.queue_wait_ns`); `None` when telemetry is disabled,
    /// in which case batches run with zero added work.
    queue_wait: Option<Histogram>,
}

impl EnginePool {
    /// Creates a pool with the configuration's resolved worker count and
    /// pool mode. No threads are spawned until the first parallel batch.
    pub fn new(config: &EngineConfig) -> Self {
        Self::with_telemetry(config, &Telemetry::disabled())
    }

    /// Like [`new`](Self::new), but an enabled `telemetry` handle records
    /// the submit-to-first-claim queue wait of every parallel batch into
    /// the `engine.pool.queue_wait_ns` histogram. Observation-only: job
    /// claiming and results are unaffected.
    pub fn with_telemetry(config: &EngineConfig, telemetry: &Telemetry) -> Self {
        Self {
            threads: config.resolved_threads(),
            mode: config.pool,
            workers: OnceLock::new(),
            queue_wait: telemetry.latency_histogram("engine.pool.queue_wait_ns"),
        }
    }

    /// The worker count used for sufficiently large batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool lifecycle mode.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// `true` once persistent workers have been spawned.
    pub fn is_spawned(&self) -> bool {
        self.workers.get().is_some()
    }

    /// Runs `job(i)` for every `i` in `0..jobs`, spreading indices over the
    /// pool's workers. Blocks until every job finished. Panics in jobs
    /// propagate to the caller.
    pub fn run(&self, jobs: usize, job: impl Fn(usize) + Sync) {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            for i in 0..jobs {
                job(i);
            }
            return;
        }
        match &self.queue_wait {
            None => self.run_parallel(jobs, workers, &job),
            Some(hist) => {
                // Queue wait = submit to first index claim, recorded by
                // whichever worker claims first. One relaxed swap per job
                // — a batch job is microseconds of scoring, so this is
                // noise even when telemetry is on (and absent entirely
                // when it is off).
                let submitted = Stopwatch::start();
                let claimed = AtomicBool::new(false);
                self.run_parallel(jobs, workers, &|i| {
                    if !claimed.swap(true, Ordering::Relaxed) {
                        hist.record(submitted.elapsed_nanos());
                    }
                    job(i);
                });
            }
        }
    }

    fn run_parallel(&self, jobs: usize, workers: usize, job: &(dyn Fn(usize) + Sync)) {
        match self.mode {
            PoolMode::Scoped => Self::run_scoped(jobs, workers, job),
            PoolMode::Persistent => self.run_persistent(jobs, workers, job),
        }
    }

    /// The per-batch scoped-spawn reference path.
    fn run_scoped(jobs: usize, workers: usize, job: &(dyn Fn(usize) + Sync)) {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    job(i);
                });
            }
        });
    }

    /// The persistent path: hand the batch to the long-lived workers and
    /// block until all of them signalled completion.
    fn run_persistent(&self, jobs: usize, workers: usize, job: &(dyn Fn(usize) + Sync)) {
        let pool = self.workers.get_or_init(|| Self::spawn(self.threads));
        // SAFETY: we erase the closure's lifetime to store it in the
        // shared `Batch`. The loop below does not return until `done`
        // equals the number of workers the batch was handed to, and every
        // worker signals `done` only after its last dereference of `job`
        // (see `Batch::work`) — so the pointer never outlives the
        // borrow it was created from.
        let job: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(job) };
        let batch = Arc::new(Batch {
            job,
            jobs,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        });
        for _ in 0..workers {
            pool.tx
                .send(Arc::clone(&batch))
                // cocco-audit: allow(R1) send fails only if every worker hung up, which Workers::drop makes impossible while the pool lives
                .expect("persistent workers outlive the pool");
        }
        let mut done = batch.done.lock().unwrap();
        while *done < workers {
            // cocco-audit: allow(R1) condvar poisoning means a worker panicked; that panic is re-raised via the payload below
            done = batch.done_cv.wait(done).unwrap();
        }
        drop(done);
        if batch.panicked.load(Ordering::Relaxed) {
            match batch.payload.lock().unwrap().take() {
                Some(payload) => std::panic::resume_unwind(payload),
                None => panic!("a pool job panicked"),
            }
        }
    }

    fn spawn(threads: usize) -> Workers {
        let (tx, rx) = channel::<Arc<Batch>>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("cocco-engine-{i}"))
                    .spawn(move || Self::worker(&rx))
                    // cocco-audit: allow(R1) failing to spawn OS threads at pool construction is unrecoverable — no engine can exist
                    .expect("spawn engine worker")
            })
            .collect();
        Workers { tx, handles }
    }

    /// Worker main loop: block for the next batch, drain it, repeat until
    /// the submission channel closes (pool drop).
    fn worker(rx: &Mutex<Receiver<Arc<Batch>>>) {
        loop {
            // Holding the lock while blocked on `recv` is fine: batches
            // are sent in bursts of `workers` copies, and each copy is
            // claimed by whichever worker gets the lock next — any subset
            // of workers draining the copies completes the batch.
            let batch = match rx.lock().unwrap().recv() {
                Ok(batch) => batch,
                Err(_) => break,
            };
            batch.work();
        }
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        if let Some(workers) = self.workers.take() {
            drop(workers.tx); // closes the channel; workers exit their loop
            for handle in workers.handles {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pools(threads: u32) -> [EnginePool; 2] {
        [
            EnginePool::new(&EngineConfig::with_threads(threads)),
            EnginePool::new(&EngineConfig::with_threads(threads).with_pool(PoolMode::Scoped)),
        ]
    }

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 4, 7] {
            for pool in pools(threads) {
                let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
                pool.run(hits.len(), |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} mode={:?}",
                    pool.mode()
                );
            }
        }
    }

    #[test]
    fn persistent_workers_survive_across_batches() {
        let pool = EnginePool::new(&EngineConfig::with_threads(4));
        assert!(!pool.is_spawned(), "workers spawn lazily");
        let count = AtomicU64::new(0);
        for round in 1..=20u64 {
            pool.run(64, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), round * 64);
        }
        assert!(pool.is_spawned());
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        for pool in pools(4) {
            pool.run(0, |_| panic!("no job should run"));
        }
    }

    #[test]
    fn serial_pool_runs_in_order() {
        let pool = EnginePool::new(&EngineConfig::serial());
        let order = std::sync::Mutex::new(Vec::new());
        pool.run(10, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
        assert!(!pool.is_spawned(), "serial runs never spawn workers");
    }

    #[test]
    fn panics_propagate_and_the_pool_stays_usable() {
        let pool = EnginePool::new(&EngineConfig::with_threads(2));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
            });
        }));
        let payload = result.expect_err("the job panic must reach the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(message.contains("job 3 exploded"), "got: {message}");
        // The workers caught the panic and are still alive.
        let count = AtomicU64::new(0);
        pool.run(16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn queue_wait_is_recorded_only_when_enabled_and_parallel() {
        let telemetry = cocco_telemetry::Telemetry::enabled();
        let pool = EnginePool::with_telemetry(&EngineConfig::with_threads(2), &telemetry);
        pool.run(8, |_| {});
        pool.run(1, |_| {}); // serial fallback: no queue, no sample
        let snap = telemetry.snapshot();
        let hist = snap
            .histogram("engine.pool.queue_wait_ns")
            .expect("histogram registered at construction");
        assert_eq!(hist.count, 1, "one sample per parallel batch");
        // Results are unaffected: every index still runs exactly once.
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = EnginePool::new(&EngineConfig::with_threads(3));
        pool.run(9, |_| {});
        assert!(pool.is_spawned());
        drop(pool); // must not hang or leak
    }
}
