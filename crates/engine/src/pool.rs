//! The scoped worker pool: deterministic order-preserving parallel map.

use crate::config::EngineConfig;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A scoped `std::thread` worker pool.
///
/// [`run`](EnginePool::run) executes `jobs` closures indexed `0..jobs`;
/// workers claim indices from a shared atomic counter, so the set of
/// executed jobs — and anything the caller stores per index — is
/// independent of scheduling. With one worker (or one job) everything runs
/// inline on the caller's thread: the serial fallback is the same code
/// path minus the spawns.
///
/// # Examples
///
/// ```
/// use cocco_engine::{EngineConfig, EnginePool};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = EnginePool::new(&EngineConfig::with_threads(4));
/// let results: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
/// pool.run(100, |i| {
///     results[i].store(i as u64 * 2, Ordering::Relaxed);
/// });
/// assert!(results.iter().enumerate().all(|(i, r)| r.load(Ordering::Relaxed) == i as u64 * 2));
/// ```
#[derive(Debug)]
pub struct EnginePool {
    threads: usize,
}

impl EnginePool {
    /// Creates a pool with the configuration's resolved worker count.
    pub fn new(config: &EngineConfig) -> Self {
        Self {
            threads: config.resolved_threads(),
        }
    }

    /// The worker count used for sufficiently large batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` for every `i` in `0..jobs`, spreading indices over the
    /// pool's workers. Blocks until every job finished. Panics in jobs
    /// propagate to the caller.
    pub fn run(&self, jobs: usize, job: impl Fn(usize) + Sync) {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            for i in 0..jobs {
                job(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    job(i);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let pool = EnginePool::new(&EngineConfig::with_threads(threads));
            let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
            pool.run(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let pool = EnginePool::new(&EngineConfig::with_threads(4));
        pool.run(0, |_| panic!("no job should run"));
    }

    #[test]
    fn serial_pool_runs_in_order() {
        let pool = EnginePool::new(&EngineConfig::serial());
        let order = std::sync::Mutex::new(Vec::new());
        pool.run(10, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }
}
