//! Engine configuration: worker-thread policy.

use serde::{Deserialize, Serialize};

/// How many worker threads the engine uses for batch evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadCount {
    /// Use the machine's available parallelism (capped at
    /// [`EngineConfig::AUTO_CAP`]).
    Auto,
    /// Exactly this many workers (`1` = serial evaluation).
    Fixed(u32),
}

/// Configuration of the evaluation engine.
///
/// Results are **identical at any thread count** — the engine assigns
/// budget samples and records trace points in input order regardless of
/// which worker scores which genome — so the thread policy is purely a
/// wall-clock knob.
///
/// # Examples
///
/// ```
/// use cocco_engine::EngineConfig;
///
/// assert_eq!(EngineConfig::serial().resolved_threads(), 1);
/// assert_eq!(EngineConfig::with_threads(4).resolved_threads(), 4);
/// assert!(EngineConfig::auto().resolved_threads() >= 1);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Worker-thread policy.
    pub threads: ThreadCount,
    /// Whether partition scores are composed incrementally from memoized
    /// per-subgraph terms (`true`, the default) or recomputed whole via
    /// `Evaluator::eval_partition` on every cache miss (`false` — the
    /// reference "full" path the incremental one is benchmarked and
    /// property-tested against). Results are **bit-identical** either way;
    /// this is purely a wall-clock/bookkeeping knob.
    pub incremental: bool,
}

impl EngineConfig {
    /// Upper bound on `Auto` threads: evaluation batches are population-
    /// sized (~100 genomes), where more workers than this only add
    /// scheduling overhead.
    pub const AUTO_CAP: usize = 8;

    /// Auto-detected thread count.
    pub fn auto() -> Self {
        Self {
            threads: ThreadCount::Auto,
            incremental: true,
        }
    }

    /// Serial evaluation (one worker, no spawned threads).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// A fixed worker count; `0` is treated as `1`.
    pub fn with_threads(threads: u32) -> Self {
        Self {
            threads: ThreadCount::Fixed(threads.max(1)),
            incremental: true,
        }
    }

    /// Disables subgraph-granular incremental evaluation: every partition
    /// cache miss re-runs the whole-partition evaluator. Used as the
    /// reference arm of the incremental-vs-full benchmark and property
    /// tests; results are identical, only the amount of per-subgraph
    /// re-scoring differs.
    pub fn without_incremental(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// The concrete worker count this configuration resolves to on the
    /// current machine.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            ThreadCount::Fixed(n) => (n as usize).max(1),
            ThreadCount::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(Self::AUTO_CAP),
        }
    }
}

impl Default for EngineConfig {
    /// Auto-detected parallelism (determinism makes this safe everywhere).
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_counts_resolve_exactly() {
        assert_eq!(EngineConfig::with_threads(3).resolved_threads(), 3);
        assert_eq!(EngineConfig::with_threads(0).resolved_threads(), 1);
        assert_eq!(EngineConfig::serial().resolved_threads(), 1);
    }

    #[test]
    fn incremental_defaults_on_and_toggles_off() {
        assert!(EngineConfig::auto().incremental);
        assert!(EngineConfig::with_threads(4).incremental);
        assert!(!EngineConfig::serial().without_incremental().incremental);
    }

    #[test]
    fn auto_is_positive_and_capped() {
        let n = EngineConfig::auto().resolved_threads();
        assert!(n >= 1);
        assert!(n <= EngineConfig::AUTO_CAP);
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize, Serialize};
        for config in [
            EngineConfig::auto(),
            EngineConfig::serial(),
            EngineConfig::with_threads(6),
            EngineConfig::with_threads(2).without_incremental(),
        ] {
            let back = EngineConfig::from_value(&config.to_value()).unwrap();
            assert_eq!(back, config);
        }
    }
}
