//! Engine configuration: worker-thread policy, pool lifecycle, incremental
//! evaluation and cache bounding.

use serde::{Deserialize, Serialize};

/// How many worker threads the engine uses for batch evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadCount {
    /// Use the machine's available parallelism (capped at
    /// [`EngineConfig::AUTO_CAP`]).
    Auto,
    /// Exactly this many workers (`1` = serial evaluation).
    Fixed(u32),
}

/// How many batch indices one pool claim covers. Results are bit-identical
/// at any chunk size — workers still execute every job exactly once and
/// the caller stores results per index — so chunking is purely a
/// dispatch-overhead knob (one channel send + one counter claim per chunk
/// instead of per candidate).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkSize {
    /// Derive the chunk size from the batch size and worker count
    /// (`ceil(jobs / (threads * 4))` — four claims per worker keep the
    /// tail balanced while collapsing per-candidate claims). The default.
    Auto,
    /// Exactly this many jobs per chunk (`1` = the per-candidate dispatch
    /// the chunked path is determinism-tested against).
    Fixed(u32),
}

/// Worker-pool lifecycle policy. Results are bit-identical either way —
/// workers claim batch indices from a shared counter and the caller stores
/// results per index, so the mode is purely a wall-clock knob.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolMode {
    /// Threads live for the whole engine lifetime (spawned lazily on the
    /// first parallel batch, joined on drop) and batches are fed through a
    /// channel — no spawn/join syscalls on the per-generation hot path.
    /// The default.
    Persistent,
    /// One `std::thread::scope` spawn per batch — the reference
    /// implementation the persistent pool is benchmarked and
    /// determinism-tested against.
    Scoped,
}

/// Configuration of the evaluation engine.
///
/// Results are **identical at any thread count, pool mode and cache
/// capacity** — the engine assigns budget samples and records trace points
/// in input order regardless of which worker scores which genome, and
/// evicted cache entries are recomputed to bit-identical values — so every
/// knob here is purely about wall-clock and memory.
///
/// # Examples
///
/// ```
/// use cocco_engine::{EngineConfig, PoolMode};
///
/// assert_eq!(EngineConfig::serial().resolved_threads(), 1);
/// assert_eq!(EngineConfig::with_threads(4).resolved_threads(), 4);
/// assert!(EngineConfig::auto().resolved_threads() >= 1);
/// let scoped = EngineConfig::with_threads(4).with_pool(PoolMode::Scoped);
/// assert_eq!(scoped.pool, PoolMode::Scoped);
/// let bounded = EngineConfig::auto().with_cache_capacity(10_000);
/// assert_eq!(bounded.cache_capacity, 10_000);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Worker-thread policy.
    pub threads: ThreadCount,
    /// Whether partition scores are composed incrementally from memoized
    /// per-subgraph terms (`true`, the default) or recomputed whole via
    /// `Evaluator::eval_partition` on every cache miss (`false` — the
    /// reference "full" path the incremental one is benchmarked and
    /// property-tested against). Results are **bit-identical** either way;
    /// this is purely a wall-clock/bookkeeping knob.
    pub incremental: bool,
    /// Worker-pool lifecycle ([`PoolMode::Persistent`] by default).
    pub pool: PoolMode,
    /// Whether partition scoring materializes member lists into per-worker
    /// flat layout arenas (`true`, the default) or into freshly allocated
    /// `Vec<Vec<NodeId>>`s (`false` — the reference arm the arena path is
    /// benchmarked and property-tested against). Results are
    /// **bit-identical** either way; this is purely an allocation knob.
    pub arena: bool,
    /// Upper bound on cached evaluation entries across the two cache
    /// levels (the memo-carrying partition level's share is additionally
    /// capped — see `EvalCache::with_capacity`). When a level fills up, a
    /// generation sweep evicts the entries not touched since the previous
    /// sweep (evictions are counted in `EngineStats`). Defaults to
    /// [`DEFAULT_CACHE_CAPACITY`](Self::DEFAULT_CACHE_CAPACITY) — generous
    /// enough that ordinary explorations never evict.
    pub cache_capacity: usize,
    /// Whether batch evaluation probes the shared roll-up cache serially
    /// (in funding order) *before* handing jobs to the pool, so cache hits
    /// never pay dispatch (`true`, the default). Results are
    /// **bit-identical** either way; this is purely a dispatch-volume knob
    /// (`engine.pool.dispatched` counts what still reaches the pool).
    pub prefilter: bool,
    /// Whether each scratch slot keeps a small worker-local L0 cache
    /// (partition roll-ups + subgraph terms, probed lock-free before the
    /// shared shards; new entries publish to the shared cache in a
    /// funding-order drain at batch end). `true` by default. Results are
    /// **bit-identical** either way — L0 entries are copies of (or are
    /// published into) the shared cache, and every value is a pure
    /// function of its key.
    pub l0: bool,
    /// Batches whose post-prefilter job count falls under this threshold
    /// execute inline on the dispatching thread instead of paying pool
    /// hand-off (default
    /// [`DEFAULT_PARALLEL_THRESHOLD`](Self::DEFAULT_PARALLEL_THRESHOLD),
    /// calibrated from the pool-overhead benchmark). Inline execution
    /// runs jobs in index (= funding) order, so results are
    /// **bit-identical** at any threshold.
    pub parallel_threshold: usize,
    /// Pool dispatch granularity ([`ChunkSize::Auto`] by default).
    pub chunk: ChunkSize,
}

impl EngineConfig {
    /// Upper bound on `Auto` threads: evaluation batches are population-
    /// sized (~100 genomes), where more workers than this only add
    /// scheduling overhead.
    pub const AUTO_CAP: usize = 8;

    /// Default [`cache_capacity`](Self::cache_capacity): one million
    /// entries, far above what a 50k-sample exploration produces.
    pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

    /// Default [`parallel_threshold`](Self::parallel_threshold). The pool
    /// bench measures ~12 µs of per-batch hand-off against ~7.6 µs per
    /// warmed cached probe, so batches under about eight jobs lose more
    /// to dispatch than parallelism returns.
    pub const DEFAULT_PARALLEL_THRESHOLD: usize = 8;

    /// Auto-detected thread count.
    pub fn auto() -> Self {
        Self {
            threads: ThreadCount::Auto,
            incremental: true,
            pool: PoolMode::Persistent,
            arena: true,
            cache_capacity: Self::DEFAULT_CACHE_CAPACITY,
            prefilter: true,
            l0: true,
            parallel_threshold: Self::DEFAULT_PARALLEL_THRESHOLD,
            chunk: ChunkSize::Auto,
        }
    }

    /// Serial evaluation (one worker, no spawned threads).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// A fixed worker count; `0` is treated as `1`.
    pub fn with_threads(threads: u32) -> Self {
        Self {
            threads: ThreadCount::Fixed(threads.max(1)),
            ..Self::auto()
        }
    }

    /// Disables subgraph-granular incremental evaluation: every partition
    /// cache miss re-runs the whole-partition evaluator. Used as the
    /// reference arm of the incremental-vs-full benchmark and property
    /// tests; results are identical, only the amount of per-subgraph
    /// re-scoring differs.
    pub fn without_incremental(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Selects the worker-pool lifecycle (wall-clock only; results are
    /// bit-identical across modes).
    pub fn with_pool(mut self, pool: PoolMode) -> Self {
        self.pool = pool;
        self
    }

    /// Disables the flat layout arenas on the partition-scoring path:
    /// `Engine::score_partition` materializes each candidate's member
    /// lists as a fresh `Vec<Vec<NodeId>>` instead of reusing per-worker
    /// arena buffers. The reference arm of the arena benchmark and
    /// equivalence property tests; results are identical, only the
    /// allocation behavior differs.
    pub fn without_arena(mut self) -> Self {
        self.arena = false;
        self
    }

    /// Bounds the evaluation cache to `capacity` total entries (clamped to
    /// a small minimum so the sharded levels stay functional). Evictions
    /// never change results — evicted entries are recomputed bit-identical.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Disables the serial cache prefilter: every funded candidate is
    /// dispatched to the pool and probes the shared cache from its worker,
    /// like the pre-prefilter engine. The reference arm of the scale-out
    /// determinism grid; results are identical, only dispatch volume
    /// differs.
    pub fn without_prefilter(mut self) -> Self {
        self.prefilter = false;
        self
    }

    /// Disables the worker-local L0 caches: every probe goes straight to
    /// the shared shards and every computed entry is inserted from its
    /// worker mid-batch. The reference arm of the scale-out determinism
    /// grid; results are identical, only lock traffic differs.
    pub fn without_l0(mut self) -> Self {
        self.l0 = false;
        self
    }

    /// Sets the inline-execution threshold: batches with fewer jobs than
    /// `threshold` run serially on the dispatching thread (`0` disables
    /// adaptive scheduling — every batch goes to the pool). Wall-clock
    /// only; results are bit-identical at any threshold.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Selects the pool dispatch granularity (wall-clock only; results
    /// are bit-identical at any chunk size).
    pub fn with_chunk(mut self, chunk: ChunkSize) -> Self {
        self.chunk = chunk;
        self
    }

    /// The concrete worker count this configuration resolves to on the
    /// current machine.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            ThreadCount::Fixed(n) => (n as usize).max(1),
            ThreadCount::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(Self::AUTO_CAP),
        }
    }

    /// The concrete jobs-per-chunk this configuration resolves to for a
    /// batch of `jobs` (at least 1).
    pub fn resolved_chunk(&self, jobs: usize) -> usize {
        match self.chunk {
            ChunkSize::Fixed(n) => (n as usize).max(1),
            ChunkSize::Auto => jobs.div_ceil(self.resolved_threads() * 4).max(1),
        }
    }
}

impl Default for EngineConfig {
    /// Auto-detected parallelism (determinism makes this safe everywhere).
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_counts_resolve_exactly() {
        assert_eq!(EngineConfig::with_threads(3).resolved_threads(), 3);
        assert_eq!(EngineConfig::with_threads(0).resolved_threads(), 1);
        assert_eq!(EngineConfig::serial().resolved_threads(), 1);
    }

    #[test]
    fn incremental_defaults_on_and_toggles_off() {
        assert!(EngineConfig::auto().incremental);
        assert!(EngineConfig::with_threads(4).incremental);
        assert!(!EngineConfig::serial().without_incremental().incremental);
    }

    #[test]
    fn arena_defaults_on_and_toggles_off() {
        assert!(EngineConfig::auto().arena);
        assert!(EngineConfig::serial().arena);
        assert!(!EngineConfig::auto().without_arena().arena);
    }

    #[test]
    fn pool_defaults_persistent_and_toggles() {
        assert_eq!(EngineConfig::auto().pool, PoolMode::Persistent);
        assert_eq!(
            EngineConfig::with_threads(4)
                .with_pool(PoolMode::Scoped)
                .pool,
            PoolMode::Scoped
        );
    }

    #[test]
    fn cache_capacity_defaults_generous() {
        assert_eq!(
            EngineConfig::auto().cache_capacity,
            EngineConfig::DEFAULT_CACHE_CAPACITY
        );
        assert_eq!(
            EngineConfig::auto().with_cache_capacity(64).cache_capacity,
            64
        );
    }

    #[test]
    fn auto_is_positive_and_capped() {
        let n = EngineConfig::auto().resolved_threads();
        assert!(n >= 1);
        assert!(n <= EngineConfig::AUTO_CAP);
    }

    #[test]
    fn scaleout_knobs_default_on_and_toggle() {
        let config = EngineConfig::auto();
        assert!(config.prefilter);
        assert!(config.l0);
        assert_eq!(
            config.parallel_threshold,
            EngineConfig::DEFAULT_PARALLEL_THRESHOLD
        );
        assert_eq!(config.chunk, ChunkSize::Auto);
        let off = config
            .without_prefilter()
            .without_l0()
            .with_parallel_threshold(0)
            .with_chunk(ChunkSize::Fixed(1));
        assert!(!off.prefilter);
        assert!(!off.l0);
        assert_eq!(off.parallel_threshold, 0);
        assert_eq!(off.chunk, ChunkSize::Fixed(1));
    }

    #[test]
    fn chunk_sizes_resolve_sanely() {
        let fixed = EngineConfig::with_threads(4).with_chunk(ChunkSize::Fixed(7));
        assert_eq!(fixed.resolved_chunk(100), 7);
        assert_eq!(
            EngineConfig::with_threads(4)
                .with_chunk(ChunkSize::Fixed(0))
                .resolved_chunk(100),
            1
        );
        // Auto: four claims per worker, never zero.
        let auto = EngineConfig::with_threads(4);
        assert_eq!(auto.resolved_chunk(64), 4);
        assert_eq!(auto.resolved_chunk(16), 1);
        assert_eq!(auto.resolved_chunk(0), 1);
        assert_eq!(EngineConfig::serial().resolved_chunk(7), 2);
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize, Serialize};
        for config in [
            EngineConfig::auto(),
            EngineConfig::serial(),
            EngineConfig::with_threads(6),
            EngineConfig::with_threads(2).without_incremental(),
            EngineConfig::with_threads(3).with_pool(PoolMode::Scoped),
            EngineConfig::auto().with_cache_capacity(12_345),
            EngineConfig::auto().without_arena(),
            EngineConfig::serial().without_arena().without_incremental(),
            EngineConfig::auto().without_prefilter(),
            EngineConfig::with_threads(4).without_l0(),
            EngineConfig::auto().with_parallel_threshold(32),
            EngineConfig::with_threads(2).with_chunk(ChunkSize::Fixed(8)),
            EngineConfig::auto()
                .without_prefilter()
                .without_l0()
                .with_parallel_threshold(0)
                .with_chunk(ChunkSize::Fixed(1)),
        ] {
            let back = EngineConfig::from_value(&config.to_value()).unwrap();
            assert_eq!(back, config);
        }
    }
}
