//! The sharded, two-level, bounded memoization cache for evaluations.
//!
//! Level 1 (**subgraph terms**) memoizes the pure per-subgraph scores
//! produced by `Evaluator::eval_subgraph` under the coordinates
//! `(evaluator fingerprint, members, next_wgt, buffer, options)` — the
//! exact inputs of that function, so one entry serves every partition that
//! places the same subgraph before the same successor. Level 2
//! (**partition roll-up**) memoizes whole-partition [`ScoredEval`]s —
//! together with the evaluation's per-subgraph [`EvalMemo`], so a genome
//! whose score comes from a cache hit still hands a memo to its offspring.
//!
//! # Zero-rehash keys
//!
//! Cache identity is **incremental state, not recomputed work**: every key
//! is a fixed-size [`EvalKey`] — the evaluator fingerprint plus a 128-bit
//! content hash folded from precomputed per-subgraph
//! [`NodeSetFp`] fingerprints and the `(buffer, options, next_wgt)`
//! coordinates. Building a key allocates nothing and never walks a member
//! vector, shard selection reads one precomputed word, and the maps use a
//! pass-through hasher ([`BuildFpHasher`]) instead of re-hashing the key
//! per probe. Key equality is fingerprint equality; see
//! [`NodeSetFp`] for the (negligible) collision model.
//!
//! # Bounded growth
//!
//! Both levels are bounded by a configurable entry budget
//! (`EngineConfig::cache_capacity`; the subgraph-term level takes at
//! least half, the memo-carrying partition level the rest under a fixed
//! entry cap — see [`EvalCache::with_capacity`]). A
//! shard that fills up runs a **generation sweep**: entries not touched
//! since the previous sweep are evicted (counted in the level's eviction
//! counter), so a long exploration keeps its working set and sheds stale
//! genomes. Eviction never changes results — a re-miss recomputes the
//! bit-identical value.
//!
//! The cache also persists: [`EvalCache::snapshot`]/[`EvalCache::restore`]
//! move both levels through a serde-serializable [`CacheSnapshot`], and
//! [`EvalCache::save`]/[`CacheSnapshot::load`] write/read it as JSON so
//! repeated explorations of the same model warm-start. Keys embed the
//! evaluator fingerprint, so entries recorded under a different
//! accelerator configuration (or model) can never produce a false hit;
//! [`CacheSnapshot::split_fingerprint`] additionally lets callers restore
//! only the entries of the evaluator at hand. Snapshots from the previous
//! (v1, member-vector-keyed) format are upgraded on load by re-deriving
//! each key's fingerprints, so `--cache-file` warm starts survive the
//! re-keying.

use crate::engine::{EvalMemo, ScoredEval, SubgraphScore};
use cocco_faults::{atomic_save, FaultPlan};
use cocco_graph::{mix64, BuildFpHasher, NodeId, NodeSetFp};
use cocco_sim::{BufferConfig, EvalOptions};
use cocco_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of independent shards; keys spread by their precomputed hash, so
/// concurrent workers rarely contend on the same lock.
const SHARDS: usize = 16;

/// Folds one word into a 128-bit chain state (order-sensitive; the two
/// lanes stay independent through different salts).
#[inline]
fn fold(lo: &mut u64, hi: &mut u64, word: u64) {
    *lo = mix64(*lo ^ word);
    *hi = mix64(*hi ^ word ^ 0x9E37_79B9_7F4A_7C15);
}

/// A fixed-size cache key: the evaluator fingerprint (kept verbatim so
/// snapshots can be split per `(model, accelerator)` pair) plus a 128-bit
/// content hash of the evaluation coordinates. Copyable, allocation-free,
/// and pre-hashed — a probe neither builds a key vector nor re-hashes one.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EvalKey {
    /// The evaluator's `(graph, accelerator config)` fingerprint.
    pub fingerprint: u64,
    /// First lane of the content hash (also the shard/bucket selector).
    pub lo: u64,
    /// Second, independently salted lane of the content hash.
    pub hi: u64,
}

impl EvalKey {
    /// The `(fingerprint, buffer, options)` coordinate prefix shared by
    /// both key kinds.
    #[inline]
    fn coords(fingerprint: u64, buffer: &BufferConfig, options: EvalOptions) -> (u64, u64) {
        let mut lo = mix64(fingerprint ^ 0x243F_6A88_85A3_08D3);
        let mut hi = mix64(fingerprint ^ 0x1319_8A2E_0370_7344);
        let (tag, a, b) = match buffer {
            BufferConfig::Shared { total } => (0u64, *total, 0u64),
            BufferConfig::Separate { glb, wgt } => (1u64, *glb, *wgt),
        };
        for word in [
            tag,
            a,
            b,
            u64::from(options.cores()),
            u64::from(options.batch()),
        ] {
            fold(&mut lo, &mut hi, word);
        }
        (lo, hi)
    }

    /// The key of one subgraph term: `(evaluator fingerprint, members,
    /// next_wgt, buffer, options)`, with the member set represented by its
    /// precomputed [`NodeSetFp`]. O(1), no allocation.
    pub fn subgraph(
        fingerprint: u64,
        members: NodeSetFp,
        next_wgt: u64,
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> Self {
        let (mut lo, mut hi) = Self::coords(fingerprint, buffer, options);
        fold(&mut lo, &mut hi, next_wgt);
        fold(&mut lo, &mut hi, members.lo);
        fold(&mut lo, &mut hi, members.hi);
        Self {
            fingerprint,
            lo,
            hi,
        }
    }

    /// The key of a whole-partition roll-up: the ordered subgraph
    /// fingerprints folded into the coordinate chain. Subgraph *order* is
    /// part of the key (the fold is a chain) — partition evaluation is
    /// order-sensitive because the bandwidth model prefetches the *next*
    /// subgraph's weights. O(#subgraphs), no allocation.
    pub fn partition<I>(
        fingerprint: u64,
        subgraphs: I,
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> Self
    where
        I: IntoIterator<Item = NodeSetFp>,
    {
        let (mut lo, mut hi) = Self::coords(fingerprint, buffer, options);
        let mut count = 0u64;
        for fp in subgraphs {
            fold(&mut lo, &mut hi, fp.lo);
            fold(&mut lo, &mut hi, fp.hi);
            count += 1;
        }
        fold(&mut lo, &mut hi, count);
        Self {
            fingerprint,
            lo,
            hi,
        }
    }

    /// Deterministic shard selection from the precomputed hash.
    #[inline]
    fn shard(&self) -> usize {
        (self.lo % SHARDS as u64) as usize
    }
}

/// Encodes `(evaluator fingerprint, subgraphs, buffer, options)` into a
/// partition-level [`EvalKey`], fingerprinting each member list on the fly
/// (hot paths precompute the fingerprints instead and call
/// [`EvalKey::partition`]).
pub fn eval_key(
    fingerprint: u64,
    subgraphs: &[Vec<NodeId>],
    buffer: &BufferConfig,
    options: EvalOptions,
) -> EvalKey {
    EvalKey::partition(
        fingerprint,
        subgraphs.iter().map(|m| NodeSetFp::of_members(m)),
        buffer,
        options,
    )
}

/// Encodes `(evaluator fingerprint, members, next_wgt, buffer, options)`
/// into a subgraph-level [`EvalKey`], fingerprinting the member list on
/// the fly.
pub fn subgraph_key(
    fingerprint: u64,
    members: &[NodeId],
    next_wgt: u64,
    buffer: &BufferConfig,
    options: EvalOptions,
) -> EvalKey {
    EvalKey::subgraph(
        fingerprint,
        NodeSetFp::of_members(members),
        next_wgt,
        buffer,
        options,
    )
}

/// One cached value plus its last-touched generation (updated on hits
/// under the shard's read lock, hence atomic).
#[derive(Debug)]
struct Slot<V> {
    value: V,
    gen: AtomicU64,
}

/// One shard: the map plus the shard's sweep generation.
#[derive(Debug)]
struct ShardMap<V> {
    map: HashMap<EvalKey, Slot<V>, BuildFpHasher>,
    gen: u64,
}

/// One level of the cache: sharded bounded map plus hit/miss/eviction
/// counters.
#[derive(Debug)]
struct Level<V> {
    /// Level name for telemetry events (`"partition"` / `"subgraph"`).
    name: &'static str,
    shards: [RwLock<ShardMap<V>>; SHARDS],
    /// Entry budget per shard.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Sweep events land here; disabled handles cost one branch per
    /// sweep (sweeps are rare — at most one per `capacity/2` inserts).
    telemetry: Telemetry,
}

impl<V> Level<V> {
    fn new(name: &'static str, capacity: usize, telemetry: Telemetry) -> Self {
        Self {
            name,
            shards: std::array::from_fn(|_| {
                RwLock::new(ShardMap {
                    map: HashMap::default(),
                    gen: 0,
                })
            }),
            shard_capacity: (capacity / SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            telemetry,
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| read_shard(s).map.len()).sum()
    }
}

/// Takes a shard's read lock, tolerating poisoning: every value in the map
/// was inserted whole under the write lock, so a panic elsewhere (a worker
/// job dying mid-batch) never leaves a torn entry behind — the data is
/// valid and the engine must stay usable after the panic is caught.
fn read_shard<V>(shard: &RwLock<ShardMap<V>>) -> RwLockReadGuard<'_, ShardMap<V>> {
    shard
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Takes a shard's write lock, tolerating poisoning (see [`read_shard`]).
fn write_shard<V>(shard: &RwLock<ShardMap<V>>) -> RwLockWriteGuard<'_, ShardMap<V>> {
    shard
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<V: Clone> Level<V> {
    fn get(&self, key: &EvalKey) -> Option<V> {
        let found = {
            let shard = read_shard(&self.shards[key.shard()]);
            shard.map.get(key).map(|slot| {
                // Touch: mark the entry live in the current generation so
                // the next sweep keeps it.
                slot.gen.store(shard.gen, Ordering::Relaxed);
                slot.value.clone()
            })
        };
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: EvalKey, value: V) {
        let mut shard = write_shard(&self.shards[key.shard()]);
        let gen = shard.gen;
        shard.map.insert(
            key,
            Slot {
                value,
                gen: AtomicU64::new(gen),
            },
        );
        if shard.map.len() > self.shard_capacity {
            // Generation sweep: evict everything not touched since the
            // previous sweep; if the live working set alone overflows the
            // budget, shed down to *half* the budget (not just the
            // surplus) so the next full-shard sweep is amortized over
            // `capacity/2` inserts instead of firing on every one.
            let before = shard.map.len();
            shard
                .map
                .retain(|_, slot| slot.gen.load(Ordering::Relaxed) >= gen);
            if shard.map.len() > self.shard_capacity {
                let target = (self.shard_capacity / 2).max(1);
                let surplus = shard.map.len() - target;
                // Victim selection must not depend on HashMap iteration
                // order: two identical runs have to shed the *same*
                // entries, or their persisted snapshots diverge. Sort the
                // candidate keys and evict the smallest — any total order
                // works, as long as it is a property of the keys alone.
                // cocco-audit: allow(D1) victims are sorted before use, so map order never escapes
                let mut victims: Vec<EvalKey> = shard.map.keys().copied().collect();
                victims.sort_unstable();
                for victim in victims.iter().take(surplus) {
                    shard.map.remove(victim);
                }
            }
            shard.gen += 1;
            let evicted = (before - shard.map.len()) as u64;
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            let remaining = shard.map.len();
            self.telemetry.emit("engine.cache.sweep", || {
                vec![
                    ("level", self.name.into()),
                    ("evicted", evicted.into()),
                    ("remaining", remaining.into()),
                ]
            });
        }
    }

    /// All entries projected through `project`, sorted by key so snapshots
    /// are stable and diffable.
    fn entries<T>(&self, project: impl Fn(&V) -> T) -> Vec<(EvalKey, T)> {
        let mut out: Vec<(EvalKey, T)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            // cocco-audit: allow(D1) the collected entries are sorted by key below, so map order never escapes
            for (k, slot) in read_shard(shard).map.iter() {
                out.push((*k, project(&slot.value)));
            }
        }
        out.sort_by_key(|entry| entry.0);
        out
    }
}

/// A serializable image of both cache levels, for cross-run persistence.
///
/// Entries are plain `(key, value)` pairs sorted by key; the `f64` fields
/// inside the values survive the JSON round-trip exactly, so a
/// warm-started exploration is bit-identical to a cold one — the snapshot
/// only changes which lookups hit. (The in-memory memos attached to
/// partition entries are *not* persisted: a restored entry answers with
/// its score and no memo, exactly like a fresh roll-up hit did before
/// memos were cached.)
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Snapshot format version (bumped on incompatible key changes).
    pub version: u32,
    /// Partition roll-up entries.
    pub partition: Vec<(EvalKey, ScoredEval)>,
    /// Per-subgraph term entries.
    pub subgraph: Vec<(EvalKey, SubgraphScore)>,
}

/// Current [`CacheSnapshot::version`]. Version 1 (member-vector keys) is
/// upgraded on load by re-deriving each key's fingerprints; other versions
/// load as empty.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The version-1 on-disk shape: keys were flattened `u64` sequences
/// (`[fingerprint, buffer tag, b1, b2, cores, batch, ...members...]`).
#[derive(Deserialize)]
struct SnapshotV1 {
    version: u32,
    partition: Vec<(Vec<u64>, ScoredEval)>,
    subgraph: Vec<(Vec<u64>, SubgraphScore)>,
}

/// Parses a v1 key's coordinate prefix; returns the trailing member words.
fn v1_coords(words: &[u64]) -> Option<(u64, BufferConfig, EvalOptions, &[u64])> {
    if words.len() < 6 {
        return None;
    }
    let fingerprint = words[0];
    let buffer = match words[1] {
        0 => BufferConfig::shared(words[2]),
        1 => BufferConfig::separate(words[2], words[3]),
        _ => return None,
    };
    let cores = u32::try_from(words[4]).ok()?;
    let batch = u32::try_from(words[5]).ok()?;
    let options = EvalOptions::new(cores, batch).ok()?;
    Some((fingerprint, buffer, options, &words[6..]))
}

/// Re-derives a v2 partition key from a v1 one (member groups separated by
/// `u64::MAX`).
fn v1_partition_key(words: &[u64]) -> Option<EvalKey> {
    let (fingerprint, buffer, options, rest) = v1_coords(words)?;
    let mut fps = Vec::new();
    let mut current = NodeSetFp::EMPTY;
    let mut members = 0usize;
    for &w in rest {
        if w == u64::MAX {
            if members == 0 {
                return None; // empty group: not a v1 writer's output
            }
            fps.push(current);
            current = NodeSetFp::EMPTY;
            members = 0;
        } else {
            current.insert(NodeId::from_index(usize::try_from(w).ok()?));
            members += 1;
        }
    }
    if members != 0 {
        return None; // trailing members without a separator
    }
    Some(EvalKey::partition(fingerprint, fps, &buffer, options))
}

/// Re-derives a v2 subgraph key from a v1 one (`[next_wgt, ...members]`).
fn v1_subgraph_key(words: &[u64]) -> Option<EvalKey> {
    let (fingerprint, buffer, options, rest) = v1_coords(words)?;
    let (&next_wgt, members) = rest.split_first()?;
    if members.is_empty() {
        return None;
    }
    let mut fp = NodeSetFp::EMPTY;
    for &w in members {
        fp.insert(NodeId::from_index(usize::try_from(w).ok()?));
    }
    Some(EvalKey::subgraph(
        fingerprint,
        fp,
        next_wgt,
        &buffer,
        options,
    ))
}

impl CacheSnapshot {
    /// Total entries across both levels.
    pub fn len(&self) -> usize {
        self.partition.len() + self.subgraph.len()
    }

    /// `true` when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the entries recorded under `fingerprint` (first) and
    /// everything else (second). Every key carries the evaluator
    /// fingerprint, so this cleanly separates one `(model, accelerator)`
    /// pair's entries from a multi-model cache file — changing the
    /// accelerator configuration changes the fingerprint and thereby
    /// invalidates (filters out) all previous entries.
    pub fn split_fingerprint(self, fingerprint: u64) -> (CacheSnapshot, CacheSnapshot) {
        let mut mine = CacheSnapshot {
            version: self.version,
            ..Default::default()
        };
        let mut rest = mine.clone();
        for entry in self.partition {
            let target = if entry.0.fingerprint == fingerprint {
                &mut mine.partition
            } else {
                &mut rest.partition
            };
            target.push(entry);
        }
        for entry in self.subgraph {
            let target = if entry.0.fingerprint == fingerprint {
                &mut mine.subgraph
            } else {
                &mut rest.subgraph
            };
            target.push(entry);
        }
        (mine, rest)
    }

    /// Appends another snapshot's entries (deduplication happens on
    /// restore — later inserts of an identical key overwrite with an
    /// identical, deterministically computed value).
    pub fn merge(&mut self, other: CacheSnapshot) {
        self.partition.extend(other.partition);
        self.subgraph.extend(other.subgraph);
        self.partition.sort_by_key(|entry| entry.0);
        self.subgraph.sort_by_key(|entry| entry.0);
        self.partition.dedup_by(|a, b| a.0 == b.0);
        self.subgraph.dedup_by(|a, b| a.0 == b.0);
    }

    /// Writes the snapshot to `path` as JSON, atomically: the document is
    /// written to a unique sibling temp file and renamed into place (so a
    /// reader — or a concurrent saver sharing one sweep-wide cache file —
    /// never observes a half-written snapshot), with bounded attempt-count
    /// retry and guaranteed temp-file cleanup on every error path (see
    /// [`cocco_faults::atomic_save`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors after the final attempt.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.save_with(path, &FaultPlan::disabled())
    }

    /// Like [`save`](Self::save), with a [`FaultPlan`] that can inject
    /// write errors / torn writes and that records save retries and
    /// failures on its log.
    pub fn save_with(&self, path: &Path, faults: &FaultPlan) -> std::io::Result<()> {
        let text = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        atomic_save(path, &text, faults)
    }

    /// Reads a snapshot from `path`. A version-1 snapshot is upgraded in
    /// place (fingerprints re-derived from its member-vector keys); other
    /// foreign versions load as empty (their keys must not be trusted).
    ///
    /// # Errors
    ///
    /// Returns filesystem errors as-is and malformed JSON as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<CacheSnapshot> {
        Self::load_with(path, &FaultPlan::disabled())
    }

    /// Like [`load`](Self::load), but a corrupt document — truncated by a
    /// torn write, or with a garbage region — is **salvaged** instead of
    /// rejected: every entry of either level that still parses (current
    /// *or* v1 key shape) is recovered, and only a document yielding zero
    /// entries is reported as `InvalidData`. Salvaged and dropped entry
    /// counts land on the [`FaultPlan`]'s log — including for disabled
    /// plans, so real corruption is always visible in health reports.
    pub fn load_with(path: &Path, faults: &FaultPlan) -> std::io::Result<CacheSnapshot> {
        let text = std::fs::read_to_string(path)?;
        let current = serde_json::from_str::<CacheSnapshot>(&text);
        if let Ok(snap) = current {
            if snap.version == SNAPSHOT_VERSION {
                return Ok(snap);
            }
            return Ok(CacheSnapshot {
                version: SNAPSHOT_VERSION,
                ..Default::default()
            });
        }
        // Not the current shape: a v1 document (upgrade it), or a corrupt
        // one (salvage what parses), or hopeless garbage (report it).
        let v1: SnapshotV1 = match serde_json::from_str(&text) {
            Ok(v1) => v1,
            Err(e) => {
                return match salvage(&text, faults) {
                    Some(snap) => Ok(snap),
                    None => Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    )),
                };
            }
        };
        if v1.version != 1 {
            return Ok(CacheSnapshot {
                version: SNAPSHOT_VERSION,
                ..Default::default()
            });
        }
        let mut out = CacheSnapshot {
            version: SNAPSHOT_VERSION,
            ..Default::default()
        };
        for (words, value) in v1.partition {
            if let Some(key) = v1_partition_key(&words) {
                out.partition.push((key, value));
            }
        }
        for (words, value) in v1.subgraph {
            if let Some(key) = v1_subgraph_key(&words) {
                out.subgraph.push((key, value));
            }
        }
        out.partition.sort_by_key(|entry| entry.0);
        out.subgraph.sort_by_key(|entry| entry.0);
        Ok(out)
    }
}

/// Best-effort recovery of a corrupt snapshot document: extracts the
/// top-level elements of the `"partition"` and `"subgraph"` arrays
/// textually (string- and nesting-aware, tolerant of truncation) and keeps
/// every element that parses under the current key shape or upgrades from
/// the v1 shape. Returns `None` when nothing is recoverable. Entries are
/// worth salvaging because cached values are *exact*: a warm start from a
/// salvaged subset is bit-identical to one from the full file — the subset
/// only changes which lookups hit.
fn salvage(text: &str, faults: &FaultPlan) -> Option<CacheSnapshot> {
    let mut out = CacheSnapshot {
        version: SNAPSHOT_VERSION,
        ..Default::default()
    };
    let mut dropped = 0u64;
    for element in extract_array_elements(text, "partition") {
        if let Ok(entry) = serde_json::from_str::<(EvalKey, ScoredEval)>(element) {
            out.partition.push(entry);
        } else if let Ok((words, value)) = serde_json::from_str::<(Vec<u64>, ScoredEval)>(element) {
            match v1_partition_key(&words) {
                Some(key) => out.partition.push((key, value)),
                None => dropped += 1,
            }
        } else {
            dropped += 1;
        }
    }
    for element in extract_array_elements(text, "subgraph") {
        if let Ok(entry) = serde_json::from_str::<(EvalKey, SubgraphScore)>(element) {
            out.subgraph.push(entry);
        } else if let Ok((words, value)) =
            serde_json::from_str::<(Vec<u64>, SubgraphScore)>(element)
        {
            match v1_subgraph_key(&words) {
                Some(key) => out.subgraph.push((key, value)),
                None => dropped += 1,
            }
        } else {
            dropped += 1;
        }
    }
    if out.is_empty() {
        return None;
    }
    out.partition.sort_by_key(|entry| entry.0);
    out.subgraph.sort_by_key(|entry| entry.0);
    out.partition.dedup_by(|a, b| a.0 == b.0);
    out.subgraph.dedup_by(|a, b| a.0 == b.0);
    faults.log().note_salvaged_entries(out.len() as u64);
    faults.log().note_dropped_entries(dropped);
    Some(out)
}

/// Returns the top-level element substrings of the JSON array stored under
/// `"field"` in `text`, without requiring the document to be well-formed:
/// elements are split on depth-0 commas with full string/escape awareness,
/// extraction stops at the array's closing bracket (or any depth-0
/// close — corruption may unbalance the document), and a trailing partial
/// element from a torn write is dropped rather than returned.
fn extract_array_elements<'a>(text: &'a str, field: &str) -> Vec<&'a str> {
    let marker = format!("\"{field}\"");
    let Some(pos) = text.find(&marker) else {
        return Vec::new();
    };
    let after = &text[pos + marker.len()..];
    let Some(stripped) = after.trim_start().strip_prefix(':') else {
        return Vec::new();
    };
    let Some(body) = stripped.trim_start().strip_prefix('[') else {
        return Vec::new();
    };
    let mut elements = Vec::new();
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0usize;
    let push = |elements: &mut Vec<&'a str>, start: usize, end: usize| {
        let element = body[start..end].trim();
        if !element.is_empty() {
            elements.push(element);
        }
    };
    for (i, c) in body.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' | '{' => depth += 1,
            ']' | '}' => {
                if depth == 0 {
                    // The array's own close (or an unbalanced one from a
                    // corrupt region): the last complete element ends here.
                    push(&mut elements, start, i);
                    return elements;
                }
                depth -= 1;
            }
            ',' if depth == 0 => {
                push(&mut elements, start, i);
                start = i + 1;
            }
            _ => {}
        }
    }
    // Truncated document: whatever trails the last depth-0 comma is a
    // partial element — drop it.
    elements
}

/// The two-level sharded, bounded evaluation cache.
///
/// Lookups take a shard read lock; inserts a shard write lock. Two workers
/// racing on the same missing key may both compute it — the computation is
/// deterministic, so the duplicate insert is idempotent and results never
/// depend on the race.
#[derive(Debug)]
pub struct EvalCache {
    partition: Level<(ScoredEval, Option<Arc<EvalMemo>>)>,
    subgraph: Level<SubgraphScore>,
    /// Per-probe key-material heap allocations. The fingerprint path never
    /// allocates to build or look up a key, so this stays 0; it exists as
    /// a regression tripwire (asserted by the CI smoke benchmark) for any
    /// future code path that falls back to allocating keys.
    key_allocs: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache with the default (generous) entry budget.
    pub fn new() -> Self {
        Self::with_capacity(crate::config::EngineConfig::DEFAULT_CACHE_CAPACITY)
    }

    /// Upper bound on the partition level's share of any capacity.
    /// Partition entries are the heavy ones — each pins an [`EvalMemo`]
    /// (O(#subgraphs) fingerprints + terms, kilobytes on large models),
    /// where subgraph-term entries are a few dozen bytes — and partition
    /// roll-ups also pay off only for recently re-proposed genomes, so a
    /// moderate budget keeps their hit rate while capping memo residency
    /// at tens of megabytes instead of letting a generous total budget
    /// admit gigabytes of memos.
    const PARTITION_ENTRY_CAP: usize = 1 << 14;

    /// Creates an empty cache bounded to `capacity` total entries. The
    /// subgraph-term level takes at least half; the partition level takes
    /// the rest, additionally capped at
    /// [`PARTITION_ENTRY_CAP`](Self::PARTITION_ENTRY_CAP) entries because
    /// its entries carry memos (see the constant's docs). Tiny capacities
    /// are clamped so every shard can hold at least one entry.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_telemetry(capacity, Telemetry::disabled())
    }

    /// Like [`with_capacity`](Self::with_capacity), but an enabled
    /// `telemetry` handle receives an `engine.cache.sweep` event (level,
    /// evicted, remaining) whenever a generation sweep fires.
    /// Observation-only: the sweep policy and its victims are unchanged.
    pub fn with_capacity_telemetry(capacity: usize, telemetry: Telemetry) -> Self {
        let partition = (capacity / 2).clamp(SHARDS, Self::PARTITION_ENTRY_CAP);
        let subgraph = capacity.saturating_sub(partition).max(SHARDS);
        Self {
            partition: Level::new("partition", partition, telemetry.clone()),
            subgraph: Level::new("subgraph", subgraph, telemetry),
            key_allocs: AtomicU64::new(0),
        }
    }

    /// Looks a partition roll-up key up, counting a hit or miss.
    pub fn get(&self, key: &EvalKey) -> Option<ScoredEval> {
        self.get_memoized(key).map(|(scored, _)| scored)
    }

    /// Looks a partition roll-up key up, returning the score *and* the
    /// per-subgraph memo recorded with it (if the entry was composed on
    /// the incremental path), counting a hit or miss.
    pub fn get_memoized(&self, key: &EvalKey) -> Option<(ScoredEval, Option<Arc<EvalMemo>>)> {
        self.partition.get(key)
    }

    /// Inserts a computed partition evaluation without a memo.
    pub fn insert(&self, key: EvalKey, value: ScoredEval) {
        self.insert_memoized(key, value, None);
    }

    /// Inserts a computed partition evaluation together with its
    /// per-subgraph memo, so later hits can hand the memo to offspring.
    pub fn insert_memoized(&self, key: EvalKey, value: ScoredEval, memo: Option<Arc<EvalMemo>>) {
        self.partition.insert(key, (value, memo));
    }

    /// Looks a per-subgraph term up, counting a subgraph-level hit or miss.
    pub fn get_subgraph(&self, key: &EvalKey) -> Option<SubgraphScore> {
        self.subgraph.get(key)
    }

    /// Inserts a computed per-subgraph term.
    pub fn insert_subgraph(&self, key: EvalKey, value: SubgraphScore) {
        self.subgraph.insert(key, value);
    }

    /// Distinct cached evaluations across both levels.
    pub fn len(&self) -> usize {
        self.partition.len() + self.subgraph.len()
    }

    /// `true` when nothing has been cached at either level.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct partition roll-up entries.
    pub fn partition_entries(&self) -> usize {
        self.partition.len()
    }

    /// Distinct per-subgraph term entries.
    pub fn subgraph_entries(&self) -> usize {
        self.subgraph.len()
    }

    /// Partition-level lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.partition.hits.load(Ordering::Relaxed)
    }

    /// Partition-level lookups that required composing or evaluating.
    pub fn misses(&self) -> u64 {
        self.partition.misses.load(Ordering::Relaxed)
    }

    /// Subgraph-level lookups answered from the cache.
    pub fn subgraph_hits(&self) -> u64 {
        self.subgraph.hits.load(Ordering::Relaxed)
    }

    /// Subgraph-level lookups that required a fresh `eval_subgraph` term.
    pub fn subgraph_misses(&self) -> u64 {
        self.subgraph.misses.load(Ordering::Relaxed)
    }

    /// Partition-level entries evicted by generation sweeps.
    pub fn evictions(&self) -> u64 {
        self.partition.evictions.load(Ordering::Relaxed)
    }

    /// Subgraph-level entries evicted by generation sweeps.
    pub fn subgraph_evictions(&self) -> u64 {
        self.subgraph.evictions.load(Ordering::Relaxed)
    }

    /// Per-probe key-material allocations (see the field docs; always 0 on
    /// the fingerprint path).
    pub fn key_allocs(&self) -> u64 {
        self.key_allocs.load(Ordering::Relaxed)
    }

    /// Records a per-probe key allocation (tripwire; no current caller).
    pub fn record_key_alloc(&self) {
        self.key_allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a partition lookup answered by a worker-local L0 cache.
    ///
    /// Every L0-resident entry is (or will be, via the batch-end drain)
    /// also present in this shared cache, so an L0 hit is semantically a
    /// cache hit; crediting it here keeps `evals = hits + misses`
    /// invariant regardless of where the probe was satisfied.
    pub(crate) fn record_l0_partition_hit(&self) {
        self.partition.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a subgraph-term lookup answered by a worker-local L0 cache
    /// (same accounting rationale as
    /// [`record_l0_partition_hit`](Self::record_l0_partition_hit)).
    pub(crate) fn record_l0_subgraph_hit(&self) {
        self.subgraph.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A serializable image of both levels (entries sorted by key; memos
    /// are process-local and not persisted).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            version: SNAPSHOT_VERSION,
            partition: self.partition.entries(|(scored, _)| *scored),
            subgraph: self.subgraph.entries(|term| *term),
        }
    }

    /// Inserts every entry of `snapshot` (counters are unaffected —
    /// restored entries only show up as later hits).
    pub fn restore(&self, snapshot: &CacheSnapshot) {
        if snapshot.version != SNAPSHOT_VERSION {
            return;
        }
        for (key, value) in &snapshot.partition {
            self.partition.insert(*key, (*value, None));
        }
        for (key, value) in &snapshot.subgraph {
            self.subgraph.insert(*key, *value);
        }
    }

    /// Saves a snapshot of both levels to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; see [`CacheSnapshot::save`].
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.snapshot().save(path)
    }

    /// Loads a snapshot from `path` and restores every entry.
    ///
    /// # Errors
    ///
    /// See [`CacheSnapshot::load`].
    pub fn load(&self, path: &Path) -> std::io::Result<usize> {
        let snap = CacheSnapshot::load(path)?;
        self.restore(&snap);
        Ok(snap.len())
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(groups: &[&[usize]]) -> Vec<Vec<NodeId>> {
        groups
            .iter()
            .map(|g| g.iter().map(|&i| NodeId::from_index(i)).collect())
            .collect()
    }

    fn scored(ema: u64) -> ScoredEval {
        ScoredEval {
            ema_bytes: ema,
            energy_pj: ema as f64,
            buffer_bytes: 1,
            fits: true,
            error: false,
        }
    }

    fn term(ema: u64) -> SubgraphScore {
        SubgraphScore {
            ema_bytes: ema,
            energy_pj: ema as f64 * 0.5,
            fits: true,
        }
    }

    #[test]
    fn keys_distinguish_subgraph_boundaries_and_order() {
        let buf = BufferConfig::shared(1 << 20);
        let opt = EvalOptions::default();
        let a = eval_key(7, &sg(&[&[0, 1], &[2]]), &buf, opt);
        let b = eval_key(7, &sg(&[&[0], &[1, 2]]), &buf, opt);
        let c = eval_key(7, &sg(&[&[2], &[0, 1]]), &buf, opt);
        assert_ne!(a, b, "boundary placement must matter");
        assert_ne!(a, c, "subgraph order must matter");
        // Member order inside one subgraph is canonical by construction:
        // the fingerprint is order-independent, so permuted listings of
        // the same set share a key.
        assert_eq!(
            eval_key(7, &sg(&[&[0, 1], &[2]]), &buf, opt),
            eval_key(7, &sg(&[&[1, 0], &[2]]), &buf, opt)
        );
    }

    #[test]
    fn keys_distinguish_evaluators() {
        // Same subgraphs, buffer and options under two evaluator
        // fingerprints (two models/platforms) must never collide.
        let buf = BufferConfig::shared(1 << 20);
        let opt = EvalOptions::default();
        let a = eval_key(1, &sg(&[&[0, 1]]), &buf, opt);
        let b = eval_key(2, &sg(&[&[0, 1]]), &buf, opt);
        assert_ne!(a, b, "evaluator identity must be part of the key");
        assert_eq!(a.fingerprint, 1, "the raw fingerprint rides along");
        assert_eq!(b.fingerprint, 2);
    }

    #[test]
    fn keys_distinguish_buffer_and_options() {
        let parts = sg(&[&[0, 1]]);
        let base = eval_key(
            7,
            &parts,
            &BufferConfig::shared(1 << 20),
            EvalOptions::default(),
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(2 << 20),
                EvalOptions::default()
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::separate(1 << 19, 1 << 19),
                EvalOptions::default()
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(1 << 20),
                EvalOptions::with_cores(2)
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(1 << 20),
                EvalOptions::with_batch(4)
            )
        );
    }

    #[test]
    fn subgraph_keys_distinguish_next_wgt_and_members() {
        let members: Vec<NodeId> = [0usize, 1].iter().map(|&i| NodeId::from_index(i)).collect();
        let buf = BufferConfig::shared(1 << 20);
        let opt = EvalOptions::default();
        let base = subgraph_key(7, &members, 0, &buf, opt);
        assert_ne!(
            base,
            subgraph_key(7, &members, 4096, &buf, opt),
            "the successor's weight prefetch is a term input"
        );
        assert_ne!(base, subgraph_key(7, &members[..1], 0, &buf, opt));
        assert_ne!(base, subgraph_key(8, &members, 0, &buf, opt));
    }

    #[test]
    fn hit_and_miss_counters_per_level() {
        let cache = EvalCache::new();
        let key = eval_key(
            7,
            &sg(&[&[0]]),
            &BufferConfig::shared(64),
            EvalOptions::default(),
        );
        assert!(cache.get(&key).is_none());
        cache.insert(key, scored(7));
        assert_eq!(cache.get(&key).unwrap().ema_bytes, 7);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.partition_entries(), 1);

        let members = [NodeId::from_index(0)];
        let skey = subgraph_key(
            7,
            &members,
            0,
            &BufferConfig::shared(64),
            Default::default(),
        );
        assert!(cache.get_subgraph(&skey).is_none());
        cache.insert_subgraph(skey, term(3));
        assert_eq!(cache.get_subgraph(&skey).unwrap().ema_bytes, 3);
        assert_eq!(cache.subgraph_hits(), 1);
        assert_eq!(cache.subgraph_misses(), 1);
        assert_eq!(cache.subgraph_entries(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.key_allocs(), 0);
    }

    #[test]
    fn capacity_bounds_entries_with_generation_sweeps() {
        // 64 total -> 32 per level -> 2 per shard; flooding one level far
        // past the budget must stay bounded and count evictions.
        let cache = EvalCache::with_capacity(64);
        let buf = BufferConfig::shared(64);
        for i in 0..4096usize {
            cache.insert_subgraph(
                subgraph_key(7, &[NodeId::from_index(i)], 0, &buf, Default::default()),
                term(i as u64),
            );
        }
        assert!(
            cache.subgraph_entries() <= 32,
            "level exceeded its budget: {}",
            cache.subgraph_entries()
        );
        assert!(cache.subgraph_evictions() > 0);
        // A hot entry that is touched between sweeps survives them.
        let hot = subgraph_key(7, &[NodeId::from_index(9999)], 0, &buf, Default::default());
        cache.insert_subgraph(hot, term(1));
        for i in 0..512usize {
            assert!(
                cache.get_subgraph(&hot).is_some(),
                "hot entry evicted at {i}"
            );
            cache.insert_subgraph(
                subgraph_key(
                    7,
                    &[NodeId::from_index(100_000 + i)],
                    0,
                    &buf,
                    Default::default(),
                ),
                term(2),
            );
        }
    }

    #[test]
    fn memo_rides_along_partition_entries() {
        let cache = EvalCache::new();
        let key = eval_key(
            7,
            &sg(&[&[0, 1]]),
            &BufferConfig::shared(64),
            EvalOptions::default(),
        );
        cache.insert_memoized(key, scored(5), None);
        let (value, memo) = cache.get_memoized(&key).unwrap();
        assert_eq!(value, scored(5));
        assert!(memo.is_none());
    }

    #[test]
    fn snapshot_round_trips_both_levels() {
        let cache = EvalCache::new();
        let pkey = eval_key(
            7,
            &sg(&[&[0, 1]]),
            &BufferConfig::shared(64),
            EvalOptions::default(),
        );
        cache.insert(pkey, scored(11));
        let members = [NodeId::from_index(0)];
        let skey = subgraph_key(
            7,
            &members,
            5,
            &BufferConfig::shared(64),
            Default::default(),
        );
        cache.insert_subgraph(skey, term(13));

        let snap = cache.snapshot();
        assert_eq!(snap.len(), 2);
        let other = EvalCache::new();
        other.restore(&snap);
        assert_eq!(other.get(&pkey).unwrap(), scored(11));
        assert_eq!(other.get_subgraph(&skey).unwrap(), term(13));
        assert_eq!(other.snapshot(), snap, "snapshot ordering is stable");
    }

    #[test]
    fn snapshot_split_by_fingerprint() {
        let cache = EvalCache::new();
        for fp in [1u64, 2] {
            cache.insert(
                eval_key(
                    fp,
                    &sg(&[&[0]]),
                    &BufferConfig::shared(64),
                    EvalOptions::default(),
                ),
                scored(fp),
            );
            cache.insert_subgraph(
                subgraph_key(
                    fp,
                    &[NodeId::from_index(0)],
                    0,
                    &BufferConfig::shared(64),
                    Default::default(),
                ),
                term(fp),
            );
        }
        let (mine, rest) = cache.snapshot().split_fingerprint(1);
        assert_eq!(mine.len(), 2);
        assert_eq!(rest.len(), 2);
        assert!(mine.partition.iter().all(|(k, _)| k.fingerprint == 1));
        assert!(rest.partition.iter().all(|(k, _)| k.fingerprint == 2));
        let mut merged = mine.clone();
        merged.merge(rest);
        assert_eq!(merged.len(), 4);
        // Merging a duplicate is idempotent.
        merged.merge(mine);
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join(format!("cocco-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let cache = EvalCache::new();
        cache.insert(
            eval_key(
                9,
                &sg(&[&[0, 1], &[2]]),
                &BufferConfig::separate(1 << 19, 1 << 19),
                EvalOptions::default(),
            ),
            scored(21),
        );
        cache.insert_subgraph(
            subgraph_key(
                9,
                &[NodeId::from_index(2)],
                77,
                &BufferConfig::separate(1 << 19, 1 << 19),
                Default::default(),
            ),
            SubgraphScore {
                ema_bytes: 5,
                energy_pj: 1.0 / 3.0, // exercises exact f64 round-trip
                fits: false,
            },
        );
        cache.save(&path).unwrap();
        let restored = EvalCache::new();
        assert_eq!(restored.load(&path).unwrap(), 2);
        assert_eq!(restored.snapshot(), cache.snapshot());

        // Malformed files surface as InvalidData, not a panic.
        std::fs::write(&path, "{not json").unwrap();
        let err = CacheSnapshot::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Unknown versions load as empty.
        let stale = CacheSnapshot {
            version: SNAPSHOT_VERSION + 1,
            partition: vec![(
                EvalKey {
                    fingerprint: 1,
                    lo: 2,
                    hi: 3,
                },
                scored(1),
            )],
            subgraph: Vec::new(),
        };
        stale.save(&path).unwrap();
        assert!(CacheSnapshot::load(&path).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_snapshots_upgrade_with_rederived_fingerprints() {
        // A hand-written v1 document (flattened u64 keys, exactly the PR 3
        // writer's layout) must load with keys equal to the ones the new
        // constructors produce for the same coordinates.
        let dir = std::env::temp_dir().join(format!("cocco-cache-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.json");
        let buffer = BufferConfig::shared(1 << 20);
        let options = EvalOptions::default();
        let max = u64::MAX;
        // Partition key: fp=9, shared(1MiB), cores=1, batch=1,
        // subgraphs {0,1} {2}; subgraph key: same coords, next_wgt=77,
        // members {2}.
        let text = format!(
            concat!(
                "{{\"version\":1,",
                "\"partition\":[[[9,0,{total},0,1,1,0,1,{max},2,{max}],",
                "{{\"ema_bytes\":21,\"energy_pj\":21.0,\"buffer_bytes\":1,",
                "\"fits\":true,\"error\":false}}]],",
                "\"subgraph\":[[[9,0,{total},0,1,1,77,2],",
                "{{\"ema_bytes\":5,\"energy_pj\":2.5,\"fits\":true}}]]}}"
            ),
            total = 1u64 << 20,
            max = max,
        );
        std::fs::write(&path, text).unwrap();
        let snap = CacheSnapshot::load(&path).unwrap();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.len(), 2);
        let expected_pkey = eval_key(9, &sg(&[&[0, 1], &[2]]), &buffer, options);
        let expected_skey = subgraph_key(9, &[NodeId::from_index(2)], 77, &buffer, options);
        assert_eq!(snap.partition[0].0, expected_pkey);
        assert_eq!(snap.partition[0].1, scored(21));
        assert_eq!(snap.subgraph[0].0, expected_skey);
        // Restoring serves hits under the re-derived keys.
        let cache = EvalCache::new();
        cache.restore(&snap);
        assert_eq!(cache.get(&expected_pkey).unwrap(), scored(21));
        assert_eq!(cache.get_subgraph(&expected_skey).unwrap().ema_bytes, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Builds a two-entry cache and returns it with its snapshot text.
    fn populated_snapshot_text() -> (EvalCache, String) {
        let cache = EvalCache::new();
        let buf = BufferConfig::shared(1 << 20);
        for i in 0..6usize {
            cache.insert(
                eval_key(9, &sg(&[&[i], &[i + 10]]), &buf, EvalOptions::default()),
                scored(i as u64),
            );
            cache.insert_subgraph(
                subgraph_key(9, &[NodeId::from_index(i)], 7, &buf, EvalOptions::default()),
                term(i as u64),
            );
        }
        let text = serde_json::to_string(&cache.snapshot()).unwrap();
        (cache, text)
    }

    fn stale_temps(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count()
    }

    #[test]
    fn injected_write_error_cleans_temp_and_reports() {
        use cocco_faults::{FaultRates, FaultSite};
        let dir = std::env::temp_dir().join(format!("cocco-cache-werr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (cache, _) = populated_snapshot_text();
        let plan =
            cocco_faults::FaultPlan::seeded(1, FaultRates::none().with(FaultSite::SaveWrite, 1.0));
        let path = dir.join("cache.json");
        let err = cache.snapshot().save_with(&path, &plan).unwrap_err();
        assert!(err.to_string().contains("injected write error"));
        assert!(!path.exists());
        assert_eq!(stale_temps(&dir), 0, "satellite: no stale .tmp.* files");
        assert!(plan.log().save_failures() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_save_salvages_on_load() {
        use cocco_faults::{FaultRates, FaultSite};
        let dir = std::env::temp_dir().join(format!("cocco-cache-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (cache, _) = populated_snapshot_text();
        let full = cache.snapshot();
        let path = dir.join("cache.json");
        let plan =
            cocco_faults::FaultPlan::seeded(2, FaultRates::none().with(FaultSite::SaveTorn, 1.0));
        full.save_with(&path, &plan).expect("torn saves still land");
        let load_plan = cocco_faults::FaultPlan::disabled();
        let salvaged = CacheSnapshot::load_with(&path, &load_plan).expect("salvage");
        assert!(!salvaged.is_empty(), "torn snapshot must salvage entries");
        assert!(salvaged.len() < full.len(), "the tail was lost");
        assert_eq!(load_plan.log().salvaged_entries(), salvaged.len() as u64);
        // Every salvaged entry is exact — byte-identical to the original.
        for (key, value) in &salvaged.partition {
            assert_eq!(
                full.partition.iter().find(|(k, _)| k == key).unwrap().1,
                *value
            );
        }
        for (key, value) in &salvaged.subgraph {
            assert_eq!(
                full.subgraph.iter().find(|(k, _)| k == key).unwrap().1,
                *value
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_salvages_or_errors_never_panics() {
        let dir = std::env::temp_dir().join(format!("cocco-cache-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_, text) = populated_snapshot_text();
        let path = dir.join("cache.json");
        let mut salvages = 0usize;
        for cut in (0..text.len()).step_by(17) {
            let mut end = cut;
            while end < text.len() && !text.is_char_boundary(end) {
                end += 1;
            }
            std::fs::write(&path, &text[..end]).unwrap();
            match CacheSnapshot::load(&path) {
                Ok(snap) => {
                    assert_eq!(snap.version, SNAPSHOT_VERSION);
                    salvages += 1;
                }
                Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
            }
        }
        assert!(salvages > 0, "later truncation points must salvage");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_region_salvages_surviving_entries() {
        let dir = std::env::temp_dir().join(format!("cocco-cache-corr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_, text) = populated_snapshot_text();
        let path = dir.join("cache.json");
        // Splice garbage into the middle of the document, as the
        // SaveCorrupt fault does.
        let cut = text.len() / 2;
        std::fs::write(
            &path,
            format!("{}!corrupt!{}", &text[..cut], &text[cut + 20..]),
        )
        .unwrap();
        let plan = cocco_faults::FaultPlan::disabled();
        match CacheSnapshot::load_with(&path, &plan) {
            Ok(snap) => {
                assert!(!snap.is_empty());
                assert!(plan.log().salvaged_entries() > 0);
            }
            Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_v1_documents_salvage_with_upgraded_keys() {
        let dir = std::env::temp_dir().join(format!("cocco-cache-v1t-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.json");
        let max = u64::MAX;
        // Two v1 partition entries; the document is cut inside the second,
        // so only the first survives — under its re-derived v2 key.
        let text = format!(
            concat!(
                "{{\"version\":1,\"partition\":[",
                "[[9,0,{total},0,1,1,0,1,{max},2,{max}],",
                "{{\"ema_bytes\":21,\"energy_pj\":21.0,\"buffer_bytes\":1,",
                "\"fits\":true,\"error\":false}}],",
                "[[9,0,{total},0,1,1,3,{max},4,{max}],",
                "{{\"ema_bytes\":22,\"energy"
            ),
            total = 1u64 << 20,
            max = max,
        );
        std::fs::write(&path, text).unwrap();
        let snap = CacheSnapshot::load(&path).expect("salvage the intact entry");
        assert_eq!(snap.partition.len(), 1);
        let expected = eval_key(
            9,
            &sg(&[&[0, 1], &[2]]),
            &BufferConfig::shared(1 << 20),
            EvalOptions::default(),
        );
        assert_eq!(snap.partition[0].0, expected);
        assert_eq!(snap.partition[0].1, scored(21));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache = std::sync::Arc::new(EvalCache::new());
        let keys: Vec<EvalKey> = (0..64)
            .map(|i| {
                eval_key(
                    7,
                    &sg(&[&[i]]),
                    &BufferConfig::shared(64),
                    EvalOptions::default(),
                )
            })
            .collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = cache.clone();
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                for (i, key) in keys.iter().enumerate() {
                    if let Some(v) = cache.get(key) {
                        assert_eq!(v.ema_bytes, i as u64, "thread {t}");
                    } else {
                        cache.insert(*key, scored(i as u64));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.partition_entries(), 64);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(cache.get(key).unwrap().ema_bytes, i as u64);
        }
    }
}
