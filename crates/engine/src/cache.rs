//! The sharded memoization cache for partition evaluations.

use crate::engine::ScoredEval;
use cocco_graph::NodeId;
use cocco_sim::{BufferConfig, EvalOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Number of independent shards; keys spread by hash, so concurrent
/// workers rarely contend on the same lock.
const SHARDS: usize = 16;

/// A compact, collision-free cache key: the ordered subgraph member sets,
/// the buffer configuration and the evaluation options, flattened into one
/// `u64` sequence.
pub type EvalKey = Box<[u64]>;

/// Encodes `(evaluator fingerprint, subgraphs, buffer, options)` into an
/// [`EvalKey`].
///
/// The fingerprint ([`Evaluator::fingerprint`](cocco_sim::Evaluator)) pins
/// the entry to one `(graph, accelerator config)` pair, so an engine
/// shared across evaluators — two models, two platforms — never returns
/// another evaluator's scores. Subgraph *order* is part of the key:
/// partition evaluation is order-sensitive (the bandwidth model prefetches
/// the *next* subgraph's weights). Member order within a subgraph is
/// canonicalized by the evaluator, not here — searchers produce members in
/// canonical (topological) order already, and a different member order
/// would merely miss the cache, never corrupt it.
pub fn eval_key(
    fingerprint: u64,
    subgraphs: &[Vec<NodeId>],
    buffer: &BufferConfig,
    options: EvalOptions,
) -> EvalKey {
    let members: usize = subgraphs.iter().map(Vec::len).sum();
    let mut key = Vec::with_capacity(6 + members + subgraphs.len());
    key.push(fingerprint);
    match buffer {
        BufferConfig::Shared { total } => {
            key.push(0);
            key.push(*total);
            key.push(0);
        }
        BufferConfig::Separate { glb, wgt } => {
            key.push(1);
            key.push(*glb);
            key.push(*wgt);
        }
    }
    key.push(u64::from(options.cores()));
    key.push(u64::from(options.batch()));
    for subgraph in subgraphs {
        for &m in subgraph {
            key.push(m.index() as u64);
        }
        key.push(u64::MAX); // subgraph separator (never a node index)
    }
    key.into_boxed_slice()
}

/// FNV-1a over the key words — cheap, deterministic shard selection.
fn shard_of(key: &[u64]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in key {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

/// A sharded map from [`EvalKey`] to [`ScoredEval`], with hit/miss
/// counters.
///
/// Lookups take a shard read lock; inserts a shard write lock. Two workers
/// racing on the same missing key may both compute it — the computation is
/// deterministic, so the duplicate insert is idempotent and results never
/// depend on the race.
#[derive(Debug, Default)]
pub struct EvalCache {
    shards: [RwLock<HashMap<EvalKey, ScoredEval>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks `key` up, counting a hit or miss.
    pub fn get(&self, key: &[u64]) -> Option<ScoredEval> {
        let found = self.shards[shard_of(key)].read().unwrap().get(key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a computed evaluation.
    pub fn insert(&self, key: EvalKey, value: ScoredEval) {
        self.shards[shard_of(&key)]
            .write()
            .unwrap()
            .insert(key, value);
    }

    /// Distinct cached evaluations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// `true` when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh evaluation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(groups: &[&[usize]]) -> Vec<Vec<NodeId>> {
        groups
            .iter()
            .map(|g| g.iter().map(|&i| NodeId::from_index(i)).collect())
            .collect()
    }

    fn scored(ema: u64) -> ScoredEval {
        ScoredEval {
            ema_bytes: ema,
            energy_pj: ema as f64,
            buffer_bytes: 1,
            fits: true,
            error: false,
        }
    }

    #[test]
    fn keys_distinguish_subgraph_boundaries_and_order() {
        let buf = BufferConfig::shared(1 << 20);
        let opt = EvalOptions::default();
        let a = eval_key(7, &sg(&[&[0, 1], &[2]]), &buf, opt);
        let b = eval_key(7, &sg(&[&[0], &[1, 2]]), &buf, opt);
        let c = eval_key(7, &sg(&[&[2], &[0, 1]]), &buf, opt);
        assert_ne!(a, b, "boundary placement must matter");
        assert_ne!(a, c, "subgraph order must matter");
    }

    #[test]
    fn keys_distinguish_evaluators() {
        // Same subgraphs, buffer and options under two evaluator
        // fingerprints (two models/platforms) must never collide.
        let buf = BufferConfig::shared(1 << 20);
        let opt = EvalOptions::default();
        let a = eval_key(1, &sg(&[&[0, 1]]), &buf, opt);
        let b = eval_key(2, &sg(&[&[0, 1]]), &buf, opt);
        assert_ne!(a, b, "evaluator identity must be part of the key");
    }

    #[test]
    fn keys_distinguish_buffer_and_options() {
        let parts = sg(&[&[0, 1]]);
        let base = eval_key(
            7,
            &parts,
            &BufferConfig::shared(1 << 20),
            EvalOptions::default(),
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(2 << 20),
                EvalOptions::default()
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::separate(1 << 19, 1 << 19),
                EvalOptions::default()
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(1 << 20),
                EvalOptions::with_cores(2)
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(1 << 20),
                EvalOptions::with_batch(4)
            )
        );
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = EvalCache::new();
        let key = eval_key(
            7,
            &sg(&[&[0]]),
            &BufferConfig::shared(64),
            EvalOptions::default(),
        );
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), scored(7));
        assert_eq!(cache.get(&key).unwrap().ema_bytes, 7);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache = std::sync::Arc::new(EvalCache::new());
        let keys: Vec<EvalKey> = (0..64)
            .map(|i| {
                eval_key(
                    7,
                    &sg(&[&[i]]),
                    &BufferConfig::shared(64),
                    EvalOptions::default(),
                )
            })
            .collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = cache.clone();
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                for (i, key) in keys.iter().enumerate() {
                    if let Some(v) = cache.get(key) {
                        assert_eq!(v.ema_bytes, i as u64, "thread {t}");
                    } else {
                        cache.insert(key.clone(), scored(i as u64));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 64);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(cache.get(key).unwrap().ema_bytes, i as u64);
        }
    }
}
