//! The sharded, two-level memoization cache for evaluations.
//!
//! Level 1 (**subgraph terms**) memoizes the pure per-subgraph scores
//! produced by `Evaluator::eval_subgraph` under the key
//! `(evaluator fingerprint, members, next_wgt, buffer, options)` — the
//! exact inputs of that function, so one entry serves every partition that
//! places the same subgraph before the same successor. Level 2
//! (**partition roll-up**) memoizes whole-partition [`ScoredEval`]s under
//! the ordered-subgraphs key, short-circuiting exact duplicates without
//! touching level 1. Both levels keep their own hit/miss counters.
//!
//! The cache also persists: [`EvalCache::snapshot`]/[`EvalCache::restore`]
//! move both levels through a serde-serializable [`CacheSnapshot`], and
//! [`EvalCache::save`]/[`CacheSnapshot::load`] write/read it as JSON so
//! repeated explorations of the same model warm-start. Keys embed the
//! evaluator fingerprint, so entries recorded under a different
//! accelerator configuration (or model) can never produce a false hit;
//! [`CacheSnapshot::split_fingerprint`] additionally lets callers restore
//! only the entries of the evaluator at hand.

use crate::engine::{ScoredEval, SubgraphScore};
use cocco_graph::NodeId;
use cocco_sim::{BufferConfig, EvalOptions};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Number of independent shards; keys spread by hash, so concurrent
/// workers rarely contend on the same lock.
const SHARDS: usize = 16;

/// A compact, collision-free cache key: the ordered subgraph member sets,
/// the buffer configuration and the evaluation options, flattened into one
/// `u64` sequence.
pub type EvalKey = Box<[u64]>;

/// Pushes the `(buffer, options)` coordinates shared by both key kinds.
fn push_coords(key: &mut Vec<u64>, buffer: &BufferConfig, options: EvalOptions) {
    match buffer {
        BufferConfig::Shared { total } => {
            key.push(0);
            key.push(*total);
            key.push(0);
        }
        BufferConfig::Separate { glb, wgt } => {
            key.push(1);
            key.push(*glb);
            key.push(*wgt);
        }
    }
    key.push(u64::from(options.cores()));
    key.push(u64::from(options.batch()));
}

/// Encodes `(evaluator fingerprint, subgraphs, buffer, options)` into a
/// partition-level [`EvalKey`].
///
/// The fingerprint ([`Evaluator::fingerprint`](cocco_sim::Evaluator)) pins
/// the entry to one `(graph, accelerator config)` pair, so an engine
/// shared across evaluators — two models, two platforms — never returns
/// another evaluator's scores. Subgraph *order* is part of the key:
/// partition evaluation is order-sensitive (the bandwidth model prefetches
/// the *next* subgraph's weights). Member order within a subgraph is
/// canonicalized by the evaluator, not here — searchers produce members in
/// canonical (topological) order already, and a different member order
/// would merely miss the cache, never corrupt it.
pub fn eval_key(
    fingerprint: u64,
    subgraphs: &[Vec<NodeId>],
    buffer: &BufferConfig,
    options: EvalOptions,
) -> EvalKey {
    let members: usize = subgraphs.iter().map(Vec::len).sum();
    let mut key = Vec::with_capacity(6 + members + subgraphs.len());
    key.push(fingerprint);
    push_coords(&mut key, buffer, options);
    for subgraph in subgraphs {
        for &m in subgraph {
            key.push(m.index() as u64);
        }
        key.push(u64::MAX); // subgraph separator (never a node index)
    }
    key.into_boxed_slice()
}

/// Encodes `(evaluator fingerprint, members, next_wgt, buffer, options)`
/// into a subgraph-level key — the exact input coordinates of
/// `Evaluator::eval_subgraph`, with the successor's weight prefetch
/// (`next_wgt`) made explicit so each term is individually cacheable.
///
/// Returned as a plain `Vec` so lookups can borrow it as a slice and only
/// the insert path pays for boxing.
pub fn subgraph_key(
    fingerprint: u64,
    members: &[NodeId],
    next_wgt: u64,
    buffer: &BufferConfig,
    options: EvalOptions,
) -> Vec<u64> {
    let mut key = Vec::with_capacity(7 + members.len());
    subgraph_key_into(&mut key, fingerprint, members, next_wgt, buffer, options);
    key
}

/// [`subgraph_key`] into a caller-provided buffer (cleared first), so hot
/// loops build one key per term without allocating per call.
pub fn subgraph_key_into(
    key: &mut Vec<u64>,
    fingerprint: u64,
    members: &[NodeId],
    next_wgt: u64,
    buffer: &BufferConfig,
    options: EvalOptions,
) {
    key.clear();
    key.reserve(7 + members.len());
    key.push(fingerprint);
    push_coords(key, buffer, options);
    key.push(next_wgt);
    for &m in members {
        key.push(m.index() as u64);
    }
}

/// FNV-1a over the key words — cheap, deterministic shard selection.
fn shard_of(key: &[u64]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in key {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

/// One level of the cache: sharded map plus hit/miss counters.
#[derive(Debug)]
struct Level<V> {
    shards: [RwLock<HashMap<EvalKey, V>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for Level<V> {
    fn default() -> Self {
        Self {
            shards: Default::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<V: Copy> Level<V> {
    fn get(&self, key: &[u64]) -> Option<V> {
        let found = self.shards[shard_of(key)].read().unwrap().get(key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: EvalKey, value: V) {
        self.shards[shard_of(&key)]
            .write()
            .unwrap()
            .insert(key, value);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// All entries, sorted by key so snapshots are stable and diffable.
    fn entries(&self) -> Vec<(Vec<u64>, V)> {
        let mut out: Vec<(Vec<u64>, V)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (k, v) in shard.read().unwrap().iter() {
                out.push((k.to_vec(), *v));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// A serializable image of both cache levels, for cross-run persistence.
///
/// Entries are plain `(key words, value)` pairs sorted by key; the `f64`
/// fields inside the values survive the JSON round-trip exactly, so a
/// warm-started exploration is bit-identical to a cold one — the snapshot
/// only changes which lookups hit.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Snapshot format version (bumped on incompatible key changes).
    pub version: u32,
    /// Partition roll-up entries.
    pub partition: Vec<(Vec<u64>, ScoredEval)>,
    /// Per-subgraph term entries.
    pub subgraph: Vec<(Vec<u64>, SubgraphScore)>,
}

/// Current [`CacheSnapshot::version`]; snapshots from other versions are
/// discarded on restore (their keys would be meaningless).
pub const SNAPSHOT_VERSION: u32 = 1;

impl CacheSnapshot {
    /// Total entries across both levels.
    pub fn len(&self) -> usize {
        self.partition.len() + self.subgraph.len()
    }

    /// `true` when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the entries recorded under `fingerprint` (first) and
    /// everything else (second). Every key leads with the evaluator
    /// fingerprint, so this cleanly separates one `(model, accelerator)`
    /// pair's entries from a multi-model cache file — changing the
    /// accelerator configuration changes the fingerprint and thereby
    /// invalidates (filters out) all previous entries.
    pub fn split_fingerprint(self, fingerprint: u64) -> (CacheSnapshot, CacheSnapshot) {
        let mut mine = CacheSnapshot {
            version: self.version,
            ..Default::default()
        };
        let mut rest = mine.clone();
        for entry in self.partition {
            let target = if entry.0.first() == Some(&fingerprint) {
                &mut mine.partition
            } else {
                &mut rest.partition
            };
            target.push(entry);
        }
        for entry in self.subgraph {
            let target = if entry.0.first() == Some(&fingerprint) {
                &mut mine.subgraph
            } else {
                &mut rest.subgraph
            };
            target.push(entry);
        }
        (mine, rest)
    }

    /// Appends another snapshot's entries (deduplication happens on
    /// restore — later inserts of an identical key overwrite with an
    /// identical, deterministically computed value).
    pub fn merge(&mut self, other: CacheSnapshot) {
        self.partition.extend(other.partition);
        self.subgraph.extend(other.subgraph);
        self.partition.sort_by(|a, b| a.0.cmp(&b.0));
        self.subgraph.sort_by(|a, b| a.0.cmp(&b.0));
        self.partition.dedup_by(|a, b| a.0 == b.0);
        self.subgraph.dedup_by(|a, b| a.0 == b.0);
    }

    /// Writes the snapshot to `path` as JSON, atomically: the document is
    /// written to a sibling temp file and renamed into place, so a reader
    /// (or a concurrent saver sharing one sweep-wide cache file) never
    /// observes a half-written snapshot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        // Unique per save, not just per process: concurrent saves from one
        // process (a sweep harness exploring on several threads) must not
        // share a temp file, or interleaved writes could publish a torn
        // snapshot.
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let text = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".tmp.{}.{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            std::fs::remove_file(&tmp).ok();
        })
    }

    /// Reads a snapshot from `path`. A snapshot of a different
    /// [`SNAPSHOT_VERSION`] loads as empty (stale keys must not be
    /// trusted).
    ///
    /// # Errors
    ///
    /// Returns filesystem errors as-is and malformed JSON as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<CacheSnapshot> {
        let text = std::fs::read_to_string(path)?;
        let snap: CacheSnapshot = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if snap.version != SNAPSHOT_VERSION {
            return Ok(CacheSnapshot {
                version: SNAPSHOT_VERSION,
                ..Default::default()
            });
        }
        Ok(snap)
    }
}

/// The two-level sharded evaluation cache.
///
/// Lookups take a shard read lock; inserts a shard write lock. Two workers
/// racing on the same missing key may both compute it — the computation is
/// deterministic, so the duplicate insert is idempotent and results never
/// depend on the race.
#[derive(Debug, Default)]
pub struct EvalCache {
    partition: Level<ScoredEval>,
    subgraph: Level<SubgraphScore>,
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks a partition roll-up key up, counting a hit or miss.
    pub fn get(&self, key: &[u64]) -> Option<ScoredEval> {
        self.partition.get(key)
    }

    /// Inserts a computed partition evaluation.
    pub fn insert(&self, key: EvalKey, value: ScoredEval) {
        self.partition.insert(key, value);
    }

    /// Looks a per-subgraph term up, counting a subgraph-level hit or miss.
    pub fn get_subgraph(&self, key: &[u64]) -> Option<SubgraphScore> {
        self.subgraph.get(key)
    }

    /// Inserts a computed per-subgraph term.
    pub fn insert_subgraph(&self, key: Vec<u64>, value: SubgraphScore) {
        self.subgraph.insert(key.into_boxed_slice(), value);
    }

    /// Distinct cached evaluations across both levels.
    pub fn len(&self) -> usize {
        self.partition.len() + self.subgraph.len()
    }

    /// `true` when nothing has been cached at either level.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct partition roll-up entries.
    pub fn partition_entries(&self) -> usize {
        self.partition.len()
    }

    /// Distinct per-subgraph term entries.
    pub fn subgraph_entries(&self) -> usize {
        self.subgraph.len()
    }

    /// Partition-level lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.partition.hits.load(Ordering::Relaxed)
    }

    /// Partition-level lookups that required composing or evaluating.
    pub fn misses(&self) -> u64 {
        self.partition.misses.load(Ordering::Relaxed)
    }

    /// Subgraph-level lookups answered from the cache.
    pub fn subgraph_hits(&self) -> u64 {
        self.subgraph.hits.load(Ordering::Relaxed)
    }

    /// Subgraph-level lookups that required a fresh `eval_subgraph` term.
    pub fn subgraph_misses(&self) -> u64 {
        self.subgraph.misses.load(Ordering::Relaxed)
    }

    /// A serializable image of both levels (entries sorted by key).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            version: SNAPSHOT_VERSION,
            partition: self.partition.entries(),
            subgraph: self.subgraph.entries(),
        }
    }

    /// Inserts every entry of `snapshot` (counters are unaffected —
    /// restored entries only show up as later hits).
    pub fn restore(&self, snapshot: &CacheSnapshot) {
        if snapshot.version != SNAPSHOT_VERSION {
            return;
        }
        for (key, value) in &snapshot.partition {
            self.partition
                .insert(key.clone().into_boxed_slice(), *value);
        }
        for (key, value) in &snapshot.subgraph {
            self.subgraph.insert(key.clone().into_boxed_slice(), *value);
        }
    }

    /// Saves a snapshot of both levels to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; see [`CacheSnapshot::save`].
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.snapshot().save(path)
    }

    /// Loads a snapshot from `path` and restores every entry.
    ///
    /// # Errors
    ///
    /// See [`CacheSnapshot::load`].
    pub fn load(&self, path: &Path) -> std::io::Result<usize> {
        let snap = CacheSnapshot::load(path)?;
        self.restore(&snap);
        Ok(snap.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(groups: &[&[usize]]) -> Vec<Vec<NodeId>> {
        groups
            .iter()
            .map(|g| g.iter().map(|&i| NodeId::from_index(i)).collect())
            .collect()
    }

    fn scored(ema: u64) -> ScoredEval {
        ScoredEval {
            ema_bytes: ema,
            energy_pj: ema as f64,
            buffer_bytes: 1,
            fits: true,
            error: false,
        }
    }

    fn term(ema: u64) -> SubgraphScore {
        SubgraphScore {
            ema_bytes: ema,
            energy_pj: ema as f64 * 0.5,
            fits: true,
        }
    }

    #[test]
    fn keys_distinguish_subgraph_boundaries_and_order() {
        let buf = BufferConfig::shared(1 << 20);
        let opt = EvalOptions::default();
        let a = eval_key(7, &sg(&[&[0, 1], &[2]]), &buf, opt);
        let b = eval_key(7, &sg(&[&[0], &[1, 2]]), &buf, opt);
        let c = eval_key(7, &sg(&[&[2], &[0, 1]]), &buf, opt);
        assert_ne!(a, b, "boundary placement must matter");
        assert_ne!(a, c, "subgraph order must matter");
    }

    #[test]
    fn keys_distinguish_evaluators() {
        // Same subgraphs, buffer and options under two evaluator
        // fingerprints (two models/platforms) must never collide.
        let buf = BufferConfig::shared(1 << 20);
        let opt = EvalOptions::default();
        let a = eval_key(1, &sg(&[&[0, 1]]), &buf, opt);
        let b = eval_key(2, &sg(&[&[0, 1]]), &buf, opt);
        assert_ne!(a, b, "evaluator identity must be part of the key");
    }

    #[test]
    fn keys_distinguish_buffer_and_options() {
        let parts = sg(&[&[0, 1]]);
        let base = eval_key(
            7,
            &parts,
            &BufferConfig::shared(1 << 20),
            EvalOptions::default(),
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(2 << 20),
                EvalOptions::default()
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::separate(1 << 19, 1 << 19),
                EvalOptions::default()
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(1 << 20),
                EvalOptions::with_cores(2)
            )
        );
        assert_ne!(
            base,
            eval_key(
                7,
                &parts,
                &BufferConfig::shared(1 << 20),
                EvalOptions::with_batch(4)
            )
        );
    }

    #[test]
    fn subgraph_keys_distinguish_next_wgt_and_members() {
        let members: Vec<NodeId> = [0usize, 1].iter().map(|&i| NodeId::from_index(i)).collect();
        let buf = BufferConfig::shared(1 << 20);
        let opt = EvalOptions::default();
        let base = subgraph_key(7, &members, 0, &buf, opt);
        assert_ne!(
            base,
            subgraph_key(7, &members, 4096, &buf, opt),
            "the successor's weight prefetch is a term input"
        );
        assert_ne!(base, subgraph_key(7, &members[..1], 0, &buf, opt));
        assert_ne!(base, subgraph_key(8, &members, 0, &buf, opt));
    }

    #[test]
    fn hit_and_miss_counters_per_level() {
        let cache = EvalCache::new();
        let key = eval_key(
            7,
            &sg(&[&[0]]),
            &BufferConfig::shared(64),
            EvalOptions::default(),
        );
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), scored(7));
        assert_eq!(cache.get(&key).unwrap().ema_bytes, 7);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.partition_entries(), 1);

        let members = [NodeId::from_index(0)];
        let skey = subgraph_key(
            7,
            &members,
            0,
            &BufferConfig::shared(64),
            Default::default(),
        );
        assert!(cache.get_subgraph(&skey).is_none());
        cache.insert_subgraph(skey.clone(), term(3));
        assert_eq!(cache.get_subgraph(&skey).unwrap().ema_bytes, 3);
        assert_eq!(cache.subgraph_hits(), 1);
        assert_eq!(cache.subgraph_misses(), 1);
        assert_eq!(cache.subgraph_entries(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn snapshot_round_trips_both_levels() {
        let cache = EvalCache::new();
        let pkey = eval_key(
            7,
            &sg(&[&[0, 1]]),
            &BufferConfig::shared(64),
            EvalOptions::default(),
        );
        cache.insert(pkey.clone(), scored(11));
        let members = [NodeId::from_index(0)];
        let skey = subgraph_key(
            7,
            &members,
            5,
            &BufferConfig::shared(64),
            Default::default(),
        );
        cache.insert_subgraph(skey.clone(), term(13));

        let snap = cache.snapshot();
        assert_eq!(snap.len(), 2);
        let other = EvalCache::new();
        other.restore(&snap);
        assert_eq!(other.get(&pkey).unwrap(), scored(11));
        assert_eq!(other.get_subgraph(&skey).unwrap(), term(13));
        assert_eq!(other.snapshot(), snap, "snapshot ordering is stable");
    }

    #[test]
    fn snapshot_split_by_fingerprint() {
        let cache = EvalCache::new();
        for fp in [1u64, 2] {
            cache.insert(
                eval_key(
                    fp,
                    &sg(&[&[0]]),
                    &BufferConfig::shared(64),
                    EvalOptions::default(),
                ),
                scored(fp),
            );
            cache.insert_subgraph(
                subgraph_key(
                    fp,
                    &[NodeId::from_index(0)],
                    0,
                    &BufferConfig::shared(64),
                    Default::default(),
                ),
                term(fp),
            );
        }
        let (mine, rest) = cache.snapshot().split_fingerprint(1);
        assert_eq!(mine.len(), 2);
        assert_eq!(rest.len(), 2);
        assert!(mine.partition.iter().all(|(k, _)| k[0] == 1));
        assert!(rest.partition.iter().all(|(k, _)| k[0] == 2));
        let mut merged = mine.clone();
        merged.merge(rest);
        assert_eq!(merged.len(), 4);
        // Merging a duplicate is idempotent.
        merged.merge(mine);
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join(format!("cocco-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let cache = EvalCache::new();
        cache.insert(
            eval_key(
                9,
                &sg(&[&[0, 1], &[2]]),
                &BufferConfig::separate(1 << 19, 1 << 19),
                EvalOptions::default(),
            ),
            scored(21),
        );
        cache.insert_subgraph(
            subgraph_key(
                9,
                &[NodeId::from_index(2)],
                77,
                &BufferConfig::separate(1 << 19, 1 << 19),
                Default::default(),
            ),
            SubgraphScore {
                ema_bytes: 5,
                energy_pj: 1.0 / 3.0, // exercises exact f64 round-trip
                fits: false,
            },
        );
        cache.save(&path).unwrap();
        let restored = EvalCache::new();
        assert_eq!(restored.load(&path).unwrap(), 2);
        assert_eq!(restored.snapshot(), cache.snapshot());

        // Malformed files surface as InvalidData, not a panic.
        std::fs::write(&path, "{not json").unwrap();
        let err = CacheSnapshot::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Unknown versions load as empty.
        let stale = CacheSnapshot {
            version: SNAPSHOT_VERSION + 1,
            partition: vec![(vec![1, 2], scored(1))],
            subgraph: Vec::new(),
        };
        stale.save(&path).unwrap();
        assert!(CacheSnapshot::load(&path).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache = std::sync::Arc::new(EvalCache::new());
        let keys: Vec<EvalKey> = (0..64)
            .map(|i| {
                eval_key(
                    7,
                    &sg(&[&[i]]),
                    &BufferConfig::shared(64),
                    EvalOptions::default(),
                )
            })
            .collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = cache.clone();
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                for (i, key) in keys.iter().enumerate() {
                    if let Some(v) = cache.get(key) {
                        assert_eq!(v.ema_bytes, i as u64, "thread {t}");
                    } else {
                        cache.insert(key.clone(), scored(i as u64));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.partition_entries(), 64);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(cache.get(key).unwrap().ema_bytes, i as u64);
        }
    }
}
