//! The parallel, memoized evaluation engine shared by every searcher.
//!
//! Genome evaluation — repair, partition scoring, budget accounting, trace
//! recording — dominates the wall-clock of every search method in this
//! reproduction, and population-based co-exploration is embarrassingly
//! parallel at the batch level. This crate factors that hot path out of the
//! individual searchers into one engine:
//!
//! * [`EnginePool`] — a worker pool with a **persistent** thread set (the
//!   default: spawned lazily, channel-fed, joined on drop) or per-batch
//!   scoped spawns ([`EngineConfig`]: `auto` or a fixed count; `1` ⇒ fully
//!   serial; [`PoolMode`] selects the lifecycle);
//! * [`EvalCache`] — a sharded, **bounded** two-level memoization cache:
//!   per-subgraph terms ([`SubgraphScore`], keyed by
//!   `(evaluator fingerprint, members, next_wgt, buffer, options)`) below
//!   whole-partition roll-ups ([`ScoredEval`] plus the entry's
//!   [`EvalMemo`], so even cache *hits* hand a breakdown to offspring).
//!   Keys are fixed-size [`EvalKey`] fingerprints folded from precomputed
//!   128-bit subgraph content hashes — no per-probe allocation or member
//!   re-hashing — the cache is objective-agnostic so one entry serves
//!   Formula 1 and Formula 2 searches alike, growth is bounded by a
//!   generation-sweep eviction policy (`EngineConfig::cache_capacity`),
//!   and both levels persist across runs via [`CacheSnapshot`];
//! * [`Engine`] — pool + cache + [`EngineStats`], the object a search
//!   context shares across threads, with a subgraph-granular delta path
//!   ([`Engine::score_delta`] + [`EvalMemo`]) that re-scores only the
//!   subgraphs a mutation touched;
//! * [`SampleBudget`] — the thread-safe evaluation budget drawn on by every
//!   searcher: sliceable for two-step inner runs, and reservable
//!   ([`SampleBudget::reserve`] → [`SampleReservation`]) for interleaved
//!   drivers that pre-fund a dispatch — abandoned reservations refund to
//!   the slice and the shared pool on drop, so no samples are stranded;
//! * [`Trace`]/[`TracePoint`] — thread-safe evaluation recording, plus the
//!   `infeasible_errors` counter that keeps silent evaluator failures
//!   visible.
//!
//! # Determinism
//!
//! Parallelism never changes results. Batch evaluation (exposed as
//! `SearchContext::evaluate_batch` in `cocco-search`) pins the
//! budget-sample indices and the trace-recording order to the *input*
//! order of the batch before any worker runs, and each genome's evaluation
//! is a pure function of the genome itself — so a seeded search is
//! bit-identical at any thread count, and `threads` is purely a wall-clock
//! knob.
//!
//! # Examples
//!
//! ```
//! use cocco_engine::{Engine, EngineConfig};
//! use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, EvalOptions, Evaluator};
//!
//! let g = cocco_graph::models::chain(4);
//! let eval = Evaluator::new(&g, AcceleratorConfig::default());
//! let engine = Engine::new(EngineConfig::auto());
//! let subgraphs = vec![g.node_ids().collect::<Vec<_>>()];
//! let buffer = BufferConfig::shared(1 << 20);
//! let first = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
//! let second = engine.score(&eval, &subgraphs, &buffer, EvalOptions::default());
//! assert_eq!(first.cost(CostMetric::Ema, None), second.cost(CostMetric::Ema, None));
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```

mod arena;
mod budget;
mod cache;
mod config;
mod engine;
mod pool;
mod trace;

pub use budget::{SampleBudget, SampleReservation};
pub use cache::{eval_key, subgraph_key, CacheSnapshot, EvalCache, EvalKey, SNAPSHOT_VERSION};
pub use config::{ChunkSize, EngineConfig, PoolMode, ThreadCount};
pub use engine::{
    DispatchPanic, Engine, EngineStats, EvalMemo, PartitionProbe, PreparedEval, ScoredEval,
    SubgraphScore,
};
pub use pool::EnginePool;
pub use trace::{Trace, TracePoint};
