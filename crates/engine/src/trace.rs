//! Search traces for the convergence and distribution studies.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// 0-based global sample index at which the point was evaluated.
    pub sample: u64,
    /// Objective cost of the evaluated genome (may be infinite).
    pub cost: f64,
    /// The genome's total buffer bytes (Figure 13's x-axis).
    pub buffer_bytes: u64,
    /// The raw metric value (EMA bytes or energy pJ; Figure 13's y-axis).
    pub metric_value: f64,
}

/// Thread-safe recording of every evaluation during a search.
///
/// [`best_curve`](Trace::best_curve) yields the monotone best-so-far cost
/// over samples (paper Figure 12); [`points`](Trace::points) yields the raw
/// scatter (paper Figure 13).
///
/// Besides the evaluation points, the trace counts *infeasible errors*
/// ([`infeasible_errors`](Trace::infeasible_errors)): evaluator failures the
/// search pipeline folds into "does not fit"/"infinite cost". A non-zero
/// count on a well-formed run points at a configuration bug rather than a
/// genuinely infeasible design point.
///
/// Cloning snapshots the recorded points (sorted by sample index) and the
/// error counter; the clone records independently from the original.
/// Equality, cloning and serialization all agree on what a trace *is*:
/// the point snapshot **plus** the error counter. (Equality used to
/// ignore the counter while `clone` copied it, so `a == a.clone()` held
/// but two traces could compare equal yet disagree on their error
/// count — a silent way to lose the "configuration bug" signal across a
/// checkpoint round-trip.) Serialization renders an object with `points`
/// and `infeasible_errors` fields; deserialization also accepts the
/// legacy bare point array (counter zero) so pre-existing files load.
#[derive(Debug, Default)]
pub struct Trace {
    points: Mutex<Vec<TracePoint>>,
    infeasible_errors: AtomicU64,
}

impl Clone for Trace {
    fn clone(&self) -> Self {
        Self {
            points: Mutex::new(self.points()),
            infeasible_errors: AtomicU64::new(self.infeasible_errors()),
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.points() == other.points() && self.infeasible_errors() == other.infeasible_errors()
    }
}

impl serde::Serialize for Trace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("points".to_string(), self.points().to_value()),
            (
                "infeasible_errors".to_string(),
                serde::Value::U64(self.infeasible_errors()),
            ),
        ])
    }
}

impl serde::Deserialize for Trace {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        // Legacy form: a bare point array with no counter.
        if let serde::Value::Array(_) = value {
            return Ok(Self {
                points: Mutex::new(Vec::<TracePoint>::from_value(value)?),
                infeasible_errors: AtomicU64::new(0),
            });
        }
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::mismatch("object or array", "Trace", value))?;
        let points = Vec::<TracePoint>::from_value(serde::field(fields, "points", "Trace")?)?;
        let infeasible_errors =
            u64::from_value(serde::field(fields, "infeasible_errors", "Trace")?)?;
        Ok(Self {
            points: Mutex::new(points),
            infeasible_errors: AtomicU64::new(infeasible_errors),
        })
    }
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one evaluation.
    pub fn record(&self, point: TracePoint) {
        self.points.lock().unwrap().push(point);
    }

    /// Counts one evaluator error that the search pipeline silently mapped
    /// to "does not fit" or an infinite cost.
    pub fn record_infeasible_error(&self) {
        self.infeasible_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` evaluator errors at once — checkpoint replay restoring
    /// a snapshot's accumulated count.
    pub fn add_infeasible_errors(&self, n: u64) {
        self.infeasible_errors.fetch_add(n, Ordering::Relaxed);
    }

    /// Evaluator errors folded into infeasibility so far.
    pub fn infeasible_errors(&self) -> u64 {
        self.infeasible_errors.load(Ordering::Relaxed)
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.lock().unwrap().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.lock().unwrap().is_empty()
    }

    /// A snapshot of all recorded points, sorted by sample index.
    pub fn points(&self) -> Vec<TracePoint> {
        let mut pts = self.points.lock().unwrap().clone();
        pts.sort_by_key(|p| p.sample);
        pts
    }

    /// The monotone best-so-far cost curve: `(sample, best_cost)` at every
    /// improvement.
    pub fn best_curve(&self) -> Vec<(u64, f64)> {
        let mut curve = Vec::new();
        let mut best = f64::INFINITY;
        for p in self.points() {
            if p.cost < best {
                best = p.cost;
                curve.push((p.sample, best));
            }
        }
        curve
    }

    /// The first sample index at which cost dropped to or below
    /// `threshold`, if it ever did (paper Figure 12(d)).
    pub fn samples_to_reach(&self, threshold: f64) -> Option<u64> {
        self.best_curve()
            .into_iter()
            .find(|(_, c)| *c <= threshold)
            .map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(sample: u64, cost: f64) -> TracePoint {
        TracePoint {
            sample,
            cost,
            buffer_bytes: 0,
            metric_value: cost,
        }
    }

    #[test]
    fn best_curve_is_monotone() {
        let t = Trace::new();
        for (s, c) in [(0, 5.0), (1, 7.0), (2, 3.0), (3, 4.0), (4, 1.0)] {
            t.record(pt(s, c));
        }
        assert_eq!(t.best_curve(), vec![(0, 5.0), (2, 3.0), (4, 1.0)]);
    }

    #[test]
    fn samples_to_reach_threshold() {
        let t = Trace::new();
        for (s, c) in [(0, 5.0), (10, 2.0), (20, 1.0)] {
            t.record(pt(s, c));
        }
        assert_eq!(t.samples_to_reach(2.5), Some(10));
        assert_eq!(t.samples_to_reach(0.5), None);
    }

    #[test]
    fn points_sorted_by_sample() {
        let t = Trace::new();
        t.record(pt(5, 1.0));
        t.record(pt(1, 2.0));
        let pts = t.points();
        assert_eq!(pts[0].sample, 1);
        assert_eq!(pts[1].sample, 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn equality_clone_and_serde_agree_on_the_error_counter() {
        // Pinned semantics: the infeasible-error counter is part of a
        // trace's identity. Two traces with identical points but
        // different counters are NOT equal, and both clone and serde
        // round-trips preserve the counter.
        let a = Trace::new();
        let b = Trace::new();
        a.record(pt(0, 1.0));
        b.record(pt(0, 1.0));
        assert_eq!(a, b);
        a.record_infeasible_error();
        assert_ne!(a, b, "counter mismatch must break equality");
        assert_eq!(a, a.clone(), "clone preserves points and counter");
        let json = serde_json::to_string(&a).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back, "serde round-trip preserves the counter");
        assert_eq!(back.infeasible_errors(), 1);
        // Legacy bare-array form still loads, with a zero counter.
        let legacy: Trace = serde_json::from_str("[]").unwrap();
        assert_eq!(legacy.infeasible_errors(), 0);
        assert!(legacy.is_empty());
        let replayed = Trace::new();
        replayed.add_infeasible_errors(3);
        assert_eq!(replayed.infeasible_errors(), 3);
    }

    #[test]
    fn infeasible_errors_are_counted_and_cloned() {
        let t = Trace::new();
        assert_eq!(t.infeasible_errors(), 0);
        t.record_infeasible_error();
        t.record_infeasible_error();
        assert_eq!(t.infeasible_errors(), 2);
        let clone = t.clone();
        assert_eq!(clone.infeasible_errors(), 2);
        clone.record_infeasible_error();
        assert_eq!(t.infeasible_errors(), 2, "clones record independently");
    }
}
