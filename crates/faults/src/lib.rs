//! # cocco-faults — seeded fault injection + recovery bookkeeping
//!
//! Long co-exploration runs meet real faults: flaky evaluators, panicking
//! workers, full disks, torn snapshot writes, budgets yanked mid-step. This
//! crate provides the two halves of surviving them reproducibly:
//!
//! 1. **A seeded injector.** A [`FaultPlan`] is a cheap cloneable handle
//!    (the same shape as `cocco_telemetry::Telemetry`: `Option<Arc<…>>`,
//!    disabled by default, one branch when off) wrapping a seeded `StdRng`
//!    and per-site probabilities ([`FaultRates`]). Instrumented seams ask
//!    [`FaultPlan::should_inject`] whether to fail *this* time; because the
//!    generator is seeded and every draw happens in serial code, a
//!    [`FaultSchedule`] replays the exact same fault sequence at any thread
//!    count or pool mode — faults are part of the experiment, not noise.
//! 2. **A recovery log.** Every graceful-degradation path (batch
//!    quarantine, sample refund, bounded save retry, snapshot salvage,
//!    budget revocation) notes what it did on the [`FaultLog`], whether or
//!    not the fault was injected — real faults count too. [`HealthReport`]
//!    snapshots both halves for the `Exploration` result and the
//!    `engine.faults.*` telemetry counters.
//!
//! Determinism rules, both load-bearing:
//!
//! * **Draws are serial.** `should_inject` is only called from serial
//!   sections (funding loops, save paths) — never from pool workers — so
//!   the injection sequence is independent of thread interleaving.
//! * **Zero-rate sites don't draw.** A site with rate `0.0` returns
//!   `false` without touching the generator, so disabled sites cost one
//!   branch and consume nothing from the stream.
//!
//! No wall clocks anywhere: retry loops are attempt-count bounded
//! ([`MAX_SAVE_ATTEMPTS`]), keeping the `cocco-audit` D3 rule green.
//!
//! # Example
//!
//! ```
//! use cocco_faults::{FaultPlan, FaultRates, FaultSite};
//!
//! // One in five saves fails transiently; nothing else is injected.
//! let rates = FaultRates::none().with(FaultSite::SaveWrite, 0.2);
//! let plan = FaultPlan::seeded(7, rates);
//! let schedule = plan.schedule().expect("seeded plans serialize");
//!
//! // A replica built from the schedule injects the identical sequence.
//! let replica = FaultPlan::from_schedule(&schedule);
//! for _ in 0..100 {
//!     assert_eq!(
//!         plan.should_inject(FaultSite::SaveWrite),
//!         replica.should_inject(FaultSite::SaveWrite),
//!     );
//! }
//! assert_eq!(plan.health(), replica.health());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

mod save;

pub use save::{atomic_save, MAX_SAVE_ATTEMPTS};

/// The instrumented seams where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSite {
    /// A transient evaluator error on one funded candidate (recovered by
    /// re-scoring — evaluation is pure, so the retry is bit-identical).
    EvalError,
    /// A panic inside one pool worker job (recovered by quarantining the
    /// whole batch and refunding its samples).
    WorkerPanic,
    /// A snapshot/checkpoint write error before the atomic rename
    /// (recovered by bounded retry; the temp file is always cleaned up).
    SaveWrite,
    /// A torn write: the rename lands but the destination is truncated
    /// (recovered at the next load by salvaging entries that still parse).
    SaveTorn,
    /// A corrupted write: the rename lands but a region of the JSON is
    /// garbage (recovered at the next load by salvage).
    SaveCorrupt,
    /// The sample budget is revoked mid-step, as if the tenant's quota
    /// were withdrawn (recovered by winding down with best-so-far).
    BudgetRevoke,
}

impl FaultSite {
    /// Every site, in declaration order (the order of [`FaultRates`]
    /// fields and the injected-counter array).
    pub const ALL: [FaultSite; 6] = [
        FaultSite::EvalError,
        FaultSite::WorkerPanic,
        FaultSite::SaveWrite,
        FaultSite::SaveTorn,
        FaultSite::SaveCorrupt,
        FaultSite::BudgetRevoke,
    ];

    /// Stable index into per-site counter arrays.
    fn index(self) -> usize {
        match self {
            FaultSite::EvalError => 0,
            FaultSite::WorkerPanic => 1,
            FaultSite::SaveWrite => 2,
            FaultSite::SaveTorn => 3,
            FaultSite::SaveCorrupt => 4,
            FaultSite::BudgetRevoke => 5,
        }
    }

    /// The site's `snake_case` name, used in telemetry counter paths.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::EvalError => "eval_error",
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::SaveWrite => "save_write",
            FaultSite::SaveTorn => "save_torn",
            FaultSite::SaveCorrupt => "save_corrupt",
            FaultSite::BudgetRevoke => "budget_revoke",
        }
    }
}

/// Per-site injection probabilities in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability of [`FaultSite::EvalError`] per funded candidate.
    pub eval_error: f64,
    /// Probability of [`FaultSite::WorkerPanic`] per funded candidate.
    pub worker_panic: f64,
    /// Probability of [`FaultSite::SaveWrite`] per save attempt.
    pub save_write: f64,
    /// Probability of [`FaultSite::SaveTorn`] per save attempt.
    pub save_torn: f64,
    /// Probability of [`FaultSite::SaveCorrupt`] per save attempt.
    pub save_corrupt: f64,
    /// Probability of [`FaultSite::BudgetRevoke`] per evaluation step.
    pub budget_revoke: f64,
}

impl FaultRates {
    /// All-zero rates: an enabled plan that never injects.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: sets one site's rate.
    pub fn with(mut self, site: FaultSite, rate: f64) -> Self {
        match site {
            FaultSite::EvalError => self.eval_error = rate,
            FaultSite::WorkerPanic => self.worker_panic = rate,
            FaultSite::SaveWrite => self.save_write = rate,
            FaultSite::SaveTorn => self.save_torn = rate,
            FaultSite::SaveCorrupt => self.save_corrupt = rate,
            FaultSite::BudgetRevoke => self.budget_revoke = rate,
        }
        self
    }

    /// The rate configured for `site`.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::EvalError => self.eval_error,
            FaultSite::WorkerPanic => self.worker_panic,
            FaultSite::SaveWrite => self.save_write,
            FaultSite::SaveTorn => self.save_torn,
            FaultSite::SaveCorrupt => self.save_corrupt,
            FaultSite::BudgetRevoke => self.budget_revoke,
        }
    }
}

/// A serializable snapshot of an enabled [`FaultPlan`]: the generator's
/// raw state words plus the rates. Round-trips mid-stream — a plan built
/// via [`FaultPlan::from_schedule`] continues the exact same sequence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// xoshiro256** state words (4 of them; a short vector reseeds from
    /// the first word, mirroring search checkpoint snapshots).
    pub rng: Vec<u64>,
    /// Per-site injection probabilities.
    pub rates: FaultRates,
}

impl FaultSchedule {
    /// A schedule starting from `seed` with the given rates.
    pub fn seeded(seed: u64, rates: FaultRates) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed).state().to_vec(),
            rates,
        }
    }
}

/// Thread-safe counters for every recovery path. Always present on a
/// [`FaultPlan`] — even a disabled plan records *real* recoveries (a
/// genuinely corrupt snapshot salvages the same way an injected one does).
#[derive(Debug, Default)]
pub struct FaultLog {
    eval_rescores: AtomicU64,
    quarantined_batches: AtomicU64,
    refunded_samples: AtomicU64,
    budget_revocations: AtomicU64,
    save_retries: AtomicU64,
    save_failures: AtomicU64,
    salvaged_entries: AtomicU64,
    dropped_entries: AtomicU64,
}

impl FaultLog {
    /// A candidate whose first scoring attempt errored was re-scored.
    pub fn note_eval_rescore(&self) {
        self.eval_rescores.fetch_add(1, Ordering::Relaxed);
    }

    /// A dispatch panicked; the whole batch was discarded.
    pub fn note_quarantined_batch(&self) {
        self.quarantined_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` funded samples were refunded to their budget source.
    pub fn note_refunded_samples(&self, n: u64) {
        self.refunded_samples.fetch_add(n, Ordering::Relaxed);
    }

    /// The sample budget was revoked mid-run.
    pub fn note_budget_revocation(&self) {
        self.budget_revocations.fetch_add(1, Ordering::Relaxed);
    }

    /// A failed save attempt was retried.
    pub fn note_save_retry(&self) {
        self.save_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A save failed after every bounded attempt.
    pub fn note_save_failure(&self) {
        self.save_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` entries were salvaged out of a corrupt snapshot.
    pub fn note_salvaged_entries(&self, n: u64) {
        self.salvaged_entries.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` unparseable entries were dropped during salvage.
    pub fn note_dropped_entries(&self, n: u64) {
        self.dropped_entries.fetch_add(n, Ordering::Relaxed);
    }

    /// Candidates re-scored after a transient evaluator error.
    pub fn eval_rescores(&self) -> u64 {
        self.eval_rescores.load(Ordering::Relaxed)
    }

    /// Batches discarded after a worker panic.
    pub fn quarantined_batches(&self) -> u64 {
        self.quarantined_batches.load(Ordering::Relaxed)
    }

    /// Samples refunded from quarantined batches.
    pub fn refunded_samples(&self) -> u64 {
        self.refunded_samples.load(Ordering::Relaxed)
    }

    /// Mid-run budget revocations.
    pub fn budget_revocations(&self) -> u64 {
        self.budget_revocations.load(Ordering::Relaxed)
    }

    /// Save attempts that failed and were retried.
    pub fn save_retries(&self) -> u64 {
        self.save_retries.load(Ordering::Relaxed)
    }

    /// Saves that failed after every attempt.
    pub fn save_failures(&self) -> u64 {
        self.save_failures.load(Ordering::Relaxed)
    }

    /// Entries recovered from corrupt snapshots.
    pub fn salvaged_entries(&self) -> u64 {
        self.salvaged_entries.load(Ordering::Relaxed)
    }

    /// Entries lost to corruption during salvage.
    pub fn dropped_entries(&self) -> u64 {
        self.dropped_entries.load(Ordering::Relaxed)
    }
}

/// A point-in-time snapshot of injected faults and recovery actions,
/// attached to `Exploration::health` and exported as `engine.faults.*`
/// counters.
///
/// **Degraded vs. transparent.** Recoveries that provably cannot change
/// the result — a successful save retry, a re-scored pure evaluation, a
/// salvage that only *warms* a cache — are informational. The run is
/// *degraded* only when the output envelope actually shrank: the budget
/// was revoked (fewer samples than requested), a batch was quarantined
/// (its evaluations were discarded), or a save never landed (state on
/// disk is stale). [`HealthReport::is_degraded`] draws exactly that line.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Faults injected at [`FaultSite::EvalError`].
    pub injected_eval_errors: u64,
    /// Faults injected at [`FaultSite::WorkerPanic`].
    pub injected_worker_panics: u64,
    /// Faults injected at [`FaultSite::SaveWrite`].
    pub injected_save_writes: u64,
    /// Faults injected at [`FaultSite::SaveTorn`].
    pub injected_save_torn: u64,
    /// Faults injected at [`FaultSite::SaveCorrupt`].
    pub injected_save_corrupt: u64,
    /// Faults injected at [`FaultSite::BudgetRevoke`].
    pub injected_budget_revokes: u64,
    /// Candidates re-scored after a transient evaluator error.
    pub eval_rescores: u64,
    /// Batches discarded after a worker panic.
    pub quarantined_batches: u64,
    /// Samples refunded from quarantined batches.
    pub refunded_samples: u64,
    /// Mid-run budget revocations.
    pub budget_revocations: u64,
    /// Save attempts that failed and were retried.
    pub save_retries: u64,
    /// Saves that failed after every bounded attempt.
    pub save_failures: u64,
    /// Entries recovered from corrupt snapshots.
    pub salvaged_entries: u64,
    /// Entries lost to corruption during salvage.
    pub dropped_entries: u64,
}

impl HealthReport {
    /// Total faults injected across every site.
    pub fn faults_seen(&self) -> u64 {
        self.injected_eval_errors
            + self.injected_worker_panics
            + self.injected_save_writes
            + self.injected_save_torn
            + self.injected_save_corrupt
            + self.injected_budget_revokes
    }

    /// Total recovery actions taken (transparent and degrading alike).
    pub fn recoveries(&self) -> u64 {
        self.eval_rescores
            + self.quarantined_batches
            + self.budget_revocations
            + self.save_retries
            + self.salvaged_entries
    }

    /// True when a recovery shrank the output envelope (revoked budget,
    /// quarantined batch, or a save that never landed) — as opposed to
    /// transparent recoveries that provably leave results bit-identical.
    pub fn is_degraded(&self) -> bool {
        self.budget_revocations > 0 || self.quarantined_batches > 0 || self.save_failures > 0
    }

    /// The injected count for `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        match site {
            FaultSite::EvalError => self.injected_eval_errors,
            FaultSite::WorkerPanic => self.injected_worker_panics,
            FaultSite::SaveWrite => self.injected_save_writes,
            FaultSite::SaveTorn => self.injected_save_torn,
            FaultSite::SaveCorrupt => self.injected_save_corrupt,
            FaultSite::BudgetRevoke => self.injected_budget_revokes,
        }
    }
}

/// The seeded half of a plan: generator + rates + injected counters.
#[derive(Debug)]
struct Injector {
    rng: Mutex<StdRng>,
    rates: FaultRates,
    injected: [AtomicU64; 6],
}

/// A cheap cloneable fault-injection handle, threaded through the stack
/// like `Telemetry`. Disabled (the default) costs one branch per seam and
/// never injects; clones share the generator, counters, and log.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    injector: Option<Arc<Injector>>,
    log: Arc<FaultLog>,
}

impl FaultPlan {
    /// A plan that never injects. Its [`FaultLog`] still records real
    /// recoveries, so production runs get health reporting for free.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled plan drawing from `seed` with the given rates.
    pub fn seeded(seed: u64, rates: FaultRates) -> Self {
        Self::from_rng(StdRng::seed_from_u64(seed), rates)
    }

    /// Rebuilds a plan from a [`FaultSchedule`], continuing its exact
    /// injection sequence (fresh counters and log).
    pub fn from_schedule(schedule: &FaultSchedule) -> Self {
        let rng = match <[u64; 4]>::try_from(schedule.rng.as_slice()) {
            Ok(state) => StdRng::from_state(state),
            Err(_) => StdRng::seed_from_u64(schedule.rng.first().copied().unwrap_or(0)),
        };
        Self::from_rng(rng, schedule.rates)
    }

    fn from_rng(rng: StdRng, rates: FaultRates) -> Self {
        Self {
            injector: Some(Arc::new(Injector {
                rng: Mutex::new(rng),
                rates,
                injected: Default::default(),
            })),
            log: Arc::new(FaultLog::default()),
        }
    }

    /// True when this plan can inject faults.
    pub fn is_enabled(&self) -> bool {
        self.injector.is_some()
    }

    /// The plan's current schedule (generator state + rates), or `None`
    /// for a disabled plan. Capturing and restoring mid-stream continues
    /// the same sequence.
    pub fn schedule(&self) -> Option<FaultSchedule> {
        let injector = self.injector.as_ref()?;
        let rng = injector.rng.lock().unwrap();
        Some(FaultSchedule {
            rng: rng.state().to_vec(),
            rates: injector.rates,
        })
    }

    /// Decides whether to inject a fault at `site` *this* time.
    ///
    /// Must only be called from serial sections — the draw order defines
    /// the schedule, and calling from pool workers would make it depend
    /// on thread interleaving. Sites with rate `0.0` return `false`
    /// without consuming anything from the generator.
    pub fn should_inject(&self, site: FaultSite) -> bool {
        let Some(injector) = self.injector.as_ref() else {
            return false;
        };
        let rate = injector.rates.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let hit = injector.rng.lock().unwrap().gen_bool(rate);
        if hit {
            injector.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// How many faults have been injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injector
            .as_ref()
            .map(|i| i.injected[site.index()].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The recovery log (always present, even when disabled).
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Snapshots injected counts and recovery counters.
    pub fn health(&self) -> HealthReport {
        HealthReport {
            injected_eval_errors: self.injected(FaultSite::EvalError),
            injected_worker_panics: self.injected(FaultSite::WorkerPanic),
            injected_save_writes: self.injected(FaultSite::SaveWrite),
            injected_save_torn: self.injected(FaultSite::SaveTorn),
            injected_save_corrupt: self.injected(FaultSite::SaveCorrupt),
            injected_budget_revokes: self.injected(FaultSite::BudgetRevoke),
            eval_rescores: self.log.eval_rescores(),
            quarantined_batches: self.log.quarantined_batches(),
            refunded_samples: self.log.refunded_samples(),
            budget_revocations: self.log.budget_revocations(),
            save_retries: self.log.save_retries(),
            save_failures: self.log.save_failures(),
            salvaged_entries: self.log.salvaged_entries(),
            dropped_entries: self.log.dropped_entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_injects_and_still_logs() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        assert!(plan.schedule().is_none());
        for site in FaultSite::ALL {
            assert!(!plan.should_inject(site));
            assert_eq!(plan.injected(site), 0);
        }
        plan.log().note_salvaged_entries(3);
        let health = plan.health();
        assert_eq!(health.salvaged_entries, 3);
        assert_eq!(health.faults_seen(), 0);
        assert!(!health.is_degraded());
    }

    #[test]
    fn seeded_plans_inject_the_same_sequence() {
        let rates = FaultRates::none()
            .with(FaultSite::EvalError, 0.3)
            .with(FaultSite::SaveWrite, 0.5);
        let a = FaultPlan::seeded(11, rates);
        let b = FaultPlan::seeded(11, rates);
        for _ in 0..200 {
            assert_eq!(
                a.should_inject(FaultSite::EvalError),
                b.should_inject(FaultSite::EvalError)
            );
            assert_eq!(
                a.should_inject(FaultSite::SaveWrite),
                b.should_inject(FaultSite::SaveWrite)
            );
        }
        assert_eq!(a.health(), b.health());
        assert!(a.health().faults_seen() > 0, "0.3/0.5 over 200 draws");
    }

    #[test]
    fn zero_rate_sites_do_not_consume_the_stream() {
        let rates = FaultRates::none().with(FaultSite::WorkerPanic, 0.5);
        let a = FaultPlan::seeded(5, rates);
        let b = FaultPlan::seeded(5, rates);
        for _ in 0..100 {
            // Interleave zero-rate queries on `a` only; the sequences on
            // the enabled site must stay aligned.
            assert!(!a.should_inject(FaultSite::SaveCorrupt));
            assert!(!a.should_inject(FaultSite::BudgetRevoke));
            assert_eq!(
                a.should_inject(FaultSite::WorkerPanic),
                b.should_inject(FaultSite::WorkerPanic)
            );
        }
    }

    #[test]
    fn rate_one_always_injects() {
        let plan = FaultPlan::seeded(1, FaultRates::none().with(FaultSite::BudgetRevoke, 1.0));
        for _ in 0..50 {
            assert!(plan.should_inject(FaultSite::BudgetRevoke));
        }
        assert_eq!(plan.injected(FaultSite::BudgetRevoke), 50);
        assert_eq!(plan.health().injected_budget_revokes, 50);
    }

    #[test]
    fn schedule_round_trips_mid_stream() {
        let rates = FaultRates::none().with(FaultSite::SaveTorn, 0.4);
        let plan = FaultPlan::seeded(23, rates);
        for _ in 0..17 {
            plan.should_inject(FaultSite::SaveTorn);
        }
        let schedule = plan.schedule().expect("enabled");
        let json = serde_json::to_string(&schedule).expect("serialize");
        let parsed: FaultSchedule = serde_json::from_str(&json).expect("parse");
        assert_eq!(parsed, schedule);
        let replica = FaultPlan::from_schedule(&parsed);
        for _ in 0..100 {
            assert_eq!(
                plan.should_inject(FaultSite::SaveTorn),
                replica.should_inject(FaultSite::SaveTorn)
            );
        }
    }

    #[test]
    fn short_schedule_state_falls_back_to_reseeding() {
        let schedule = FaultSchedule {
            rng: vec![42],
            rates: FaultRates::none().with(FaultSite::EvalError, 1.0),
        };
        let plan = FaultPlan::from_schedule(&schedule);
        let reseeded = FaultPlan::seeded(42, schedule.rates);
        assert_eq!(plan.schedule(), reseeded.schedule());
    }

    #[test]
    fn clones_share_generator_counters_and_log() {
        let plan = FaultPlan::seeded(3, FaultRates::none().with(FaultSite::EvalError, 1.0));
        let clone = plan.clone();
        assert!(clone.should_inject(FaultSite::EvalError));
        clone.log().note_eval_rescore();
        assert_eq!(plan.injected(FaultSite::EvalError), 1);
        assert_eq!(plan.log().eval_rescores(), 1);
    }

    #[test]
    fn degraded_line_matches_the_documented_envelope() {
        let transparent = HealthReport {
            eval_rescores: 4,
            save_retries: 2,
            salvaged_entries: 9,
            dropped_entries: 1,
            injected_eval_errors: 4,
            ..HealthReport::default()
        };
        assert!(!transparent.is_degraded());
        assert_eq!(transparent.recoveries(), 15);
        for degraded in [
            HealthReport {
                budget_revocations: 1,
                ..HealthReport::default()
            },
            HealthReport {
                quarantined_batches: 1,
                ..HealthReport::default()
            },
            HealthReport {
                save_failures: 1,
                ..HealthReport::default()
            },
        ] {
            assert!(degraded.is_degraded());
        }
    }

    #[test]
    fn health_report_serde_round_trips() {
        let report = HealthReport {
            injected_save_writes: 2,
            save_retries: 2,
            refunded_samples: 12,
            ..HealthReport::default()
        };
        let json = serde_json::to_string(&report).expect("serialize");
        let parsed: HealthReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(parsed, report);
    }
}
