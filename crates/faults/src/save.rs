//! Atomic, fault-instrumented, bounded-retry text-file saves.
//!
//! The single save path shared by cache snapshots and search checkpoints:
//! write to a unique sibling temp file, then rename over the destination.
//! Three guarantees on top of the plain `fs::write` + `rename` idiom:
//!
//! 1. **No stale temp files.** Whichever step fails — the write *or* the
//!    rename — the temp file is removed before the error is returned.
//! 2. **Bounded retry, no clocks.** Transient failures are retried up to
//!    [`MAX_SAVE_ATTEMPTS`] times with no sleep or wall-clock read
//!    (audit D3 stays green); each retry is noted on the [`FaultLog`].
//! 3. **Seeded injection.** The [`FaultPlan`] can inject a write error
//!    (exercises cleanup + retry), a torn write (truncated payload that
//!    still renames — corrupting the destination for the *loader* to
//!    salvage), or a corrupted region (same, mid-file garbage).
//!
//! [`FaultLog`]: crate::FaultLog

use crate::{FaultPlan, FaultSite};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// How many times one save is attempted before giving up. Attempt-count
/// bounded (not time-bounded) so the retry loop stays deterministic and
/// clock-free.
pub const MAX_SAVE_ATTEMPTS: u32 = 3;

/// Monotonic discriminator so concurrent saves never share a temp file.
static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Saves `text` to `path` atomically (unique temp file + rename), with
/// bounded retry and fault injection. On success the destination holds
/// `text` — unless a torn/corrupt fault was injected, in which case the
/// rename still lands and the *loader's* salvage path is exercised. On
/// error, no temp file is left behind.
pub fn atomic_save(path: &Path, text: &str, faults: &FaultPlan) -> io::Result<()> {
    let mut last_err = None;
    for attempt in 1..=MAX_SAVE_ATTEMPTS {
        match save_once(path, text, faults) {
            Ok(()) => return Ok(()),
            Err(err) => {
                if attempt < MAX_SAVE_ATTEMPTS {
                    faults.log().note_save_retry();
                }
                last_err = Some(err);
            }
        }
    }
    faults.log().note_save_failure();
    Err(last_err.unwrap_or_else(|| io::Error::other("save failed with no attempts")))
}

fn save_once(path: &Path, text: &str, faults: &FaultPlan) -> io::Result<()> {
    let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = PathBuf::from(format!(
        "{}.tmp.{}.{seq}",
        path.display(),
        std::process::id()
    ));
    let result = write_and_rename(path, &tmp, text, faults);
    if result.is_err() {
        // cocco-audit: allow(R2) best-effort cleanup of our own temp file; the save error itself is what gets reported
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_and_rename(path: &Path, tmp: &Path, text: &str, faults: &FaultPlan) -> io::Result<()> {
    if faults.should_inject(FaultSite::SaveWrite) {
        // Model a write failing partway: leave a partial temp file for the
        // cleanup path to collect, then report the error.
        // cocco-audit: allow(R2) the injected error below supersedes this deliberately-partial write
        let _ = std::fs::write(tmp, &text[..boundary(text, text.len() / 3)]);
        return Err(io::Error::other("cocco-faults: injected write error"));
    }
    let payload = if faults.should_inject(FaultSite::SaveTorn) {
        // Torn write: the rename lands but the tail is missing.
        text[..boundary(text, text.len() * 2 / 3)].to_string()
    } else if faults.should_inject(FaultSite::SaveCorrupt) {
        // Corrupted region: garbage spliced mid-file; surrounding entries
        // stay parseable for the salvage path.
        let cut = boundary(text, text.len() / 2);
        let end = boundary(text, (cut + 24).min(text.len()));
        format!("{}!corrupt!{}", &text[..cut], &text[end..])
    } else {
        text.to_string()
    };
    std::fs::write(tmp, payload)?;
    std::fs::rename(tmp, path)
}

/// The nearest char boundary at or after `i` (JSON payloads are almost
/// always ASCII, but truncation must never split a code point).
fn boundary(text: &str, mut i: usize) -> usize {
    while i < text.len() && !text.is_char_boundary(i) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultRates;

    /// A unique scratch path under the system temp dir.
    fn scratch(name: &str) -> PathBuf {
        let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("cocco-faults-{}-{seq}-{name}", std::process::id()))
    }

    fn stale_temps(path: &Path) -> Vec<PathBuf> {
        let prefix = format!(
            "{}.tmp.",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("")
        );
        let dir = path.parent().expect("scratch paths have a parent");
        std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|entry| entry.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&prefix))
            })
            .collect()
    }

    #[test]
    fn plain_save_writes_the_text_atomically() {
        let path = scratch("plain.json");
        atomic_save(&path, "{\"ok\":true}", &FaultPlan::disabled()).expect("save");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "{\"ok\":true}"
        );
        assert!(stale_temps(&path).is_empty());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn injected_write_error_leaves_no_temp_file_and_counts() {
        let path = scratch("werr.json");
        let plan = FaultPlan::seeded(1, FaultRates::none().with(FaultSite::SaveWrite, 1.0));
        let err = atomic_save(&path, "payload", &plan).expect_err("rate 1.0 always fails");
        assert!(err.to_string().contains("injected write error"));
        assert!(!path.exists(), "no destination on total failure");
        assert!(stale_temps(&path).is_empty(), "temp files must be cleaned");
        assert_eq!(plan.log().save_retries(), u64::from(MAX_SAVE_ATTEMPTS - 1));
        assert_eq!(plan.log().save_failures(), 1);
        assert_eq!(
            plan.injected(FaultSite::SaveWrite),
            u64::from(MAX_SAVE_ATTEMPTS)
        );
    }

    #[test]
    fn transient_write_error_recovers_within_bounded_attempts() {
        // High-but-not-certain rate: find a seed whose first draw fails and
        // a later one succeeds, then assert the retry made the save land.
        let path = scratch("transient.json");
        let rates = FaultRates::none().with(FaultSite::SaveWrite, 0.5);
        let mut recovered = false;
        for seed in 0..64 {
            let plan = FaultPlan::seeded(seed, rates);
            let _ = std::fs::remove_file(&path);
            if atomic_save(&path, "v", &plan).is_ok() && plan.log().save_retries() > 0 {
                assert_eq!(std::fs::read_to_string(&path).expect("read"), "v");
                assert!(stale_temps(&path).is_empty());
                recovered = true;
                break;
            }
        }
        assert!(recovered, "some seed in 0..64 fails once then recovers");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_truncates_but_renames() {
        let path = scratch("torn.json");
        let plan = FaultPlan::seeded(2, FaultRates::none().with(FaultSite::SaveTorn, 1.0));
        atomic_save(&path, "0123456789", &plan).expect("torn saves still land");
        let on_disk = std::fs::read_to_string(&path).expect("read");
        assert!(on_disk.len() < 10, "tail must be missing, got {on_disk:?}");
        assert!("0123456789".starts_with(&on_disk));
        assert!(stale_temps(&path).is_empty());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn corrupt_write_splices_garbage_mid_file() {
        let path = scratch("corrupt.json");
        let text = "a".repeat(100);
        let plan = FaultPlan::seeded(3, FaultRates::none().with(FaultSite::SaveCorrupt, 1.0));
        atomic_save(&path, &text, &plan).expect("corrupt saves still land");
        let on_disk = std::fs::read_to_string(&path).expect("read");
        assert!(on_disk.contains("!corrupt!"));
        assert_ne!(on_disk, text);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let text = "héllo wörld ünïcode çontent".repeat(4);
        let plan = FaultPlan::seeded(4, FaultRates::none().with(FaultSite::SaveTorn, 1.0));
        let path = scratch("utf8.json");
        atomic_save(&path, &text, &plan).expect("no mid-code-point split");
        let on_disk = std::fs::read_to_string(&path).expect("valid utf-8 on disk");
        assert!(text.starts_with(&on_disk));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn unwritable_directory_fails_structurally_and_cleans_up() {
        let missing = PathBuf::from("/nonexistent-cocco-dir/sub/snapshot.json");
        let err = atomic_save(&missing, "x", &FaultPlan::disabled()).expect_err("no such dir");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
