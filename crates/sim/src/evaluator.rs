//! The partition evaluator: cached per-subgraph statistics plus the
//! energy/latency/bandwidth roll-up.

use crate::columns::SubgraphColumns;
use crate::config::{AcceleratorConfig, BufferConfig, EvalOptions};
use crate::cost::SubgraphStats;
use crate::error::SimError;
use crate::report::{PartitionReport, SubgraphReport};
use cocco_graph::{BuildFpHasher, EdgeReq, Graph, LayerOp, NodeId, NodeSetFp};
use cocco_mem::footprint::subgraph_footprint;
use cocco_telemetry::{Histogram, Stopwatch, Telemetry};
use cocco_tiling::derive_scheme;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Shards of the subgraph-statistics cache: parallel batch evaluation has
/// every worker reading and occasionally writing this map, so spreading
/// keys over independent locks keeps them off each other's critical
/// sections.
const STATS_SHARDS: usize = 16;

/// Shard selection from a member-set fingerprint — the fingerprint is
/// already uniform, so one lane picks the shard directly.
fn stats_shard(fp: NodeSetFp) -> usize {
    (fp.lo % STATS_SHARDS as u64) as usize
}

/// One cached statistics entry plus its last-touched generation (updated on
/// hits under the shard's read lock, hence atomic) — the same
/// generation-sweep bookkeeping the engine's `EvalCache` uses.
#[derive(Debug)]
struct StatsSlot {
    stats: SubgraphStats,
    gen: AtomicU64,
}

/// One shard of the stats cache: the map plus the shard's sweep generation.
#[derive(Debug, Default)]
struct StatsShard {
    map: HashMap<NodeSetFp, StatsSlot, BuildFpHasher>,
    gen: u64,
}

/// Evaluates partitions of one computation graph on one accelerator
/// configuration, caching the buffer-independent per-subgraph statistics.
///
/// The evaluator is `Sync`: a genetic population can be scored from several
/// threads against one shared instance.
///
/// # Examples
///
/// ```
/// use cocco_sim::{AcceleratorConfig, BufferConfig, CostMetric, Evaluator};
///
/// let g = cocco_graph::models::chain(4);
/// let eval = Evaluator::new(&g, AcceleratorConfig::default());
/// // Layer-by-layer execution: one subgraph per node.
/// let per_layer: Vec<Vec<_>> = g.node_ids().map(|id| vec![id]).collect();
/// let report = eval
///     .eval_partition(&per_layer, &BufferConfig::shared(1 << 20), Default::default())
///     .unwrap();
/// assert!(report.cost_formula1(CostMetric::Ema) > 0.0);
/// ```
#[derive(Debug)]
pub struct Evaluator<'g> {
    graph: &'g Graph,
    config: AcceleratorConfig,
    // Per-node precomputation (indexed by NodeId).
    weight_bytes: Vec<u64>,
    out_bytes: Vec<u64>,
    macs: Vec<u64>,
    cycles: Vec<f64>,
    is_input: Vec<bool>,
    fingerprint: u64,
    /// Member-set fingerprint → statistics. Keyed by the same 128-bit
    /// [`NodeSetFp`] the engine caches key on, so a probe neither
    /// allocates a key vector nor re-hashes the member list. Bounded by
    /// [`stats_capacity`](Self::with_stats_capacity): a full shard runs a
    /// generation sweep evicting entries untouched since the previous
    /// sweep, so a long exploration keeps its working set while stale
    /// subgraphs are shed.
    cache: [RwLock<StatsShard>; STATS_SHARDS],
    /// Entry budget per cache shard.
    stats_shard_capacity: usize,
    stats_hits: AtomicU64,
    stats_misses: AtomicU64,
    stats_evictions: AtomicU64,
    /// Misses whose member list arrived out of ascending order and had to
    /// be sorted into a temporary before derivation. Every production
    /// path (arena layouts, `Partition::subgraphs`) produces ascending
    /// members by construction, so this counts a slow path the smoke
    /// benchmark asserts never fires; debug builds additionally assert.
    stats_canon_fallbacks: AtomicU64,
    /// Shard-lock acquisitions that found the lock already held and had to
    /// block. Observation-only contention tripwire: results are identical
    /// either way, but the engine's scale-out layers (hit prefilter,
    /// worker-local L0 caches) exist to keep warm-path probes off these
    /// locks, and the scaleout benchmark reports this counter to show it.
    stats_lock_waits: AtomicU64,
    /// Fresh-derivation latency (`sim.subgraph_stats_ns`), recorded only
    /// on the miss path — the cached hit path (the engine's 47 ns leaf)
    /// never touches telemetry. `None` when telemetry is disabled.
    stats_latency: Option<Histogram>,
}

impl<'g> Evaluator<'g> {
    /// Creates an evaluator for `graph` under `config`.
    pub fn new(graph: &'g Graph, config: AcceleratorConfig) -> Self {
        let n = graph.len();
        let mut weight_bytes = Vec::with_capacity(n);
        let mut out_bytes = Vec::with_capacity(n);
        let mut macs = Vec::with_capacity(n);
        let mut cycles = Vec::with_capacity(n);
        let mut is_input = Vec::with_capacity(n);
        let peak = config.peak_macs_per_cycle() as f64;
        for (id, node) in graph.iter() {
            weight_bytes.push(graph.weight_elements(id) * config.elem_bytes);
            out_bytes.push(graph.out_elements(id) * config.elem_bytes);
            macs.push(graph.macs(id));
            let util = utilization(graph, id, &config).max(1e-6);
            cycles.push(graph.macs(id) as f64 / (peak * util));
            is_input.push(node.op().is_input());
        }
        // Identity of (graph, accelerator) for external memoization keys:
        // the serialized configuration plus the graph's name and
        // per-node precomputation totals.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |w: u64| {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in graph.name().bytes() {
            mix(u64::from(b));
        }
        for b in format!("{config:?}").bytes() {
            mix(u64::from(b));
        }
        mix(n as u64);
        mix(weight_bytes.iter().sum());
        mix(out_bytes.iter().sum());
        mix(macs.iter().sum());
        Self {
            graph,
            config,
            weight_bytes,
            out_bytes,
            macs,
            cycles,
            is_input,
            fingerprint: h,
            cache: Default::default(),
            stats_shard_capacity: (Self::DEFAULT_STATS_CAPACITY / STATS_SHARDS).max(1),
            stats_hits: AtomicU64::new(0),
            stats_misses: AtomicU64::new(0),
            stats_evictions: AtomicU64::new(0),
            stats_canon_fallbacks: AtomicU64::new(0),
            stats_lock_waits: AtomicU64::new(0),
            stats_latency: None,
        }
    }

    /// Records the latency of every fresh subgraph-statistics derivation
    /// (the stats-cache miss path) into `telemetry`'s
    /// `sim.subgraph_stats_ns` histogram. Observation-only: derived
    /// statistics, caching and eviction are bit-identical with or
    /// without it, and the cached hit path is untouched.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.stats_latency = telemetry.latency_histogram("sim.subgraph_stats_ns");
        self
    }

    /// Default bound on cached per-subgraph statistics entries: ~100 B per
    /// entry, so the default caps the cache's residency at tens of
    /// megabytes while staying far above what a 50k-sample exploration of
    /// one model touches.
    pub const DEFAULT_STATS_CAPACITY: usize = 1 << 18;

    /// Bounds the per-subgraph statistics cache to `capacity` entries
    /// (clamped so every shard holds at least one). A full shard runs a
    /// generation sweep — entries untouched since the previous sweep are
    /// evicted and counted — exactly the engine cache's eviction policy.
    /// Eviction never changes results; a re-miss recomputes the
    /// bit-identical statistics.
    #[must_use]
    pub fn with_stats_capacity(mut self, capacity: usize) -> Self {
        self.stats_shard_capacity = (capacity / STATS_SHARDS).max(1);
        self
    }

    /// A stable identity of this evaluator's `(graph, accelerator config)`
    /// pair, for callers that memoize evaluations across evaluators (two
    /// different models or platforms virtually never collide).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The evaluated graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Number of distinct subgraphs currently cached (bounded by the stats
    /// capacity; see [`with_stats_capacity`](Self::with_stats_capacity)).
    pub fn cached_subgraphs(&self) -> usize {
        self.cache.iter().map(|s| s.read().unwrap().map.len()).sum()
    }

    /// Statistics-cache lookups answered from the cache.
    pub fn stats_cache_hits(&self) -> u64 {
        self.stats_hits.load(Ordering::Relaxed)
    }

    /// Statistics-cache lookups that required a fresh derivation.
    pub fn stats_cache_misses(&self) -> u64 {
        self.stats_misses.load(Ordering::Relaxed)
    }

    /// Statistics entries evicted by generation sweeps.
    pub fn stats_cache_evictions(&self) -> u64 {
        self.stats_evictions.load(Ordering::Relaxed)
    }

    /// Statistics misses that had to canonicalize (sort a copy of) an
    /// out-of-order member list before derivation. 0 on every production
    /// path — the smoke benchmark asserts it via
    /// `EngineStats::stats_canonicalize_fallbacks`.
    pub fn stats_canonicalize_fallbacks(&self) -> u64 {
        self.stats_canon_fallbacks.load(Ordering::Relaxed)
    }

    /// Statistics-cache shard-lock acquisitions that blocked on another
    /// thread. Purely observational — blocking changes wall-clock, never
    /// results — and expected to stay near 0 once the engine's prefilter
    /// and L0 layers absorb warm probes before they reach this cache.
    pub fn stats_lock_waits(&self) -> u64 {
        self.stats_lock_waits.load(Ordering::Relaxed)
    }

    /// Fraction of statistics lookups answered from the cache.
    pub fn stats_cache_hit_rate(&self) -> f64 {
        let hits = self.stats_cache_hits();
        let total = hits + self.stats_cache_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Buffer-independent statistics of the subgraph `members` (sorted or
    /// unsorted; the result is cached under the order-independent member
    /// fingerprint).
    ///
    /// # Errors
    ///
    /// Returns an error if `members` is empty, has duplicates or references
    /// nodes outside the graph.
    pub fn subgraph_stats(&self, members: &[NodeId]) -> Result<SubgraphStats, SimError> {
        self.subgraph_stats_keyed(NodeSetFp::of_members(members), members)
    }

    /// [`subgraph_stats`](Self::subgraph_stats) with the member-set
    /// fingerprint already in hand (the engine precomputes it per
    /// subgraph), so a cache hit costs one map probe — no key allocation,
    /// no member sort, no re-hash.
    pub fn subgraph_stats_keyed(
        &self,
        fp: NodeSetFp,
        members: &[NodeId],
    ) -> Result<SubgraphStats, SimError> {
        debug_assert_eq!(fp, NodeSetFp::of_members(members), "stale fingerprint");
        let shard = &self.cache[stats_shard(fp)];
        {
            // Uncontended probes take the lock without waiting; a busy
            // shard is counted, then acquired blocking as before.
            let shard = match shard.try_read() {
                Ok(guard) => guard,
                Err(_) => {
                    self.stats_lock_waits.fetch_add(1, Ordering::Relaxed);
                    shard.read().unwrap()
                }
            };
            if let Some(slot) = shard.map.get(&fp) {
                // Touch: mark the entry live in the current generation so
                // the next sweep keeps it.
                slot.gen.store(shard.gen, Ordering::Relaxed);
                self.stats_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(slot.stats);
            }
        }
        self.stats_misses.fetch_add(1, Ordering::Relaxed);
        let derivation = self.stats_latency.as_ref().map(|_| Stopwatch::start());
        // Miss: the derivation expects members in ascending (topological)
        // order. Every production caller guarantees it by construction —
        // `Partition::subgraphs` and arena layouts both emit ascending
        // members — so the sort below is a counted slow path kept only for
        // order-agnostic external callers. Debug builds assert it never
        // fires; `micro --smoke` asserts the counter stays 0.
        let stats = if members.windows(2).all(|w| w[0] < w[1]) {
            self.compute_stats(members)?
        } else {
            debug_assert!(
                members.windows(2).all(|w| w[0] != w[1]),
                "duplicate members reach the canonicalize fallback"
            );
            self.stats_canon_fallbacks.fetch_add(1, Ordering::Relaxed);
            let mut sorted = members.to_vec();
            sorted.sort_unstable();
            self.compute_stats(&sorted)?
        };
        if let (Some(hist), Some(sw)) = (&self.stats_latency, derivation) {
            hist.record(sw.elapsed_nanos());
        }
        let mut shard = match shard.try_write() {
            Ok(guard) => guard,
            Err(_) => {
                self.stats_lock_waits.fetch_add(1, Ordering::Relaxed);
                shard.write().unwrap()
            }
        };
        let gen = shard.gen;
        shard.map.insert(
            fp,
            StatsSlot {
                stats,
                gen: AtomicU64::new(gen),
            },
        );
        if shard.map.len() > self.stats_shard_capacity {
            // Generation sweep (the engine cache's policy): evict
            // everything not touched since the previous sweep; if the live
            // working set alone overflows, shed down to half the budget so
            // the next full-shard sweep is amortized.
            let before = shard.map.len();
            shard
                .map
                .retain(|_, slot| slot.gen.load(Ordering::Relaxed) >= gen);
            if shard.map.len() > self.stats_shard_capacity {
                let target = (self.stats_shard_capacity / 2).max(1);
                let surplus = shard.map.len() - target;
                // Deterministic victim selection (mirrors the engine
                // cache): never let HashMap iteration order decide which
                // entries survive, or identical runs diverge in what they
                // keep warm.
                // cocco-audit: allow(D1) victims are sorted before use, so map order never escapes
                let mut victims: Vec<NodeSetFp> = shard.map.keys().copied().collect();
                victims.sort_unstable();
                for victim in victims.iter().take(surplus) {
                    shard.map.remove(victim);
                }
            }
            shard.gen += 1;
            self.stats_evictions
                .fetch_add((before - shard.map.len()) as u64, Ordering::Relaxed);
        }
        Ok(stats)
    }

    fn compute_stats(&self, members: &[NodeId]) -> Result<SubgraphStats, SimError> {
        let graph = self.graph;
        let elem = self.config.elem_bytes;
        let scheme = derive_scheme(graph, members, &self.config.mapper)?;
        let fp = subgraph_footprint(graph, members, &scheme, elem);

        let mut member = vec![false; graph.len()];
        for &m in members {
            member[m.index()] = true;
        }

        let mut stats = SubgraphStats {
            act_footprint_bytes: fp.activation_bytes,
            wgt_footprint_bytes: fp.weight_bytes,
            regions: fp.regions,
            ..Default::default()
        };
        // Minimal weight residency: a lone layer streams weights one
        // output-channel slice (mac_cols wide) at a time.
        stats.wgt_resident_bytes = if members.len() == 1 {
            let m = members[0];
            let slice = match graph.node(m).op() {
                LayerOp::Conv { kernel, c_out } => {
                    let c_in = graph.in_shapes(m).first().map_or(0, |s| u64::from(s.c));
                    let per_out = kernel.size.area() * c_in * elem;
                    per_out * u64::from((*c_out).min(self.config.mac_cols))
                }
                _ => self.weight_bytes[m.index()],
            };
            slice.min(self.weight_bytes[m.index()])
        } else {
            fp.weight_bytes
        };

        // Members: weights, compute, model-input loads, boundary outputs.
        for &m in members {
            let i = m.index();
            stats.ema_wgt_bytes += self.weight_bytes[i];
            stats.macs += self.macs[i];
            stats.compute_cycles += self.cycles[i];
            if self.is_input[i] {
                stats.ema_in_bytes += self.out_bytes[i];
            }
            let consumers = graph.consumers(m);
            if consumers.is_empty() || consumers.iter().any(|c| !member[c.index()]) {
                stats.ema_out_bytes += self.out_bytes[i];
            }
        }

        // Boundary inputs: distinct producers outside the member set.
        let mut counted = vec![false; graph.len()];
        for &m in members {
            for &p in graph.producers(m) {
                if !member[p.index()] && !counted[p.index()] {
                    counted[p.index()] = true;
                    stats.ema_in_bytes += self.out_bytes[p.index()];
                }
            }
        }

        // On-chip traffic and multi-core halo, from the execution scheme.
        for (id, s) in scheme.iter() {
            // Every covered tensor streams through the global buffer once.
            stats.glb_access_bytes += self.out_bytes[id.index()];
            if s.interior_consumed {
                let shape = graph.node(id).out_shape();
                stats.halo_bytes_per_cut +=
                    u64::from(s.overlap_rows()) * u64::from(shape.w) * u64::from(shape.c) * elem;
            }
            // Weight-stationary tiling re-reads a layer's weights once per
            // tile of its own output.
            if member[id.index()] && self.weight_bytes[id.index()] > 0 {
                let shape = graph.node(id).out_shape();
                let tiles = u64::from(shape.h.div_ceil(s.delta.h.max(1)))
                    * u64::from(shape.w.div_ceil(s.delta.w.max(1)));
                stats.wgt_access_bytes +=
                    self.weight_bytes[id.index()].saturating_mul(tiles.max(1));
            }
        }
        for &v in members {
            let mut producers: Vec<NodeId> = graph.producers(v).to_vec();
            producers.sort_unstable();
            producers.dedup();
            for p in producers {
                let reuse = match graph.edge_req(p, v) {
                    EdgeReq::Sliding(k) => {
                        let rh = f64::from(k.size.h) / f64::from(k.stride.h.max(1));
                        let rw = f64::from(k.size.w) / f64::from(k.stride.w.max(1));
                        (rh * rw).max(1.0)
                    }
                    EdgeReq::Full => f64::from(graph.node(v).out_shape().h).max(1.0),
                };
                stats.glb_access_bytes += (self.out_bytes[p.index()] as f64 * reuse) as u64;
            }
        }
        Ok(stats)
    }

    /// Scores one subgraph under a buffer configuration — the pure
    /// per-subgraph term of the cost model.
    ///
    /// `next_wgt` is the weight footprint (in DRAM bytes) of the subgraph
    /// that executes next, prefetched during this subgraph's execution; it
    /// is the **only** cross-subgraph coupling of the model, made an
    /// explicit input so the term is a pure function of
    /// `(stats, next_wgt, buffer, options)` and can be memoized at subgraph
    /// granularity. Pass `0` for the last subgraph of a partition (or a
    /// standalone subgraph).
    pub fn eval_subgraph(
        &self,
        stats: &SubgraphStats,
        next_wgt: u64,
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> SubgraphReport {
        let cores = u64::from(options.cores());
        let batch = u64::from(options.batch());
        let energy = &self.config.energy;
        let (glb_cap, wgt_cap) = match buffer {
            BufferConfig::Separate { glb, wgt } => (*glb, *wgt),
            BufferConfig::Shared { total } => (*total, *total),
        };
        let e_glb = energy.sram_pj_per_byte(glb_cap);
        let e_wgt = energy.sram_pj_per_byte(wgt_cap);

        // Per-core weight shard (multi-core weight sharing); single
        // layers fall back to streamed weights.
        let wgt_per_core = stats.wgt_resident_bytes.div_ceil(cores);
        let fits = buffer.fits(stats.act_footprint_bytes, wgt_per_core)
            && stats.regions <= self.config.max_regions;

        // DRAM traffic: weights once per subgraph (batch reuse);
        // activations per sample; halo re-fetch per extra core.
        let halo = stats.halo_bytes_per_cut * (cores - 1) * batch;
        let ema = stats.ema_wgt_bytes + stats.ema_act_bytes() * batch + halo;

        // Energy. With weights sharded 1/n per core and rotated
        // (Tangram-BSD style), (n−1)/n of every weight-buffer read
        // crosses the interconnect.
        let crossbar_bytes = if cores > 1 {
            stats.wgt_access_bytes * batch * (cores - 1) / cores
        } else {
            0
        };
        let energy_pj = ema as f64 * energy.dram_pj_per_byte
            + (stats.glb_access_bytes * batch) as f64 * e_glb
            + (stats.wgt_access_bytes * batch) as f64 * e_wgt
            + (stats.macs * batch) as f64 * energy.mac_pj
            + crossbar_bytes as f64 * energy.crossbar_pj_per_byte;

        // Latency: compute parallelized over cores; DRAM over the
        // aggregate per-core links.
        let compute = stats.compute_cycles * batch as f64 / cores as f64;
        let dram = ema as f64 / (self.config.dram_bytes_per_cycle() * cores as f64);
        let latency = compute.max(dram).max(1.0);

        // Bandwidth requirement: prefetch of the next subgraph's
        // weights plus this subgraph's boundary activations.
        let bw_bytes_per_cycle = (next_wgt + stats.ema_act_bytes() * batch + halo) as f64 / latency;

        SubgraphReport {
            index: 0,
            stats: *stats,
            ema_bytes: ema,
            energy_pj,
            latency_cycles: latency,
            bw_bytes_per_cycle,
            fits,
        }
    }

    /// Evaluates an ordered partition under a buffer configuration.
    ///
    /// Each subgraph is scored by [`eval_subgraph`](Self::eval_subgraph)
    /// (its `next_wgt` input taken from the successor's statistics) and the
    /// terms are rolled up with [`PartitionReport::from_parts`] — the same
    /// composition the incremental evaluation path performs from cached
    /// terms, so both paths are bit-identical by construction.
    ///
    /// Subgraphs whose footprints exceed the buffers (or whose region count
    /// exceeds the region manager) are flagged in
    /// [`PartitionReport::oversized`]; the report's cost functions then
    /// return infinity so optimizers reject or repair the genome.
    ///
    /// # Errors
    ///
    /// Returns an error for structurally invalid inputs (empty subgraphs,
    /// duplicate nodes, unknown ids) — conditions a well-formed search
    /// never produces. Zero cores/batch cannot reach this function:
    /// [`EvalOptions`] validates them at construction.
    pub fn eval_partition(
        &self,
        subgraphs: &[Vec<NodeId>],
        buffer: &BufferConfig,
        options: EvalOptions,
    ) -> Result<PartitionReport, SimError> {
        if subgraphs.is_empty() {
            return Err(SimError::EmptySubgraph { index: 0 });
        }
        let mut all_stats = Vec::with_capacity(subgraphs.len());
        for (index, members) in subgraphs.iter().enumerate() {
            if members.is_empty() {
                return Err(SimError::EmptySubgraph { index });
            }
            all_stats.push(self.subgraph_stats(members)?);
        }
        let parts: Vec<SubgraphReport> = all_stats
            .iter()
            .enumerate()
            .map(|(index, stats)| {
                let next_wgt = all_stats.get(index + 1).map_or(0, |s| s.ema_wgt_bytes);
                self.eval_subgraph(stats, next_wgt, buffer, options)
            })
            .collect();
        Ok(PartitionReport::from_parts(
            parts,
            *buffer,
            self.config.freq_ghz,
        ))
    }

    /// Batch scorer over a flat partition layout: `members` is one
    /// contiguous buffer of node ids and `offsets` delimits subgraph `i`
    /// as `members[offsets[i]..offsets[i + 1]]` (execution order, members
    /// ascending within each subgraph). Per-subgraph terms are written
    /// column-wise into `out`, which is cleared first and whose capacity
    /// is reused across calls — a warmed caller refills it without heap
    /// allocation.
    ///
    /// The scoring pipeline is exactly
    /// [`eval_partition`](Self::eval_partition)'s — a statistics pass,
    /// then an [`eval_subgraph`](Self::eval_subgraph) pass chaining each
    /// successor's weight prefetch — so
    /// [`PartitionReport::from_columns`] over `out` is bit-identical to
    /// the nested path.
    ///
    /// # Errors
    ///
    /// Returns an error for structurally invalid inputs (no subgraphs,
    /// empty subgraphs, duplicate nodes, unknown ids), like
    /// [`eval_partition`](Self::eval_partition).
    pub fn eval_subgraph_batch(
        &self,
        members: &[NodeId],
        offsets: &[u32],
        buffer: &BufferConfig,
        options: EvalOptions,
        out: &mut SubgraphColumns,
    ) -> Result<(), SimError> {
        out.clear();
        let count = offsets.len().saturating_sub(1);
        if count == 0 {
            return Err(SimError::EmptySubgraph { index: 0 });
        }
        out.reserve(count);
        for index in 0..count {
            let sub = &members[offsets[index] as usize..offsets[index + 1] as usize];
            if sub.is_empty() {
                return Err(SimError::EmptySubgraph { index });
            }
            out.stats.push(self.subgraph_stats(sub)?);
        }
        for index in 0..count {
            let next_wgt = out.stats.get(index + 1).map_or(0, |s| s.ema_wgt_bytes);
            let part = self.eval_subgraph(&out.stats[index], next_wgt, buffer, options);
            out.ema_bytes.push(part.ema_bytes);
            out.energy_pj.push(part.energy_pj);
            out.latency_cycles.push(part.latency_cycles);
            out.bw_bytes_per_cycle.push(part.bw_bytes_per_cycle);
            out.fits.push(part.fits);
        }
        Ok(())
    }
}

/// PE-array utilization of one layer on the configured core.
///
/// Input channels map to the per-PE MAC rows, output channels to the MAC
/// columns and spatial positions to the PE array; depth-wise layers cannot
/// exploit the input-channel lanes (the classic reason separable
/// convolutions run at low utilization on dense arrays).
fn utilization(graph: &Graph, id: NodeId, config: &AcceleratorConfig) -> f64 {
    let node = graph.node(id);
    let out = node.out_shape();
    let lanes_in = u64::from(config.mac_rows);
    let lanes_out = u64::from(config.mac_cols);
    let pes = u64::from(config.pe_rows) * u64::from(config.pe_cols);
    let eff = |n: u64, k: u64| -> f64 {
        if n == 0 {
            1.0
        } else {
            n as f64 / (n.div_ceil(k) * k) as f64
        }
    };
    let spatial = u64::from(out.h) * u64::from(out.w);
    match node.op() {
        LayerOp::Input | LayerOp::Concat => 1.0,
        LayerOp::Conv { c_out, .. } => {
            let c_in = graph.in_shapes(id).first().map_or(1, |s| u64::from(s.c));
            eff(c_in, lanes_in) * eff(u64::from(*c_out), lanes_out) * eff(spatial, pes)
        }
        LayerOp::DepthwiseConv { .. }
        | LayerOp::Pool { .. }
        | LayerOp::GlobalPool
        | LayerOp::Eltwise => {
            // One input channel per output: the input-channel lanes idle.
            (1.0 / lanes_in as f64) * eff(u64::from(out.c), lanes_out) * eff(spatial, pes)
        }
        LayerOp::MatMul { rhs_transposed } => {
            let shapes = graph.in_shapes(id);
            let k = shapes.first().map_or(1, |s| u64::from(s.c));
            let n = shapes.get(1).map_or(1, |s| {
                if *rhs_transposed {
                    u64::from(s.h)
                } else {
                    u64::from(s.c)
                }
            });
            let m = u64::from(out.h);
            eff(k, lanes_in) * eff(n, lanes_out) * eff(m, pes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostMetric;

    fn per_layer(g: &Graph) -> Vec<Vec<NodeId>> {
        g.node_ids().map(|id| vec![id]).collect()
    }

    fn whole(g: &Graph) -> Vec<Vec<NodeId>> {
        vec![g.node_ids().collect()]
    }

    #[test]
    fn fusion_reduces_ema() {
        let g = cocco_graph::models::chain(6);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buf = BufferConfig::shared(4 << 20);
        let split = eval
            .eval_partition(&per_layer(&g), &buf, EvalOptions::default())
            .unwrap();
        let fused = eval
            .eval_partition(&whole(&g), &buf, EvalOptions::default())
            .unwrap();
        assert!(fused.ema_bytes < split.ema_bytes);
        // Both must still move at least weights + model input + output.
        let floor = g.total_weight_elements()
            + g.out_elements(g.input_ids()[0])
            + g.out_elements(g.output_ids()[0]);
        assert!(fused.ema_bytes >= floor);
        assert_eq!(fused.ema_bytes, floor);
    }

    #[test]
    fn ema_floor_for_single_subgraph() {
        // EMA of the whole-graph subgraph = weights + inputs + outputs.
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let stats = eval
            .subgraph_stats(&g.node_ids().collect::<Vec<_>>())
            .unwrap();
        assert_eq!(stats.ema_wgt_bytes, g.total_weight_elements());
        assert_eq!(stats.ema_in_bytes, g.out_elements(g.input_ids()[0]));
        assert_eq!(stats.ema_out_bytes, g.out_elements(g.output_ids()[0]));
    }

    #[test]
    fn multi_consumer_tensor_counted_once() {
        // diamond: node a feeds both branches; splitting after a must load
        // a's tensor once per consuming subgraph, not per consumer edge.
        let g = cocco_graph::models::diamond();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        // Subgraph {l, r, add}: a is a single boundary input.
        let stats = eval.subgraph_stats(&ids[2..=4]).unwrap();
        assert_eq!(stats.ema_in_bytes, g.out_elements(ids[1]));
    }

    #[test]
    fn cache_hits_are_stable() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let members: Vec<NodeId> = g.node_ids().collect();
        let a = eval.subgraph_stats(&members).unwrap();
        let b = eval.subgraph_stats(&members).unwrap();
        assert_eq!(a, b);
        assert_eq!(eval.cached_subgraphs(), 1);
        // Different order, same set: still one cache entry.
        let mut rev = members.clone();
        rev.reverse();
        let c = eval.subgraph_stats(&rev).unwrap();
        assert_eq!(a, c);
        assert_eq!(eval.cached_subgraphs(), 1);
    }

    #[test]
    fn stats_cache_is_bounded_and_exact() {
        let g = cocco_graph::models::googlenet();
        let bounded = Evaluator::new(&g, AcceleratorConfig::default()).with_stats_capacity(64);
        let unbounded = Evaluator::new(&g, AcceleratorConfig::default());
        let ids: Vec<NodeId> = g.node_ids().collect();
        // Flood with many distinct member sets (singletons, pairs,
        // triples), then re-probe: entries stay bounded, sweeps are
        // counted, and every answer matches the unbounded evaluator's.
        for pass in 0..2 {
            for window in [1usize, 2, 3] {
                for chunk in ids.chunks(window) {
                    if !g.is_connected_subset(chunk) {
                        continue;
                    }
                    let a = bounded.subgraph_stats(chunk).unwrap();
                    let b = unbounded.subgraph_stats(chunk).unwrap();
                    assert_eq!(a, b, "pass {pass}: eviction changed statistics");
                }
            }
        }
        assert!(
            bounded.cached_subgraphs() <= 64,
            "stats cache exceeded its budget: {}",
            bounded.cached_subgraphs()
        );
        assert!(
            bounded.stats_cache_evictions() > 0,
            "the tiny budget must have swept"
        );
        assert!(bounded.stats_cache_hits() > 0 || bounded.stats_cache_misses() > 0);
        // A hot entry touched between sweeps survives them.
        let hot: Vec<NodeId> = ids[..2].to_vec();
        bounded.subgraph_stats(&hot).unwrap();
        let miss_before = bounded.stats_cache_misses();
        for chunk in ids.chunks(1) {
            bounded.subgraph_stats(&hot).unwrap();
            bounded.subgraph_stats(chunk).unwrap();
        }
        let hot_probe_misses = bounded.stats_cache_misses() - miss_before;
        // The hot set itself never misses again (all new misses come from
        // the singleton flood).
        assert!(
            hot_probe_misses <= ids.len() as u64,
            "hot entry was evicted between touches"
        );
    }

    #[test]
    fn serial_probes_never_wait_on_shard_locks() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let members: Vec<NodeId> = g.node_ids().collect();
        for _ in 0..100 {
            eval.subgraph_stats(&members).unwrap();
        }
        // A single thread can never find a shard lock held: the counter is
        // a pure contention tripwire, not a code-path counter.
        assert_eq!(eval.stats_lock_waits(), 0);
        assert_eq!(eval.stats_cache_hits(), 99);
    }

    #[test]
    fn oversized_subgraphs_flagged() {
        let g = cocco_graph::models::chain(5);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let tiny = BufferConfig::shared(256); // far too small
        let report = eval
            .eval_partition(&whole(&g), &tiny, EvalOptions::default())
            .unwrap();
        assert!(!report.fits);
        assert_eq!(report.oversized, vec![0]);
        assert!(report.cost_formula1(CostMetric::Ema).is_infinite());
    }

    #[test]
    fn batch_amortizes_weight_loads() {
        let g = cocco_graph::models::chain(4);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buf = BufferConfig::shared(4 << 20);
        let b1 = eval
            .eval_partition(&whole(&g), &buf, EvalOptions::with_batch(1))
            .unwrap();
        let b8 = eval
            .eval_partition(&whole(&g), &buf, EvalOptions::with_batch(8))
            .unwrap();
        // Weights load once: EMA grows sub-linearly with batch.
        assert!(b8.ema_bytes < 8 * b1.ema_bytes);
        assert!(b8.ema_bytes > b1.ema_bytes);
        // Latency also sub-linear (weight transfer amortized).
        assert!(b8.latency_cycles <= 8.0 * b1.latency_cycles);
    }

    #[test]
    fn multicore_speeds_up_but_costs_energy() {
        let g = cocco_graph::models::resnet50();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buf = BufferConfig::shared(4 << 20);
        let parts = depth_pairs(&g);
        let c1 = eval
            .eval_partition(&parts, &buf, EvalOptions::with_cores(1))
            .unwrap();
        let c2 = eval
            .eval_partition(&parts, &buf, EvalOptions::with_cores(2))
            .unwrap();
        assert!(c2.latency_cycles < c1.latency_cycles);
        assert!(
            c2.energy_pj > c1.energy_pj,
            "crossbar rotation costs energy"
        );
    }

    /// Groups consecutive node pairs — a quick valid-ish partition helper
    /// for tests (chains of the topo order).
    fn depth_pairs(g: &Graph) -> Vec<Vec<NodeId>> {
        let ids: Vec<NodeId> = g.node_ids().collect();
        ids.chunks(2).map(|c| c.to_vec()).collect()
    }

    #[test]
    fn depthwise_utilization_is_low() {
        let g = cocco_graph::models::nasnet();
        let config = AcceleratorConfig::default();
        let dw = g
            .iter()
            .find(|(_, n)| matches!(n.op(), LayerOp::DepthwiseConv { .. }))
            .unwrap()
            .0;
        let conv = g
            .iter()
            .find(|(id, n)| {
                matches!(n.op(), LayerOp::Conv { c_out, .. } if *c_out >= 64)
                    && g.in_shapes(*id).first().is_some_and(|s| s.c >= 64)
            })
            .unwrap()
            .0;
        assert!(utilization(&g, dw, &config) < 0.2);
        assert!(utilization(&g, conv, &config) > 0.5);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = cocco_graph::models::chain(2);
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buf = BufferConfig::shared(1 << 20);
        // Zero cores/batch are unrepresentable: construction rejects them.
        assert_eq!(EvalOptions::new(0, 1), Err(SimError::InvalidOptions));
        let err = eval
            .eval_partition(&[], &buf, EvalOptions::default())
            .unwrap_err();
        assert!(matches!(err, SimError::EmptySubgraph { .. }));
    }

    #[test]
    fn stats_derivation_latency_records_misses_only() {
        let g = cocco_graph::models::chain(4);
        let telemetry = Telemetry::enabled();
        let eval = Evaluator::new(&g, AcceleratorConfig::default()).with_telemetry(&telemetry);
        let members: Vec<NodeId> = g.node_ids().collect();
        let stats = eval.subgraph_stats(&members).unwrap();
        let snap = telemetry.snapshot();
        let hist = snap.histogram("sim.subgraph_stats_ns").expect("registered");
        assert_eq!(hist.count, 1, "one derivation, one sample");
        // Cached probes add no samples — and derive identical statistics
        // to an uninstrumented evaluator.
        for _ in 0..10 {
            assert_eq!(eval.subgraph_stats(&members).unwrap(), stats);
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.histogram("sim.subgraph_stats_ns").unwrap().count, 1);
        let plain = Evaluator::new(&g, AcceleratorConfig::default());
        assert_eq!(plain.subgraph_stats(&members).unwrap(), stats);
    }

    #[test]
    fn bandwidth_is_positive_and_peak_bounds_avg() {
        let g = cocco_graph::models::googlenet();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buf = BufferConfig::shared(8 << 20);
        let parts = depth_pairs(&g);
        let r = eval
            .eval_partition(&parts, &buf, EvalOptions::default())
            .unwrap();
        assert!(r.avg_bw_gbps > 0.0);
        assert!(r.peak_bw_gbps >= r.avg_bw_gbps * 0.99);
    }

    /// Flattens nested subgraphs into the (members, offsets) layout the
    /// batch scorer consumes.
    fn flatten(subgraphs: &[Vec<NodeId>]) -> (Vec<NodeId>, Vec<u32>) {
        let mut members = Vec::new();
        let mut offsets = vec![0u32];
        for sub in subgraphs {
            members.extend_from_slice(sub);
            offsets.push(members.len() as u32);
        }
        (members, offsets)
    }

    #[test]
    fn batch_scorer_is_bit_identical_to_eval_partition() {
        for g in [
            cocco_graph::models::googlenet(),
            cocco_graph::models::resnet50(),
        ] {
            let eval = Evaluator::new(&g, AcceleratorConfig::default());
            let buf = BufferConfig::shared(2 << 20);
            for options in [EvalOptions::default(), EvalOptions::with_cores(2)] {
                let parts = depth_pairs(&g);
                let nested = eval.eval_partition(&parts, &buf, options).unwrap();
                let (members, offsets) = flatten(&parts);
                let mut columns = SubgraphColumns::new();
                eval.eval_subgraph_batch(&members, &offsets, &buf, options, &mut columns)
                    .unwrap();
                let flat = PartitionReport::from_columns(&columns, buf, eval.config().freq_ghz);
                assert_eq!(nested, flat, "SoA roll-up must be bit-identical");
                // Warmed reuse: clearing keeps capacity, refilling keeps
                // the result.
                let before = columns.bytes();
                eval.eval_subgraph_batch(&members, &offsets, &buf, options, &mut columns)
                    .unwrap();
                assert_eq!(columns.bytes(), before, "reuse must not grow columns");
                assert_eq!(
                    PartitionReport::from_columns(&columns, buf, eval.config().freq_ghz),
                    flat
                );
            }
        }
    }

    #[test]
    fn batch_scorer_rejects_empty_layouts() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let buf = BufferConfig::shared(1 << 20);
        let mut columns = SubgraphColumns::new();
        let err = eval
            .eval_subgraph_batch(&[], &[0], &buf, EvalOptions::default(), &mut columns)
            .unwrap_err();
        assert!(matches!(err, SimError::EmptySubgraph { index: 0 }));
        let ids: Vec<NodeId> = g.node_ids().collect();
        let err = eval
            .eval_subgraph_batch(
                &ids,
                &[0, 2, 2, ids.len() as u32],
                &buf,
                EvalOptions::default(),
                &mut columns,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::EmptySubgraph { index: 1 }));
    }

    #[test]
    fn canonicalize_fallback_is_counted_and_avoided_when_sorted() {
        let g = cocco_graph::models::diamond();
        let eval = Evaluator::new(&g, AcceleratorConfig::default());
        let members: Vec<NodeId> = g.node_ids().collect();
        // Sorted misses never take the fallback.
        eval.subgraph_stats(&members).unwrap();
        assert_eq!(eval.stats_canonicalize_fallbacks(), 0);
        // An out-of-order *miss* takes the counted slow path and derives
        // the same statistics.
        let sub: Vec<NodeId> = members[2..=4].to_vec();
        let mut rev = sub.clone();
        rev.reverse();
        let a = eval.subgraph_stats(&rev).unwrap();
        assert_eq!(eval.stats_canonicalize_fallbacks(), 1);
        assert_eq!(a, eval.subgraph_stats(&sub).unwrap());
        // The re-probe above was a hit: no second fallback.
        assert_eq!(eval.stats_canonicalize_fallbacks(), 1);
    }
}
