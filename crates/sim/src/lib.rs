//! SIMBA-like NPU cost model for the Cocco framework (paper §5.1.2).
//!
//! The accelerator is one NPU core with a 4×4 PE array of 8×8 MAC units at
//! 1 GHz (≈2 TOPS), a global (activation) buffer and a weight buffer —
//! either separate or shared — and a 16 GB/s DRAM link. Subgraphs execute
//! one at a time under the consumption-centric scheme; weights of the next
//! subgraph are prefetched during the current computation. Multi-core
//! configurations share subgraph weights across cores over a crossbar
//! (Tangram-BSD / NN-Baton style rotation), and batches reuse resident
//! weights across samples.
//!
//! The central type is [`Evaluator`]: it turns an ordered partition (a list
//! of member sets) into a [`PartitionReport`] with external memory access
//! (EMA), energy, latency and bandwidth figures, caching per-subgraph
//! statistics so design-space exploration can evaluate 10⁵+ candidate
//! partitions per second.
//!
//! # Examples
//!
//! ```
//! use cocco_sim::{AcceleratorConfig, BufferConfig, Evaluator};
//!
//! let graph = cocco_graph::models::diamond();
//! let eval = Evaluator::new(&graph, AcceleratorConfig::default());
//! // One subgraph containing the whole model:
//! let subgraphs = vec![graph.node_ids().collect::<Vec<_>>()];
//! let report = eval
//!     .eval_partition(&subgraphs, &BufferConfig::shared(1 << 20), Default::default())
//!     .unwrap();
//! assert!(report.ema_bytes > 0);
//! ```

mod columns;
mod config;
mod cost;
mod energy;
mod error;
mod evaluator;
mod report;

pub use columns::SubgraphColumns;
pub use config::{AcceleratorConfig, BufferConfig, CapacityRange, EvalOptions};
pub use cost::{CostMetric, SubgraphStats};
pub use energy::EnergyModel;
pub use error::SimError;
pub use evaluator::Evaluator;
pub use report::{PartitionReport, SubgraphReport};
