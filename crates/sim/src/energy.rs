//! Energy model constants (paper §5.1.2 and DESIGN.md §4).
//!
//! The paper extracts arithmetic and memory energy from a synthesized 12 nm
//! library; we substitute documented analytical constants. Every search
//! method is scored by the same model, so relative orderings — the result
//! shapes the paper reports — do not depend on the absolute values.

use serde::{Deserialize, Serialize};

/// Energy constants in picojoules.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// DRAM access energy per byte. The paper sets 12.5 pJ/bit = 100 pJ/B.
    pub dram_pj_per_byte: f64,
    /// Energy of one 8-bit MAC (≈0.3 pJ in a 12 nm-class library).
    pub mac_pj: f64,
    /// SRAM access energy offset per byte (small-array floor).
    pub sram_base_pj_per_byte: f64,
    /// SRAM access energy slope per byte per √MB: larger arrays burn more
    /// energy per access (the paper: a large SRAM access costs dozens of
    /// MAC operations).
    pub sram_slope_pj_per_byte: f64,
    /// Crossbar energy per byte for inter-core weight rotation: an
    /// Arteris-IP-class interconnect traversal including link serialization
    /// (≈0.4 pJ/bit across a multi-core die).
    pub crossbar_pj_per_byte: f64,
}

impl EnergyModel {
    /// Per-byte access energy of an SRAM of `capacity` bytes:
    /// `base + slope·√(capacity/1 MB)`.
    ///
    /// # Examples
    ///
    /// ```
    /// let e = cocco_sim::EnergyModel::default();
    /// // A 4 MB buffer costs roughly 2x more per access than a 1 MB one.
    /// assert!(e.sram_pj_per_byte(4 << 20) > 1.5 * e.sram_pj_per_byte(1 << 20));
    /// ```
    pub fn sram_pj_per_byte(&self, capacity: u64) -> f64 {
        let mb = capacity as f64 / (1u64 << 20) as f64;
        self.sram_base_pj_per_byte + self.sram_slope_pj_per_byte * mb.sqrt()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            dram_pj_per_byte: 100.0,
            mac_pj: 0.3,
            sram_base_pj_per_byte: 0.15,
            sram_slope_pj_per_byte: 0.40,
            crossbar_pj_per_byte: 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_matches_paper_constant() {
        // 12.5 pJ/bit × 8 = 100 pJ/B.
        assert_eq!(EnergyModel::default().dram_pj_per_byte, 100.0);
    }

    #[test]
    fn sram_energy_grows_with_capacity() {
        let e = EnergyModel::default();
        let small = e.sram_pj_per_byte(128 << 10);
        let large = e.sram_pj_per_byte(8 << 20);
        assert!(small < large);
        // Large SRAM word access ≈ dozens of MACs: an 8-byte word from an
        // 8 MB array should cost more than 20 MAC operations.
        assert!(8.0 * large > 20.0 * e.mac_pj);
    }

    #[test]
    fn dram_dominates_sram() {
        let e = EnergyModel::default();
        assert!(e.dram_pj_per_byte > 20.0 * e.sram_pj_per_byte(1 << 20));
    }
}
