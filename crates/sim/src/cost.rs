//! Per-subgraph statistics and cost metrics.

use serde::{Deserialize, Serialize};

/// Which metric `M` the cost function `Cost_M` optimizes (paper §4.1.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostMetric {
    /// External memory access bytes (the `EMA-opt` configuration).
    Ema,
    /// Energy in picojoules (the `energy-capacity` configuration).
    Energy,
}

/// Buffer-configuration-independent statistics of one subgraph, evaluated
/// once and cached by the [`Evaluator`](crate::Evaluator).
///
/// EMA decomposes exactly as the paper describes: weight loads, boundary
/// input-activation loads and boundary output-activation stores; everything
/// internal to the subgraph is fully reused on-chip and never recomputed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SubgraphStats {
    /// DRAM bytes: weights of every member layer.
    pub ema_wgt_bytes: u64,
    /// DRAM bytes: input activations crossing into the subgraph (tensors
    /// produced by earlier subgraphs, plus model inputs).
    pub ema_in_bytes: u64,
    /// DRAM bytes: output activations needed by later subgraphs or as model
    /// outputs.
    pub ema_out_bytes: u64,
    /// Total MAC (compute-equivalent) operations.
    pub macs: u64,
    /// Global-buffer traffic in bytes (tile writes plus window reads).
    pub glb_access_bytes: u64,
    /// Weight-buffer traffic in bytes: each layer's weights are re-read
    /// once per tile of its output (weight-stationary across one tile).
    pub wgt_access_bytes: u64,
    /// Activation footprint in the global buffer (MAIN + SIDE regions).
    pub act_footprint_bytes: u64,
    /// Weight footprint in the weight buffer.
    pub wgt_footprint_bytes: u64,
    /// Minimal weight residency: multi-layer subgraphs must keep all
    /// weights resident (the elementary operations sweep every layer), but
    /// a single-layer subgraph can stream its weights one output-channel
    /// slice at a time — the layer-level fallback that lets an FC layer
    /// larger than the weight buffer still execute (e.g. ResNet50's
    /// classifier against the paper's 1.125 MB weight buffer).
    pub wgt_resident_bytes: u64,
    /// Logical regions required of the buffer-region manager.
    pub regions: usize,
    /// Compute cycles at the core's effective utilization.
    pub compute_cycles: f64,
    /// Halo bytes re-fetched per extra core when the subgraph is split
    /// spatially across cores (multi-core overhead input).
    pub halo_bytes_per_cut: u64,
}

impl SubgraphStats {
    /// Total DRAM traffic of this subgraph at batch 1.
    pub fn ema_bytes(&self) -> u64 {
        self.ema_wgt_bytes + self.ema_in_bytes + self.ema_out_bytes
    }

    /// Activation-only DRAM traffic.
    pub fn ema_act_bytes(&self) -> u64 {
        self.ema_in_bytes + self.ema_out_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_sums_components() {
        let s = SubgraphStats {
            ema_wgt_bytes: 10,
            ema_in_bytes: 20,
            ema_out_bytes: 30,
            ..Default::default()
        };
        assert_eq!(s.ema_bytes(), 60);
        assert_eq!(s.ema_act_bytes(), 50);
    }
}
