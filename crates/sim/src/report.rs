//! Whole-partition evaluation reports.

use crate::columns::SubgraphColumns;
use crate::config::BufferConfig;
use crate::cost::{CostMetric, SubgraphStats};
use serde::{Deserialize, Serialize};

/// Evaluation result of one subgraph within a partition.
///
/// Produced by [`Evaluator::eval_subgraph`](crate::Evaluator::eval_subgraph)
/// — a pure function of the subgraph's statistics, the successor's weight
/// prefetch (`next_wgt`), the buffer configuration and the evaluation
/// options — so per-subgraph terms are individually cacheable and a whole
/// partition composes with [`PartitionReport::from_parts`].
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubgraphReport {
    /// Index of the subgraph in execution order (assigned by the roll-up).
    pub index: usize,
    /// The cached raw statistics.
    pub stats: SubgraphStats,
    /// DRAM traffic of this subgraph in bytes under the evaluated options
    /// (weights once, activations per sample, halo per extra core).
    pub ema_bytes: u64,
    /// Energy in picojoules under the evaluated buffer configuration.
    pub energy_pj: f64,
    /// Latency in core cycles (max of compute and DRAM transfer, with the
    /// next subgraph's weights prefetched during compute).
    pub latency_cycles: f64,
    /// Bandwidth requirement in bytes/cycle while this subgraph runs
    /// (next-subgraph weight prefetch + boundary activations).
    pub bw_bytes_per_cycle: f64,
    /// Whether the subgraph's footprints fit the buffer configuration.
    pub fits: bool,
}

/// Evaluation result of a whole ordered partition (paper Formulas 1 and 2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionReport {
    /// Total DRAM traffic in bytes.
    pub ema_bytes: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Total latency in core cycles.
    pub latency_cycles: f64,
    /// Average bandwidth requirement in GB/s (total DRAM bytes over total
    /// execution time).
    pub avg_bw_gbps: f64,
    /// Peak per-subgraph bandwidth requirement in GB/s.
    pub peak_bw_gbps: f64,
    /// Whether every subgraph fits the buffer configuration.
    pub fits: bool,
    /// Indices of subgraphs that do not fit (for in-situ repair).
    pub oversized: Vec<usize>,
    /// Per-subgraph breakdown in execution order.
    pub per_subgraph: Vec<SubgraphReport>,
    /// The buffer configuration this report was evaluated under.
    pub buffer: BufferConfig,
}

impl PartitionReport {
    /// Composes a whole-partition report from per-subgraph parts in
    /// execution order — the associative roll-up of the incremental
    /// evaluation path.
    ///
    /// The only cross-subgraph coupling of the cost model is the
    /// successor's weight prefetch, and it is already folded into each
    /// part's `bw_bytes_per_cycle` by
    /// [`Evaluator::eval_subgraph`](crate::Evaluator::eval_subgraph); the
    /// roll-up is therefore a plain in-order fold (sums, `max`, `all`),
    /// bit-identical to evaluating the partition in one pass.
    pub fn from_parts(mut parts: Vec<SubgraphReport>, buffer: BufferConfig, freq_ghz: f64) -> Self {
        let mut report = PartitionReport {
            ema_bytes: 0,
            energy_pj: 0.0,
            latency_cycles: 0.0,
            avg_bw_gbps: 0.0,
            peak_bw_gbps: 0.0,
            fits: true,
            oversized: Vec::new(),
            per_subgraph: Vec::new(),
            buffer,
        };
        for (index, part) in parts.iter_mut().enumerate() {
            part.index = index;
            if !part.fits {
                report.fits = false;
                report.oversized.push(index);
            }
            report.ema_bytes += part.ema_bytes;
            report.energy_pj += part.energy_pj;
            report.latency_cycles += part.latency_cycles;
            report.peak_bw_gbps = report.peak_bw_gbps.max(part.bw_bytes_per_cycle * freq_ghz);
        }
        report.avg_bw_gbps = report.ema_bytes as f64 / report.latency_cycles * freq_ghz;
        report.per_subgraph = parts;
        report
    }

    /// Composes a whole-partition report from struct-of-arrays columns
    /// (the batch-scoring output of
    /// [`Evaluator::eval_subgraph_batch`](crate::Evaluator::eval_subgraph_batch)).
    ///
    /// Each column folds in index order, exactly the order
    /// [`from_parts`](Self::from_parts) visits rows — the `f64` summation
    /// order is unchanged, only the traversal is column-major over
    /// contiguous buffers — so the two roll-ups are bit-identical.
    pub fn from_columns(columns: &SubgraphColumns, buffer: BufferConfig, freq_ghz: f64) -> Self {
        let mut ema_bytes = 0u64;
        for &bytes in &columns.ema_bytes {
            ema_bytes += bytes;
        }
        let mut energy_pj = 0.0f64;
        for &pj in &columns.energy_pj {
            energy_pj += pj;
        }
        let mut latency_cycles = 0.0f64;
        for &cycles in &columns.latency_cycles {
            latency_cycles += cycles;
        }
        let mut peak_bw_gbps = 0.0f64;
        for &bw in &columns.bw_bytes_per_cycle {
            peak_bw_gbps = peak_bw_gbps.max(bw * freq_ghz);
        }
        let mut fits = true;
        let mut oversized = Vec::new();
        for (index, &fit) in columns.fits.iter().enumerate() {
            if !fit {
                fits = false;
                oversized.push(index);
            }
        }
        PartitionReport {
            ema_bytes,
            energy_pj,
            latency_cycles,
            avg_bw_gbps: ema_bytes as f64 / latency_cycles * freq_ghz,
            peak_bw_gbps,
            fits,
            oversized,
            per_subgraph: (0..columns.len()).map(|i| columns.report(i)).collect(),
            buffer,
        }
    }

    /// The metric value used by the cost functions.
    pub fn metric(&self, metric: CostMetric) -> f64 {
        match metric {
            CostMetric::Ema => self.ema_bytes as f64,
            CostMetric::Energy => self.energy_pj,
        }
    }

    /// Formula 1: the mapping-only cost `Σ_i Cost_M(subgraph_i)`.
    ///
    /// Returns infinity when the partition does not fit, so optimizers
    /// without a repair step reject it.
    pub fn cost_formula1(&self, metric: CostMetric) -> f64 {
        if self.fits {
            self.metric(metric)
        } else {
            f64::INFINITY
        }
    }

    /// Formula 2: the co-exploration cost `BUF_SIZE + α·Σ_i Cost_M`.
    pub fn cost_formula2(&self, metric: CostMetric, alpha: f64) -> f64 {
        if self.fits {
            self.buffer.total_bytes() as f64 + alpha * self.metric(metric)
        } else {
            f64::INFINITY
        }
    }

    /// Total latency in milliseconds at the given clock.
    pub fn latency_ms(&self, freq_ghz: f64) -> f64 {
        self.latency_cycles / (freq_ghz * 1e6)
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_pj / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(fits: bool) -> PartitionReport {
        PartitionReport {
            ema_bytes: 1000,
            energy_pj: 5e6,
            latency_cycles: 2e6,
            avg_bw_gbps: 4.0,
            peak_bw_gbps: 9.0,
            fits,
            oversized: vec![],
            per_subgraph: vec![],
            buffer: BufferConfig::shared(1 << 20),
        }
    }

    #[test]
    fn formula1_uses_metric() {
        let r = report(true);
        assert_eq!(r.cost_formula1(CostMetric::Ema), 1000.0);
        assert_eq!(r.cost_formula1(CostMetric::Energy), 5e6);
    }

    #[test]
    fn formula2_adds_buffer_size() {
        let r = report(true);
        let cost = r.cost_formula2(CostMetric::Energy, 0.002);
        assert!((cost - ((1 << 20) as f64 + 0.002 * 5e6)).abs() < 1e-9);
    }

    #[test]
    fn unfit_partitions_cost_infinity() {
        let r = report(false);
        assert!(r.cost_formula1(CostMetric::Ema).is_infinite());
        assert!(r.cost_formula2(CostMetric::Ema, 1.0).is_infinite());
    }

    #[test]
    fn unit_conversions() {
        let r = report(true);
        assert!((r.latency_ms(1.0) - 2.0).abs() < 1e-12);
        assert!((r.energy_mj() - 5e-3).abs() < 1e-15);
    }
}
