//! Errors raised by the evaluator.

use cocco_tiling::TilingError;
use std::error::Error;
use std::fmt;

/// Error raised while evaluating a partition.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The tiling flow failed for a subgraph (bad member set).
    Tiling(TilingError),
    /// A partition was empty or contained an empty subgraph.
    EmptySubgraph {
        /// Index of the offending subgraph.
        index: usize,
    },
    /// Invalid evaluation options (zero cores or batch).
    InvalidOptions,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Tiling(e) => write!(f, "tiling failed: {e}"),
            SimError::EmptySubgraph { index } => {
                write!(f, "subgraph {index} has no members")
            }
            SimError::InvalidOptions => write!(f, "cores and batch must be nonzero"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Tiling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TilingError> for SimError {
    fn from(e: TilingError) -> Self {
        SimError::Tiling(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tiling_errors() {
        let e: SimError = TilingError::EmptySubgraph.into();
        assert!(matches!(e, SimError::Tiling(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn display_is_lowercase() {
        assert!(SimError::InvalidOptions
            .to_string()
            .starts_with(char::is_lowercase));
    }
}
