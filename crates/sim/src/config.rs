//! Accelerator and buffer configuration types.

use crate::energy::EnergyModel;
use crate::error::SimError;
use cocco_tiling::Mapper;
use serde::{Deserialize, Serialize};

/// Static description of one NPU core (paper §5.1.2).
///
/// The default reproduces the paper's platform: a 4×4 PE array with an 8×8
/// MAC array per PE at 1 GHz (≈2 TOPS with 8-bit operands), 16 GB/s of DRAM
/// bandwidth per core, and the default consumption-centric mapper.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// PE array rows.
    pub pe_rows: u32,
    /// PE array columns.
    pub pe_cols: u32,
    /// MAC rows per PE (input-channel lanes).
    pub mac_rows: u32,
    /// MAC columns per PE (output-channel lanes).
    pub mac_cols: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// DRAM bandwidth per core in GB/s.
    pub dram_gbps: f64,
    /// Tensor element width in bytes (8-bit inference ⇒ 1).
    pub elem_bytes: u64,
    /// Maximum logical regions of the buffer-region manager (`N`).
    pub max_regions: usize,
    /// Stage-1 tile mapper.
    pub mapper: Mapper,
    /// Energy model constants.
    pub energy: EnergyModel,
}

impl AcceleratorConfig {
    /// Peak MACs per cycle (`pe_rows·pe_cols·mac_rows·mac_cols`).
    pub fn peak_macs_per_cycle(&self) -> u64 {
        u64::from(self.pe_rows)
            * u64::from(self.pe_cols)
            * u64::from(self.mac_rows)
            * u64::from(self.mac_cols)
    }

    /// Peak throughput in TOPS (2 ops per MAC).
    pub fn peak_tops(&self) -> f64 {
        2.0 * self.peak_macs_per_cycle() as f64 * self.freq_ghz / 1e3
    }

    /// DRAM bytes transferable per core clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_gbps / self.freq_ghz
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self {
            pe_rows: 4,
            pe_cols: 4,
            mac_rows: 8,
            mac_cols: 8,
            freq_ghz: 1.0,
            dram_gbps: 16.0,
            elem_bytes: 1,
            max_regions: 64,
            mapper: Mapper::default(),
            energy: EnergyModel::default(),
        }
    }
}

/// On-chip buffer organization under co-exploration (paper §5.3.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferConfig {
    /// Separate global (activation) and weight buffers.
    Separate {
        /// Global buffer bytes.
        glb: u64,
        /// Weight buffer bytes.
        wgt: u64,
    },
    /// One shared buffer holding activations and weights.
    Shared {
        /// Total buffer bytes.
        total: u64,
    },
}

impl BufferConfig {
    /// Separate-buffer configuration.
    pub fn separate(glb: u64, wgt: u64) -> Self {
        BufferConfig::Separate { glb, wgt }
    }

    /// Shared-buffer configuration.
    pub fn shared(total: u64) -> Self {
        BufferConfig::Shared { total }
    }

    /// Total on-chip capacity in bytes (the `BUF_SIZE` of Formula 2).
    pub fn total_bytes(&self) -> u64 {
        match self {
            BufferConfig::Separate { glb, wgt } => glb + wgt,
            BufferConfig::Shared { total } => *total,
        }
    }

    /// Checks whether a subgraph with the given activation and weight
    /// footprints fits.
    pub fn fits(&self, act_bytes: u64, wgt_bytes: u64) -> bool {
        match self {
            BufferConfig::Separate { glb, wgt } => act_bytes <= *glb && wgt_bytes <= *wgt,
            BufferConfig::Shared { total } => act_bytes + wgt_bytes <= *total,
        }
    }
}

/// An arithmetic grid of capacity candidates (paper §5.3: e.g. 128 KB to
/// 2048 KB with a 64 KB interval for the global buffer).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CapacityRange {
    /// Smallest candidate in bytes.
    pub min: u64,
    /// Largest candidate in bytes.
    pub max: u64,
    /// Grid step in bytes.
    pub step: u64,
}

impl CapacityRange {
    /// Creates a range; `min`, `max` and `step` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `min > max` — these are static
    /// experiment-configuration mistakes.
    pub fn new(min: u64, max: u64, step: u64) -> Self {
        assert!(step > 0, "capacity step must be nonzero");
        assert!(min <= max, "capacity range is inverted");
        Self { min, max, step }
    }

    /// The paper's global-buffer range: 128–2048 KB in 64 KB steps.
    pub fn paper_glb() -> Self {
        Self::new(128 << 10, 2048 << 10, 64 << 10)
    }

    /// The paper's weight-buffer range: 144–2304 KB in 72 KB steps.
    pub fn paper_wgt() -> Self {
        Self::new(144 << 10, 2304 << 10, 72 << 10)
    }

    /// The paper's shared-buffer range: 128–3072 KB in 64 KB steps.
    pub fn paper_shared() -> Self {
        Self::new(128 << 10, 3072 << 10, 64 << 10)
    }

    /// Number of candidates on the grid.
    pub fn len(&self) -> usize {
        ((self.max - self.min) / self.step + 1) as usize
    }

    /// `true` if the range holds no candidates (impossible by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th candidate (clamped to the last).
    pub fn candidate(&self, i: usize) -> u64 {
        (self.min + self.step * i as u64).min(self.max)
    }

    /// Iterates over all candidates, ascending.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = u64> + '_ {
        (0..self.len()).map(move |i| self.candidate(i))
    }

    /// Snaps `bytes` to the nearest grid candidate.
    pub fn snap(&self, bytes: u64) -> u64 {
        let clamped = bytes.clamp(self.min, self.max);
        let idx = (clamped - self.min + self.step / 2) / self.step;
        (self.min + idx * self.step).min(self.max)
    }
}

/// Evaluation options: core count and batch size (paper §5.4.2-§5.4.3).
///
/// Validated at construction — `cores >= 1` and `batch >= 1` are invariants
/// of every live value, so downstream code (the evaluator, the search
/// context) divides by them without defensive guards.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize)]
pub struct EvalOptions {
    cores: u32,
    batch: u32,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self { cores: 1, batch: 1 }
    }
}

impl EvalOptions {
    /// Creates options from untrusted input (e.g. CLI flags).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidOptions`] when `cores` or `batch` is
    /// zero.
    pub fn new(cores: u32, batch: u32) -> Result<Self, SimError> {
        if cores == 0 || batch == 0 {
            return Err(SimError::InvalidOptions);
        }
        Ok(Self { cores, batch })
    }

    /// Single-core options with the given batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero — use [`new`](EvalOptions::new) for
    /// untrusted input.
    pub fn with_batch(batch: u32) -> Self {
        // cocco-audit: allow(R1) documented panic; EvalOptions::new is the fallible path for untrusted input
        Self::new(1, batch).expect("batch must be nonzero")
    }

    /// Multi-core options with batch 1.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero — use [`new`](EvalOptions::new) for
    /// untrusted input.
    pub fn with_cores(cores: u32) -> Self {
        // cocco-audit: allow(R1) documented panic; EvalOptions::new is the fallible path for untrusted input
        Self::new(cores, 1).expect("cores must be nonzero")
    }

    /// Number of NPU cores sharing subgraph weights over the crossbar
    /// (always ≥ 1).
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Batch size processed per subgraph before moving on (always ≥ 1).
    pub fn batch(&self) -> u32 {
        self.batch
    }
}

// Deserialization re-validates, so a hand-edited JSON document cannot
// smuggle zero cores/batch past the constructor invariant.
impl serde::Deserialize for EvalOptions {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::mismatch("object", "EvalOptions", value))?;
        let cores = u32::from_value(serde::field(fields, "cores", "EvalOptions")?)?;
        let batch = u32::from_value(serde::field(fields, "batch", "EvalOptions")?)?;
        EvalOptions::new(cores, batch).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_platform_is_two_tops() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.peak_macs_per_cycle(), 1024);
        assert!((c.peak_tops() - 2.048).abs() < 1e-9);
        assert!((c.dram_bytes_per_cycle() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_fits_semantics() {
        let sep = BufferConfig::separate(100, 50);
        assert!(sep.fits(100, 50));
        assert!(!sep.fits(101, 1));
        assert!(!sep.fits(1, 51));
        let shared = BufferConfig::shared(150);
        assert!(shared.fits(100, 50));
        assert!(!shared.fits(100, 51));
        assert_eq!(sep.total_bytes(), shared.total_bytes());
    }

    #[test]
    fn paper_ranges_have_expected_candidates() {
        assert_eq!(CapacityRange::paper_glb().len(), 31);
        assert_eq!(CapacityRange::paper_wgt().len(), 31);
        assert_eq!(CapacityRange::paper_shared().len(), 47);
    }

    #[test]
    fn snap_rounds_to_grid() {
        let r = CapacityRange::new(100, 500, 100);
        assert_eq!(r.snap(0), 100);
        assert_eq!(r.snap(149), 100);
        assert_eq!(r.snap(150), 200);
        assert_eq!(r.snap(10_000), 500);
    }

    #[test]
    fn candidates_are_monotone() {
        let r = CapacityRange::paper_shared();
        let v: Vec<u64> = r.iter().collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v[0], 128 << 10);
        assert_eq!(*v.last().unwrap(), 3072 << 10);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_panics() {
        CapacityRange::new(1, 2, 0);
    }

    #[test]
    fn eval_options_validate_at_construction() {
        assert_eq!(EvalOptions::new(0, 1), Err(SimError::InvalidOptions));
        assert_eq!(EvalOptions::new(1, 0), Err(SimError::InvalidOptions));
        assert_eq!(EvalOptions::new(0, 0), Err(SimError::InvalidOptions));
        let ok = EvalOptions::new(2, 8).unwrap();
        assert_eq!(ok.cores(), 2);
        assert_eq!(ok.batch(), 8);
        assert_eq!(EvalOptions::default().cores(), 1);
        assert_eq!(EvalOptions::default().batch(), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn with_cores_zero_panics() {
        EvalOptions::with_cores(0);
    }

    #[test]
    fn eval_options_deserialization_revalidates() {
        use serde::{Deserialize, Serialize};
        let ok = EvalOptions::new(2, 4).unwrap();
        let back = EvalOptions::from_value(&ok.to_value()).unwrap();
        assert_eq!(back, ok);
        // A forged document with zero cores is rejected.
        let forged = serde::Value::Object(vec![
            ("cores".into(), serde::Value::U64(0)),
            ("batch".into(), serde::Value::U64(1)),
        ]);
        assert!(EvalOptions::from_value(&forged).is_err());
    }
}
