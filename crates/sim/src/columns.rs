//! Struct-of-arrays output buffers for batch subgraph scoring.
//!
//! [`SubgraphColumns`] is the column-major mirror of
//! `Vec<SubgraphReport>`: one contiguous column per scored field, filled
//! by [`Evaluator::eval_subgraph_batch`](crate::Evaluator::eval_subgraph_batch)
//! and rolled up by
//! [`PartitionReport::from_columns`](crate::PartitionReport::from_columns)
//! as tight loops over `u64`/`f64` columns. The buffers are reusable:
//! [`clear`](SubgraphColumns::clear) keeps capacity, so a warmed caller
//! (the engine's per-worker scratch) refills them without heap
//! allocation.

use std::mem::size_of;

use crate::cost::SubgraphStats;
use crate::report::SubgraphReport;

/// Column-major per-subgraph evaluation terms in execution order.
///
/// All columns always have equal length; rows correspond to subgraph
/// indices. Row `i` round-trips to a [`SubgraphReport`] via
/// [`report`](Self::report).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SubgraphColumns {
    /// Buffer-independent statistics (the cached derivation term).
    pub stats: Vec<SubgraphStats>,
    /// DRAM traffic in bytes per subgraph.
    pub ema_bytes: Vec<u64>,
    /// Energy in picojoules per subgraph.
    pub energy_pj: Vec<f64>,
    /// Latency in core cycles per subgraph.
    pub latency_cycles: Vec<f64>,
    /// Bandwidth requirement in bytes/cycle per subgraph.
    pub bw_bytes_per_cycle: Vec<f64>,
    /// Whether each subgraph fits the buffer configuration.
    pub fits: Vec<bool>,
}

impl SubgraphColumns {
    /// Empty columns with no capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scored subgraphs (rows).
    pub fn len(&self) -> usize {
        self.ema_bytes.len()
    }

    /// Whether no subgraphs are recorded.
    pub fn is_empty(&self) -> bool {
        self.ema_bytes.is_empty()
    }

    /// Drops all rows, keeping every column's capacity for reuse.
    pub fn clear(&mut self) {
        self.stats.clear();
        self.ema_bytes.clear();
        self.energy_pj.clear();
        self.latency_cycles.clear();
        self.bw_bytes_per_cycle.clear();
        self.fits.clear();
    }

    /// Reserves room for `rows` subgraphs in every column (no-op once
    /// warmed to the partition size).
    pub fn reserve(&mut self, rows: usize) {
        self.stats.reserve(rows);
        self.ema_bytes.reserve(rows);
        self.energy_pj.reserve(rows);
        self.latency_cycles.reserve(rows);
        self.bw_bytes_per_cycle.reserve(rows);
        self.fits.reserve(rows);
    }

    /// Capacity footprint of all columns in bytes (for arena telemetry).
    pub fn bytes(&self) -> usize {
        self.stats.capacity() * size_of::<SubgraphStats>()
            + self.ema_bytes.capacity() * size_of::<u64>()
            + self.energy_pj.capacity() * size_of::<f64>()
            + self.latency_cycles.capacity() * size_of::<f64>()
            + self.bw_bytes_per_cycle.capacity() * size_of::<f64>()
            + self.fits.capacity() * size_of::<bool>()
    }

    /// Reconstructs row `index` as a [`SubgraphReport`].
    pub fn report(&self, index: usize) -> SubgraphReport {
        SubgraphReport {
            index,
            stats: self.stats[index],
            ema_bytes: self.ema_bytes[index],
            energy_pj: self.energy_pj[index],
            latency_cycles: self.latency_cycles[index],
            bw_bytes_per_cycle: self.bw_bytes_per_cycle[index],
            fits: self.fits[index],
        }
    }

    /// Appends one scored row.
    pub fn push(&mut self, part: &SubgraphReport) {
        self.stats.push(part.stats);
        self.ema_bytes.push(part.ema_bytes);
        self.energy_pj.push(part.energy_pj);
        self.latency_cycles.push(part.latency_cycles);
        self.bw_bytes_per_cycle.push(part.bw_bytes_per_cycle);
        self.fits.push(part.fits);
    }
}
