//! Memory management for subgraph execution (paper §3.2, Figures 6-8).
//!
//! The global buffer is logically partitioned into per-node regions by a
//! *buffer region manager* — a `2N`-deep register file holding the start and
//! end address of up to `N` regions (the paper's 12 nm NPU uses `N = 64`
//! with 17-bit addresses, i.e. a 272-byte overhead). Each node of a running
//! subgraph owns:
//!
//! * a **MAIN region** holding the current `x_h × x_w × C` tile, and
//! * a **SIDE region** holding the `(x_h − Δ_h)` horizontally-overlapping
//!   rows across the remaining `(W − x_w)` columns, so sliding windows fully
//!   reuse data across the row sweep (pure output nodes need no SIDE
//!   region).
//!
//! [`footprint::subgraph_footprint`] turns an
//! [`ExecutionScheme`](cocco_tiling::ExecutionScheme) into byte counts, and
//! [`snapshot::replay`] reproduces the per-update `[m:n]` data ranges of
//! paper Figure 6.
//!
//! # Examples
//!
//! ```
//! use cocco_mem::footprint::subgraph_footprint;
//! use cocco_tiling::{derive_scheme, Mapper};
//!
//! let g = cocco_graph::models::diamond();
//! let members: Vec<_> = g.node_ids().collect();
//! let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
//! let fp = subgraph_footprint(&g, &members, &scheme, 1);
//! assert!(fp.activation_bytes > 0);
//! ```

mod error;
pub mod footprint;
pub mod layout;
mod manager;
mod region;
pub mod snapshot;

pub use error::MemError;
pub use manager::{AllocationPlan, BufferRegionManager};
pub use region::{Region, RegionKind};
