//! The buffer-region manager of paper Figure 8.

use crate::error::MemError;
use crate::region::{Region, RegionKind};
use cocco_graph::{Graph, NodeId};
use cocco_tiling::ExecutionScheme;
use serde::{Deserialize, Serialize};

/// Models the NPU's buffer-region manager: a `2N`-deep register file whose
/// entry pairs hold the start and end address of each logical region, used
/// to partition the multi-bank global buffer for contiguous layer
/// processing (paper Fig. 8).
///
/// # Examples
///
/// ```
/// use cocco_mem::BufferRegionManager;
///
/// // The paper's configuration: 1 MB buffer, N = 64 regions, 17-bit
/// // addresses => a 272-byte register file (0.18% of the NPU core area).
/// let mgr = BufferRegionManager::new(1 << 20, 64);
/// assert_eq!(mgr.register_file_bytes(), 272);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferRegionManager {
    capacity: u64,
    max_regions: usize,
    regions: Vec<Region>,
    cursor: u64,
}

impl BufferRegionManager {
    /// Creates a manager for a buffer of `capacity` bytes supporting up to
    /// `max_regions` logical regions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_regions` is zero.
    pub fn new(capacity: u64, max_regions: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be nonzero");
        assert!(max_regions > 0, "region count must be nonzero");
        Self {
            capacity,
            max_regions,
            regions: Vec::new(),
            cursor: 0,
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Maximum number of logical regions (`N`).
    pub fn max_regions(&self) -> usize {
        self.max_regions
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.cursor
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.cursor
    }

    /// The allocated regions, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Size of the manager's register file: `2N` entries of
    /// `ceil(log2(capacity / 8))` bits each (addresses index 64-bit buffer
    /// words, as in the paper's chip), rounded up to whole bytes.
    ///
    /// With the paper's parameters (N = 64, 1 MB 64-bit-wide buffer ⇒
    /// 17-bit word addresses) this is 272 bytes — a 0.18% area overhead on
    /// their core.
    pub fn register_file_bytes(&self) -> u64 {
        let words = (self.capacity / 8).max(2);
        let addr_bits = 64 - u64::from((words - 1).leading_zeros());
        (2 * self.max_regions as u64 * addr_bits).div_ceil(8)
    }

    /// Allocates a region of `bytes` for `node`.
    ///
    /// # Errors
    ///
    /// Returns an error if the buffer or the register file is exhausted.
    pub fn allocate(
        &mut self,
        node: NodeId,
        kind: RegionKind,
        bytes: u64,
    ) -> Result<Region, MemError> {
        if self.regions.len() + 1 > self.max_regions {
            return Err(MemError::TooManyRegions {
                needed: self.regions.len() + 1,
                max: self.max_regions,
            });
        }
        if self.cursor + bytes > self.capacity {
            return Err(MemError::ExceedsCapacity {
                needed: self.cursor + bytes,
                capacity: self.capacity,
            });
        }
        let region = Region {
            node,
            kind,
            start: self.cursor,
            end: self.cursor + bytes,
        };
        self.cursor += bytes;
        self.regions.push(region);
        Ok(region)
    }

    /// Releases every region (the compiler reprograms the register file
    /// between subgraphs).
    pub fn reset(&mut self) {
        self.regions.clear();
        self.cursor = 0;
    }

    /// Allocates MAIN and SIDE regions for every node of `scheme` and
    /// returns the resulting plan. The manager is reset first.
    ///
    /// # Errors
    ///
    /// Returns an error if capacity or the region register file would be
    /// exceeded; the manager is left reset in that case.
    pub fn allocate_subgraph(
        &mut self,
        graph: &Graph,
        scheme: &ExecutionScheme,
        elem_bytes: u64,
    ) -> Result<AllocationPlan, MemError> {
        self.reset();
        let mut plan = AllocationPlan {
            regions: Vec::with_capacity(scheme.len()),
        };
        for (id, s) in scheme.iter() {
            let shape = graph.node(id).out_shape();
            let c = u64::from(shape.c);
            let main = u64::from(s.tile.h) * u64::from(s.tile.w) * c * elem_bytes;
            match self.allocate(id, RegionKind::Main, main) {
                Ok(r) => plan.regions.push(r),
                Err(e) => {
                    self.reset();
                    return Err(e);
                }
            }
            if s.interior_consumed {
                let side = u64::from(s.overlap_rows())
                    * u64::from(shape.w.saturating_sub(s.tile.w))
                    * c
                    * elem_bytes;
                if side > 0 {
                    match self.allocate(id, RegionKind::Side, side) {
                        Ok(r) => plan.regions.push(r),
                        Err(e) => {
                            self.reset();
                            return Err(e);
                        }
                    }
                }
            }
        }
        Ok(plan)
    }
}

/// The set of regions programmed into the manager for one subgraph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationPlan {
    regions: Vec<Region>,
}

impl AllocationPlan {
    /// The allocated regions in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total allocated bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(Region::len).sum()
    }

    /// The regions owned by `node`.
    pub fn regions_of(&self, node: NodeId) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter(move |r| r.node == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_tiling::{derive_scheme, Mapper};

    #[test]
    fn paper_register_file_size() {
        let mgr = BufferRegionManager::new(1 << 20, 64);
        assert_eq!(mgr.register_file_bytes(), 272);
    }

    #[test]
    fn allocation_is_contiguous_and_disjoint() {
        let mut mgr = BufferRegionManager::new(1024, 8);
        let a = mgr
            .allocate(NodeId::from_index(0), RegionKind::Main, 100)
            .unwrap();
        let b = mgr
            .allocate(NodeId::from_index(1), RegionKind::Main, 200)
            .unwrap();
        assert_eq!(a.end, b.start);
        assert_eq!(mgr.used_bytes(), 300);
        assert_eq!(mgr.free_bytes(), 724);
    }

    #[test]
    fn capacity_enforced() {
        let mut mgr = BufferRegionManager::new(128, 8);
        mgr.allocate(NodeId::from_index(0), RegionKind::Main, 100)
            .unwrap();
        let err = mgr
            .allocate(NodeId::from_index(1), RegionKind::Main, 100)
            .unwrap_err();
        assert_eq!(
            err,
            MemError::ExceedsCapacity {
                needed: 200,
                capacity: 128
            }
        );
    }

    #[test]
    fn region_count_enforced() {
        let mut mgr = BufferRegionManager::new(1024, 2);
        mgr.allocate(NodeId::from_index(0), RegionKind::Main, 1)
            .unwrap();
        mgr.allocate(NodeId::from_index(1), RegionKind::Main, 1)
            .unwrap();
        let err = mgr
            .allocate(NodeId::from_index(2), RegionKind::Main, 1)
            .unwrap_err();
        assert_eq!(err, MemError::TooManyRegions { needed: 3, max: 2 });
    }

    #[test]
    fn reset_clears_state() {
        let mut mgr = BufferRegionManager::new(1024, 4);
        mgr.allocate(NodeId::from_index(0), RegionKind::Main, 64)
            .unwrap();
        mgr.reset();
        assert_eq!(mgr.used_bytes(), 0);
        assert!(mgr.regions().is_empty());
    }

    #[test]
    fn subgraph_allocation_matches_footprint() {
        let g = cocco_graph::models::diamond();
        let members: Vec<_> = g.node_ids().collect();
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        let fp = crate::footprint::subgraph_footprint(&g, &members, &scheme, 1);
        let mut mgr = BufferRegionManager::new(1 << 20, 64);
        let plan = mgr.allocate_subgraph(&g, &scheme, 1).unwrap();
        assert_eq!(plan.total_bytes(), fp.activation_bytes);
        assert_eq!(plan.regions().len(), fp.regions);
    }

    #[test]
    fn subgraph_allocation_failure_resets() {
        let g = cocco_graph::models::diamond();
        let members: Vec<_> = g.node_ids().collect();
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        let mut mgr = BufferRegionManager::new(8, 64);
        assert!(mgr.allocate_subgraph(&g, &scheme, 1).is_err());
        assert_eq!(mgr.used_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        BufferRegionManager::new(0, 4);
    }
}
