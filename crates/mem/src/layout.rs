//! The NWHC8c data layout of the paper's implementation (Fig. 7).
//!
//! Activations are stored channel-aligned in groups of 8 (`C8c`): one buffer
//! *entry* holds 8 channels of one pixel, entries stack along the height,
//! and *groups* (columns of entries) stack along the width. The layout only
//! changes address arithmetic, not byte counts — the paper notes other
//! designs may pick different layouts — but modelling it lets tests check
//! the entry/group arithmetic printed in Figure 7.

use cocco_graph::{Dims2, TensorShape};
use serde::{Deserialize, Serialize};

/// The NWHC8c-style layout: channels padded to `align` lanes per entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layout {
    /// Channel lanes per entry (8 in the paper's chip).
    pub align: u32,
}

impl Layout {
    /// Creates a layout with `align` channel lanes per entry.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero.
    pub fn new(align: u32) -> Self {
        assert!(align > 0, "channel alignment must be nonzero");
        Self { align }
    }

    /// Entries per group for a tile of height `tile_h` over `c` channels:
    /// `⌈C/align⌉ · P0` (paper Fig. 7: `⌈C/8⌉ × P0` entries).
    pub fn entries_per_group(&self, tile_h: u32, c: u32) -> u64 {
        u64::from(c.div_ceil(self.align)) * u64::from(tile_h)
    }

    /// Number of MAIN-region groups: the tile width `Q0`.
    pub fn main_groups(&self, tile: Dims2) -> u64 {
        u64::from(tile.w)
    }

    /// Number of SIDE-region groups: `Q − Q0` (paddings not included).
    pub fn side_groups(&self, shape: TensorShape, tile: Dims2) -> u64 {
        u64::from(shape.w.saturating_sub(tile.w))
    }

    /// Bytes of one entry at `elem_bytes` per element.
    pub fn entry_bytes(&self, elem_bytes: u64) -> u64 {
        u64::from(self.align) * elem_bytes
    }

    /// MAIN-region bytes for a tile, including channel-padding waste.
    pub fn main_bytes(&self, tile: Dims2, c: u32, elem_bytes: u64) -> u64 {
        self.entries_per_group(tile.h, c) * self.main_groups(tile) * self.entry_bytes(elem_bytes)
    }
}

impl Default for Layout {
    /// The paper's 8-channel alignment.
    fn default() -> Self {
        Self::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_entry_arithmetic() {
        // A P0=4, Q0=3 tile over C=20 channels: ⌈20/8⌉·4 = 12 entries per
        // group, 3 groups.
        let l = Layout::default();
        assert_eq!(l.entries_per_group(4, 20), 12);
        assert_eq!(l.main_groups(Dims2::new(4, 3)), 3);
    }

    #[test]
    fn side_groups_exclude_tile() {
        let l = Layout::default();
        let shape = TensorShape::new(16, 12, 8);
        assert_eq!(l.side_groups(shape, Dims2::new(4, 3)), 9);
        assert_eq!(l.side_groups(shape, Dims2::new(4, 12)), 0);
    }

    #[test]
    fn padding_waste_counted() {
        // 9 channels pad to 2 entries of 8 lanes.
        let l = Layout::default();
        let bytes = l.main_bytes(Dims2::new(1, 1), 9, 1);
        assert_eq!(bytes, 16);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_align_panics() {
        Layout::new(0);
    }
}
