//! Errors raised by buffer allocation.

use std::error::Error;
use std::fmt;

/// Error raised while allocating buffer regions for a subgraph.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The subgraph's regions do not fit in the buffer.
    ExceedsCapacity {
        /// Bytes required.
        needed: u64,
        /// Bytes available.
        capacity: u64,
    },
    /// More logical regions are needed than the region manager supports.
    TooManyRegions {
        /// Regions required.
        needed: usize,
        /// Register-file limit `N`.
        max: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::ExceedsCapacity { needed, capacity } => {
                write!(
                    f,
                    "subgraph needs {needed} B but the buffer holds {capacity} B"
                )
            }
            MemError::TooManyRegions { needed, max } => {
                write!(
                    f,
                    "subgraph needs {needed} regions but the manager holds {max}"
                )
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = MemError::ExceedsCapacity {
            needed: 2048,
            capacity: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("2048") && s.contains("1024"));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<E: Error + Send + Sync>(_: E) {}
        check(MemError::TooManyRegions { needed: 9, max: 8 });
    }
}
