//! Logical buffer regions.

use cocco_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role of a logical region within the global buffer (paper Fig. 7).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Holds the current tile (`x_h × x_w × C`) serving the PE array.
    Main,
    /// Holds the horizontally-overlapping rows reused across the row sweep.
    Side,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RegionKind::Main => "MAIN",
            RegionKind::Side => "SIDE",
        })
    }
}

/// One allocated logical region: a `[start, end)` byte range owned by one
/// node, as recorded in the buffer-region manager's register file.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Owning node.
    pub node: NodeId,
    /// MAIN or SIDE.
    pub kind: RegionKind,
    /// First byte address.
    pub start: u64,
    /// One past the last byte address.
    pub end: u64,
}

impl Region {
    /// Region size in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` for zero-sized regions (never allocated by the manager).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{:#x}, {:#x})",
            self.node, self.kind, self.start, self.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_empty() {
        let r = Region {
            node: NodeId::from_index(0),
            kind: RegionKind::Main,
            start: 16,
            end: 48,
        };
        assert_eq!(r.len(), 32);
        assert!(!r.is_empty());
    }

    #[test]
    fn display_is_readable() {
        let r = Region {
            node: NodeId::from_index(3),
            kind: RegionKind::Side,
            start: 0,
            end: 8,
        };
        assert!(r.to_string().contains("SIDE"));
        assert!(r.to_string().contains("n3"));
    }
}
