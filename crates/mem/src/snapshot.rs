//! Replays elementary operations to produce the memory snapshots of paper
//! Figure 6.
//!
//! After a node's `t`-th update its region holds the output rows
//! `[(t−1)·Δ : (t−1)·Δ + x − 1]` (clamped to the tensor), and each
//! elementary operation performs `upd_num` updates per node. Replaying the
//! schedule therefore reproduces the `[m:n]` ranges the paper draws.

use cocco_graph::{Graph, NodeId};
use cocco_tiling::ExecutionScheme;
use serde::{Deserialize, Serialize};

/// The buffer contents of one node after one of its updates.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// The node that updated.
    pub node: NodeId,
    /// 1-based global update counter of this node.
    pub update: u32,
    /// First resident output row (inclusive).
    pub from: u32,
    /// Last resident output row (inclusive).
    pub to: u32,
}

impl UpdateEvent {
    /// Number of resident rows.
    pub fn rows(&self) -> u32 {
        self.to - self.from + 1
    }
}

/// All updates performed during one elementary operation, in node order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSnapshot {
    /// 1-based elementary-operation index.
    pub op: u32,
    /// The updates of this operation (each node appears `upd_num.h` times).
    pub updates: Vec<UpdateEvent>,
}

/// Replays the first `ops` elementary operations of `scheme` along the
/// height dimension and returns one snapshot per operation.
///
/// # Examples
///
/// ```
/// use cocco_mem::snapshot::replay;
/// use cocco_tiling::{derive_scheme, Mapper, MapperPolicy};
///
/// let g = cocco_graph::models::chain(2);
/// let members: Vec<_> = g.node_ids().collect();
/// let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows: 2 });
/// let scheme = derive_scheme(&g, &members, &mapper).unwrap();
/// let snaps = replay(&g, &scheme, 2);
/// assert_eq!(snaps.len(), 2);
/// ```
pub fn replay(graph: &Graph, scheme: &ExecutionScheme, ops: u32) -> Vec<OpSnapshot> {
    let mut counters: Vec<(NodeId, u32)> = scheme.iter().map(|(id, _)| (id, 0)).collect();
    let mut result = Vec::with_capacity(ops as usize);
    for op in 1..=ops {
        let mut updates = Vec::new();
        for (id, t) in counters.iter_mut() {
            // cocco-audit: allow(R1) counters was built from this scheme's own iterator two lines up
            let s = scheme.get(*id).expect("scheme covers id");
            let h = graph.node(*id).out_shape().h;
            for _ in 0..s.upd_num.h.max(1) {
                *t += 1;
                let from = (*t - 1) * s.delta.h;
                if from >= h {
                    // Tensor exhausted; no further updates occur.
                    *t -= 1;
                    break;
                }
                let to = (from + s.tile.h - 1).min(h - 1);
                updates.push(UpdateEvent {
                    node: *id,
                    update: *t,
                    from,
                    to,
                });
            }
        }
        result.push(OpSnapshot { op, updates });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_graph::{Dims2, GraphBuilder, Kernel, LayerOp, TensorShape};
    use cocco_tiling::{derive_scheme, Mapper, MapperPolicy};

    /// The paper's Figure 5/6 example (see `cocco_tiling::flow` tests).
    fn figure5() -> (cocco_graph::Graph, ExecutionScheme) {
        let conv1d = |f: u32, s: u32, p: u32| LayerOp::Conv {
            kernel: Kernel::new(Dims2::new(f, 1), Dims2::new(s, 1), Dims2::new(p, 0)),
            c_out: 1,
        };
        let mut b = GraphBuilder::new("fig5");
        let in2 = b.input(TensorShape::new(64, 1, 1));
        let in1 = b.input(TensorShape::new(64, 1, 1));
        let _n0 = b.add("n0", conv1d(3, 2, 1), &[in2]).unwrap();
        let n1a = b.add("n1a", conv1d(3, 1, 1), &[in2]).unwrap();
        let n1b = b.add("n1b", conv1d(3, 1, 1), &[in1]).unwrap();
        let _n1 = b.eltwise("n1", &[n1a, n1b]).unwrap();
        let _n2 = b.add("n2", conv1d(1, 1, 0), &[in1]).unwrap();
        let g = b.finish().unwrap();
        let members: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::new(MapperPolicy::Tile { rows: 2, cols: 1 });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        (g, scheme)
    }

    #[test]
    fn figure6_ranges() {
        let (g, scheme) = figure5();
        let snaps = replay(&g, &scheme, 2);
        let id = |name: &str| g.iter().find(|(_, n)| n.name() == name).unwrap().0;
        let ranges = |op: &OpSnapshot, node: NodeId| -> Vec<(u32, u32)> {
            op.updates
                .iter()
                .filter(|u| u.node == node)
                .map(|u| (u.from, u.to))
                .collect()
        };
        // First elementary op, node(-2) (size 6): [0:5], one update.
        assert_eq!(ranges(&snaps[0], id("input")), vec![(0, 5)]);
        // node(-1) (size 4): two updates, [0:3] then [2:5].
        assert_eq!(ranges(&snaps[0], id("input1")), vec![(0, 3), (2, 5)]);
        // node(0) (size 2): one update [0:1].
        assert_eq!(ranges(&snaps[0], id("n0")), vec![(0, 1)]);
        // node(2) (size 2): two updates [0:1], [2:3].
        assert_eq!(ranges(&snaps[0], id("n2")), vec![(0, 1), (2, 3)]);
        // Second elementary op, node(-2): [4:9]; node(-1): [4:7], [6:9].
        assert_eq!(ranges(&snaps[1], id("input")), vec![(4, 9)]);
        assert_eq!(ranges(&snaps[1], id("input1")), vec![(4, 7), (6, 9)]);
        // node(0): [2:3]; node(2): [4:5], [6:7].
        assert_eq!(ranges(&snaps[1], id("n0")), vec![(2, 3)]);
        assert_eq!(ranges(&snaps[1], id("n2")), vec![(4, 5), (6, 7)]);
    }

    #[test]
    fn ranges_stay_within_tensor() {
        let g = cocco_graph::models::chain(3);
        let members: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows: 5 });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        // 32 rows / 5 per op => 7 ops; replay a few extra to hit clamping.
        for snap in replay(&g, &scheme, 9) {
            for u in &snap.updates {
                let h = g.node(u.node).out_shape().h;
                assert!(u.to < h);
                assert!(u.from <= u.to);
            }
        }
    }

    #[test]
    fn update_counts_follow_upd_num() {
        let (g, scheme) = figure5();
        let snaps = replay(&g, &scheme, 1);
        let id = |name: &str| g.iter().find(|(_, n)| n.name() == name).unwrap().0;
        let count = |node: NodeId| snaps[0].updates.iter().filter(|u| u.node == node).count();
        assert_eq!(count(id("input")), 1);
        assert_eq!(count(id("n1")), 2);
        assert_eq!(count(id("n1a")), 2);
    }

    #[test]
    fn exhausted_tensors_stop_updating() {
        let g = cocco_graph::models::chain(1);
        let members: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows: 16 });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        // 32 rows / 16 = 2 ops; the third produces nothing.
        let snaps = replay(&g, &scheme, 3);
        assert!(!snaps[1].updates.is_empty());
        assert!(snaps[2].updates.is_empty());
    }
}
