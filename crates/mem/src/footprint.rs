//! Subgraph memory footprints derived from an execution scheme.

use cocco_graph::{Graph, NodeId};
use cocco_tiling::ExecutionScheme;
use serde::{Deserialize, Serialize};

/// Byte footprint of one node's regions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFootprint {
    /// MAIN region bytes: `x_h · x_w · C · elem`.
    pub main_bytes: u64,
    /// SIDE region bytes: `(x_h − Δ_h) · (W − x_w) · C · elem`, zero for
    /// pure output nodes or full-width tiles.
    pub side_bytes: u64,
}

impl NodeFootprint {
    /// Total bytes of both regions.
    pub fn total(&self) -> u64 {
        self.main_bytes + self.side_bytes
    }
}

/// Byte footprint of a whole subgraph in the on-chip buffers.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubgraphFootprint {
    /// Activation bytes in the global buffer (all MAIN + SIDE regions,
    /// including the boundary-input tiles loaded from DRAM).
    pub activation_bytes: u64,
    /// Weight bytes resident in the weight buffer (members only).
    pub weight_bytes: u64,
    /// Logical regions required of the buffer-region manager.
    pub regions: usize,
    /// Per-node breakdown, ascending by node id.
    pub per_node: Vec<(NodeId, NodeFootprint)>,
}

impl SubgraphFootprint {
    /// Total bytes across activation and weight storage (the quantity
    /// constrained by a shared-buffer design).
    pub fn total_bytes(&self) -> u64 {
        self.activation_bytes + self.weight_bytes
    }
}

/// Computes the buffer footprint of the subgraph `members` under `scheme`
/// with `elem_bytes`-wide tensor elements.
///
/// `scheme` must have been derived for the same member set (the function
/// works from whatever nodes the scheme covers; members only determine which
/// nodes contribute weights).
///
/// # Examples
///
/// ```
/// use cocco_mem::footprint::subgraph_footprint;
/// use cocco_tiling::{derive_scheme, Mapper, MapperPolicy};
///
/// let g = cocco_graph::models::chain(3);
/// let members: Vec<_> = g.node_ids().collect();
/// let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows: 1 });
/// let scheme = derive_scheme(&g, &members, &mapper).unwrap();
/// let fp = subgraph_footprint(&g, &members, &scheme, 1);
/// // Full-width tiles never need SIDE regions.
/// assert!(fp.per_node.iter().all(|(_, n)| n.side_bytes == 0));
/// ```
pub fn subgraph_footprint(
    graph: &Graph,
    members: &[NodeId],
    scheme: &ExecutionScheme,
    elem_bytes: u64,
) -> SubgraphFootprint {
    let mut activation = 0u64;
    let mut regions = 0usize;
    let mut per_node = Vec::with_capacity(scheme.len());
    for (id, s) in scheme.iter() {
        let shape = graph.node(id).out_shape();
        let c = u64::from(shape.c);
        let main = u64::from(s.tile.h) * u64::from(s.tile.w) * c * elem_bytes;
        let side = if s.interior_consumed {
            u64::from(s.overlap_rows())
                * u64::from(shape.w.saturating_sub(s.tile.w))
                * c
                * elem_bytes
        } else {
            0
        };
        regions += 1 + usize::from(side > 0);
        activation += main + side;
        per_node.push((
            id,
            NodeFootprint {
                main_bytes: main,
                side_bytes: side,
            },
        ));
    }
    let weight_bytes: u64 = members
        .iter()
        .map(|&m| graph.weight_elements(m) * elem_bytes)
        .sum();
    SubgraphFootprint {
        activation_bytes: activation,
        weight_bytes,
        regions,
        per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_tiling::{derive_scheme, Mapper, MapperPolicy};

    #[test]
    fn partial_width_tiles_create_side_regions() {
        let g = cocco_graph::models::chain(3);
        let members: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::new(MapperPolicy::Tile { rows: 2, cols: 8 });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        let fp = subgraph_footprint(&g, &members, &scheme, 1);
        // Interior 3x3/1 nodes have overlap 2 rows and W − x_w = 32 − 10.
        let interior: Vec<_> = fp
            .per_node
            .iter()
            .filter(|(id, _)| !g.consumers(*id).is_empty())
            .collect();
        assert!(interior.iter().all(|(_, n)| n.side_bytes > 0));
        // Pure output: no SIDE region.
        let out = g.output_ids()[0];
        let out_fp = fp.per_node.iter().find(|(id, _)| *id == out).unwrap().1;
        assert_eq!(out_fp.side_bytes, 0);
        assert_eq!(
            fp.regions,
            fp.per_node.len() + interior.iter().filter(|(_, n)| n.side_bytes > 0).count()
        );
    }

    #[test]
    fn weights_count_members_only() {
        let g = cocco_graph::models::chain(4);
        let ids: Vec<_> = g.node_ids().collect();
        // Members: last two convs; c1 is a boundary input with weights that
        // must NOT be charged to this subgraph.
        let members = vec![ids[3], ids[4]];
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        let fp = subgraph_footprint(&g, &members, &scheme, 1);
        let expected: u64 = members.iter().map(|&m| g.weight_elements(m)).sum();
        assert_eq!(fp.weight_bytes, expected);
    }

    #[test]
    fn element_width_scales_linearly() {
        let g = cocco_graph::models::diamond();
        let members: Vec<_> = g.node_ids().collect();
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        let fp1 = subgraph_footprint(&g, &members, &scheme, 1);
        let fp2 = subgraph_footprint(&g, &members, &scheme, 2);
        assert_eq!(fp2.activation_bytes, 2 * fp1.activation_bytes);
        assert_eq!(fp2.weight_bytes, 2 * fp1.weight_bytes);
    }

    #[test]
    fn bigger_subgraphs_need_more_activation_space() {
        let g = cocco_graph::models::chain(6);
        let ids: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::default();
        let small = {
            let m = &ids[..3];
            let s = derive_scheme(&g, m, &mapper).unwrap();
            subgraph_footprint(&g, m, &s, 1).activation_bytes
        };
        let large = {
            let m = &ids[..6];
            let s = derive_scheme(&g, m, &mapper).unwrap();
            subgraph_footprint(&g, m, &s, 1).activation_bytes
        };
        assert!(large > small);
    }

    #[test]
    fn total_bytes_sums_parts() {
        let g = cocco_graph::models::diamond();
        let members: Vec<_> = g.node_ids().collect();
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        let fp = subgraph_footprint(&g, &members, &scheme, 1);
        assert_eq!(fp.total_bytes(), fp.activation_bytes + fp.weight_bytes);
        let sum: u64 = fp.per_node.iter().map(|(_, n)| n.total()).sum();
        assert_eq!(sum, fp.activation_bytes);
    }
}
