//! Stage-1 single-layer mapper: picks the output-node tiles.

use cocco_graph::{Dims2, TensorShape};
use serde::{Deserialize, Serialize};

/// Policy used by the [`Mapper`] to pick output tiles (paper §3.1 stage 1).
///
/// The paper notes that tiles are sized for computation utilization but tend
/// to be small so larger subgraphs fit; the policy makes that trade-off
/// explicit and configurable.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapperPolicy {
    /// Tiles of up to `rows × cols` output elements (clamped to the tensor).
    Tile {
        /// Tile height in output rows.
        rows: u32,
        /// Tile width in output columns.
        cols: u32,
    },
    /// Row tiles spanning the full tensor width (line-buffer style; SIDE
    /// regions vanish because the tile already covers every column).
    FullWidthRows {
        /// Tile height in output rows.
        rows: u32,
    },
    /// Buffer whole tensors (degenerates to layer-by-layer execution).
    FullTensor,
}

/// Stage-1 mapper assigning tiles to subgraph output nodes.
///
/// # Examples
///
/// ```
/// use cocco_tiling::{Mapper, MapperPolicy};
/// use cocco_graph::{Dims2, TensorShape};
///
/// let m = Mapper::new(MapperPolicy::Tile { rows: 2, cols: 16 });
/// assert_eq!(m.output_tile(TensorShape::new(56, 56, 64)), Dims2::new(2, 16));
/// // Clamped to the tensor extent:
/// assert_eq!(m.output_tile(TensorShape::new(1, 8, 64)), Dims2::new(1, 8));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapper {
    policy: MapperPolicy,
}

impl Mapper {
    /// Creates a mapper with the given policy.
    pub fn new(policy: MapperPolicy) -> Self {
        Self { policy }
    }

    /// The configured policy.
    pub fn policy(&self) -> MapperPolicy {
        self.policy
    }

    /// Picks the `Δ = x` tile of a subgraph output node with shape `shape`.
    pub fn output_tile(&self, shape: TensorShape) -> Dims2 {
        let (rows, cols) = match self.policy {
            MapperPolicy::Tile { rows, cols } => (rows, cols),
            MapperPolicy::FullWidthRows { rows } => (rows, u32::MAX),
            MapperPolicy::FullTensor => (u32::MAX, u32::MAX),
        };
        Dims2 {
            h: rows.max(1).min(shape.h),
            w: cols.max(1).min(shape.w),
        }
    }
}

impl Default for Mapper {
    /// The default mirrors the paper's NPU: small 2-row tiles over a
    /// 16-column window, keeping the 4×4 PE array busy while leaving room
    /// for large subgraphs.
    fn default() -> Self {
        Self::new(MapperPolicy::Tile { rows: 2, cols: 16 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_width_rows() {
        let m = Mapper::new(MapperPolicy::FullWidthRows { rows: 1 });
        assert_eq!(
            m.output_tile(TensorShape::new(56, 56, 3)),
            Dims2::new(1, 56)
        );
    }

    #[test]
    fn full_tensor() {
        let m = Mapper::new(MapperPolicy::FullTensor);
        assert_eq!(m.output_tile(TensorShape::new(7, 9, 3)), Dims2::new(7, 9));
    }

    #[test]
    fn zero_rows_clamped_to_one() {
        let m = Mapper::new(MapperPolicy::Tile { rows: 0, cols: 0 });
        assert_eq!(m.output_tile(TensorShape::new(8, 8, 3)), Dims2::new(1, 1));
    }

    #[test]
    fn default_policy_is_small_tile() {
        assert_eq!(
            Mapper::default().policy(),
            MapperPolicy::Tile { rows: 2, cols: 16 }
        );
    }
}
